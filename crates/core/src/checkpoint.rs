//! Versioned, self-describing binary checkpoints of a running
//! simulation (hand-rolled codec — the workspace has no serialization
//! dependency).
//!
//! ## Format (version 1)
//!
//! All integers and floats are little-endian; `f64` values are stored
//! as their IEEE-754 bit patterns, so a round trip is bit-exact.
//!
//! ```text
//! magic    8 bytes  b"SEMSIMCP"
//! version  u32
//! payload  …        (see [`Checkpoint`]; vectors are u64-length-prefixed)
//! checksum u64      FNV-1a over everything before it
//! ```
//!
//! A checkpoint captures the *dynamic* state only — electron numbers,
//! lead voltages, RNG stream, clocks, stimuli queue, probe traces, and
//! solver counters. The circuit and configuration are not serialized;
//! [`Simulation::resume`](crate::engine::Simulation::resume) must be
//! called on a simulation built from the same circuit and an equivalent
//! [`SimConfig`](crate::engine::SimConfig), and validates the shape
//! (island/lead/junction counts, solver kind) against the snapshot.
//! Decoding rejects truncated or bit-flipped streams with
//! [`CoreError::CheckpointCorrupt`](crate::CoreError).

use crate::engine::Stimulus;
use crate::solver::AdaptiveStats;
use crate::CoreError;

/// Magic prefix of every checkpoint stream.
const MAGIC: &[u8; 8] = b"SEMSIMCP";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// A decoded probe snapshot: node index, sampling period, samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSnapshot {
    /// Probed node index.
    pub node: u64,
    /// Sampling period (events).
    pub every: u64,
    /// Collected `(time, volts)` samples.
    pub samples: Vec<(f64, f64)>,
}

/// Solver-specific counters captured alongside the circuit state, so a
/// resumed run reports the same cumulative statistics as the
/// uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverSnapshot {
    /// Non-adaptive solver counters.
    NonAdaptive {
        /// Cumulative junction rate recalculations.
        rate_recalcs: u64,
    },
    /// Adaptive solver counters and current (possibly tightened)
    /// threshold.
    Adaptive {
        /// Testing threshold θ at checkpoint time.
        threshold: f64,
        /// Configured full-refresh period.
        refresh_interval: u64,
        /// Cumulative work counters.
        stats: AdaptiveStats,
    },
}

/// A decoded checkpoint: the complete dynamic state of a
/// [`Simulation`](crate::engine::Simulation) at a synchronization
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Simulated time (s).
    pub time: f64,
    /// Total events executed since construction.
    pub events: u64,
    /// xoshiro256++ generator state.
    pub rng_state: [u64; 4],
    /// Number of islands (shape validation).
    pub islands: u64,
    /// Number of leads (shape validation).
    pub leads: u64,
    /// Number of junctions (shape validation).
    pub junctions: u64,
    /// Excess electrons per island.
    pub electrons: Vec<i64>,
    /// Instantaneous lead voltages (V).
    pub lead_voltages: Vec<f64>,
    /// Cumulative signed electron counts per junction.
    pub electron_counts: Vec<f64>,
    /// Scheduled stimuli (sorted).
    pub stimuli: Vec<Stimulus>,
    /// Index of the next pending stimulus.
    pub next_stimulus: u64,
    /// Attached probes with their accumulated traces.
    pub probes: Vec<ProbeSnapshot>,
    /// Solver counters.
    pub solver: SolverSnapshot,
}

impl Checkpoint {
    /// Serializes to the versioned, checksummed byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(FORMAT_VERSION);
        w.f64(self.time);
        w.u64(self.events);
        for s in self.rng_state {
            w.u64(s);
        }
        w.u64(self.islands);
        w.u64(self.leads);
        w.u64(self.junctions);
        w.u64(self.electrons.len() as u64);
        for &e in &self.electrons {
            w.i64(e);
        }
        w.u64(self.lead_voltages.len() as u64);
        for &v in &self.lead_voltages {
            w.f64(v);
        }
        w.u64(self.electron_counts.len() as u64);
        for &c in &self.electron_counts {
            w.f64(c);
        }
        w.u64(self.stimuli.len() as u64);
        for s in &self.stimuli {
            w.f64(s.time);
            w.u64(s.lead as u64);
            w.f64(s.voltage);
        }
        w.u64(self.next_stimulus);
        w.u64(self.probes.len() as u64);
        for p in &self.probes {
            w.u64(p.node);
            w.u64(p.every);
            w.u64(p.samples.len() as u64);
            for &(t, v) in &p.samples {
                w.f64(t);
                w.f64(v);
            }
        }
        match &self.solver {
            SolverSnapshot::NonAdaptive { rate_recalcs } => {
                w.u32(0);
                w.u64(*rate_recalcs);
            }
            SolverSnapshot::Adaptive {
                threshold,
                refresh_interval,
                stats,
            } => {
                w.u32(1);
                w.f64(*threshold);
                w.u64(*refresh_interval);
                w.u64(stats.events);
                w.u64(stats.junctions_tested);
                w.u64(stats.rate_recalcs);
                w.u64(stats.full_refreshes);
            }
        }
        let checksum = fnv1a64(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Decodes and structurally validates a checkpoint stream.
    ///
    /// # Errors
    ///
    /// [`CoreError::CheckpointCorrupt`] on bad magic, unsupported
    /// version, truncation, implausible lengths, or checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(CoreError::CheckpointCorrupt { what: "truncated" });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(tail);
        if fnv1a64(body) != u64::from_le_bytes(sum) {
            return Err(CoreError::CheckpointCorrupt { what: "checksum" });
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.bytes(MAGIC.len(), "magic")? != MAGIC {
            return Err(CoreError::CheckpointCorrupt { what: "magic" });
        }
        let version = r.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(CoreError::CheckpointCorrupt {
                what: "unsupported version",
            });
        }
        let time = r.f64("time")?;
        let events = r.u64("events")?;
        let rng_state = [
            r.u64("rng state")?,
            r.u64("rng state")?,
            r.u64("rng state")?,
            r.u64("rng state")?,
        ];
        let islands = r.u64("island count")?;
        let leads = r.u64("lead count")?;
        let junctions = r.u64("junction count")?;
        let n = r.len("electrons", 8)?;
        let mut electrons = Vec::with_capacity(n);
        for _ in 0..n {
            electrons.push(r.i64("electrons")?);
        }
        let n = r.len("lead voltages", 8)?;
        let mut lead_voltages = Vec::with_capacity(n);
        for _ in 0..n {
            lead_voltages.push(r.f64("lead voltages")?);
        }
        let n = r.len("electron counts", 8)?;
        let mut electron_counts = Vec::with_capacity(n);
        for _ in 0..n {
            electron_counts.push(r.f64("electron counts")?);
        }
        let n = r.len("stimuli", 24)?;
        let mut stimuli = Vec::with_capacity(n);
        for _ in 0..n {
            stimuli.push(Stimulus {
                time: r.f64("stimulus time")?,
                lead: r.u64("stimulus lead")? as usize,
                voltage: r.f64("stimulus voltage")?,
            });
        }
        let next_stimulus = r.u64("next stimulus")?;
        let n = r.len("probes", 24)?;
        let mut probes = Vec::with_capacity(n);
        for _ in 0..n {
            let node = r.u64("probe node")?;
            let every = r.u64("probe period")?;
            let ns = r.len("probe samples", 16)?;
            let mut samples = Vec::with_capacity(ns);
            for _ in 0..ns {
                samples.push((r.f64("probe sample")?, r.f64("probe sample")?));
            }
            probes.push(ProbeSnapshot {
                node,
                every,
                samples,
            });
        }
        let solver = match r.u32("solver kind")? {
            0 => SolverSnapshot::NonAdaptive {
                rate_recalcs: r.u64("rate recalcs")?,
            },
            1 => SolverSnapshot::Adaptive {
                threshold: r.f64("threshold")?,
                refresh_interval: r.u64("refresh interval")?,
                stats: AdaptiveStats {
                    events: r.u64("adaptive events")?,
                    junctions_tested: r.u64("junctions tested")?,
                    rate_recalcs: r.u64("rate recalcs")?,
                    full_refreshes: r.u64("full refreshes")?,
                },
            },
            _ => {
                return Err(CoreError::CheckpointCorrupt {
                    what: "unknown solver kind",
                })
            }
        };
        if r.pos != body.len() {
            return Err(CoreError::CheckpointCorrupt {
                what: "trailing bytes",
            });
        }
        Ok(Checkpoint {
            time,
            events,
            rng_state,
            islands,
            leads,
            junctions,
            electrons,
            lead_voltages,
            electron_counts,
            stimuli,
            next_stimulus,
            probes,
            solver,
        })
    }
}

/// FNV-1a 64-bit hash — an error-detection checksum (not cryptographic).
/// Shared by the checkpoint (`SEMSIMCP`) and journal (`SEMSIMJL`)
/// formats.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte writer of the SEMSIM binary formats. Shared by
/// the checkpoint codec and the append-only journal in
/// [`crate::journal`] so every on-disk artifact uses one encoding.
#[derive(Default)]
pub struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    /// The encoded bytes so far (for hashing an encoding in memory).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice; the `what`
/// labels flow into [`CoreError::CheckpointCorrupt`] so a truncated
/// stream names the field it died in. Counterpart of [`Writer`].
pub struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CoreError::CheckpointCorrupt { what })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CoreError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.bytes(4, what)?);
        Ok(u32::from_le_bytes(b))
    }
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CoreError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.bytes(8, what)?);
        Ok(u64::from_le_bytes(b))
    }
    pub fn i64(&mut self, what: &'static str) -> Result<i64, CoreError> {
        Ok(self.u64(what)? as i64)
    }
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    /// A u64 length prefix, sanity-checked against the bytes actually
    /// remaining (each element needs ≥ `elem_size` bytes) so a corrupt
    /// length cannot trigger an absurd allocation.
    pub fn len(&mut self, what: &'static str, elem_size: usize) -> Result<usize, CoreError> {
        let n = self.u64(what)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_size as u64)
            .is_none_or(|b| b > remaining)
        {
            return Err(CoreError::CheckpointCorrupt { what });
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            time: 1.25e-7,
            events: 10_000,
            rng_state: [1, u64::MAX, 3, 0xdead_beef],
            islands: 2,
            leads: 3,
            junctions: 4,
            electrons: vec![-1, 7],
            lead_voltages: vec![0.0, 25e-3, -25e-3],
            electron_counts: vec![10.0, -3.0, 0.5, 0.0],
            stimuli: vec![Stimulus {
                time: 2e-7,
                lead: 1,
                voltage: 30e-3,
            }],
            next_stimulus: 0,
            probes: vec![ProbeSnapshot {
                node: 3,
                every: 2,
                samples: vec![(1e-9, 0.001), (2e-9, -0.002)],
            }],
            solver: SolverSnapshot::Adaptive {
                threshold: 0.05,
                refresh_interval: 500,
                stats: AdaptiveStats {
                    events: 10_000,
                    junctions_tested: 40_000,
                    rate_recalcs: 9_000,
                    full_refreshes: 20,
                },
            },
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let cp = sample();
        let bytes = cp.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(cp, back);

        let nonadaptive = Checkpoint {
            solver: SolverSnapshot::NonAdaptive { rate_recalcs: 77 },
            ..sample()
        };
        let back = Checkpoint::decode(&nonadaptive.encode()).unwrap();
        assert_eq!(nonadaptive, back);
    }

    #[test]
    fn negative_zero_and_subnormals_survive() {
        let mut cp = sample();
        cp.lead_voltages = vec![-0.0, f64::MIN_POSITIVE, 5e-324];
        cp.leads = 3;
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        for (a, b) in cp.lead_voltages.iter().zip(&back.lead_voltages) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode();
        // Truncation.
        assert!(matches!(
            Checkpoint::decode(&bytes[..bytes.len() - 1]),
            Err(CoreError::CheckpointCorrupt { .. })
        ));
        assert!(matches!(
            Checkpoint::decode(&[]),
            Err(CoreError::CheckpointCorrupt { what: "truncated" })
        ));
        // A flipped bit anywhere must fail the checksum.
        for i in [0, 8, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    Checkpoint::decode(&bad),
                    Err(CoreError::CheckpointCorrupt { .. })
                ),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        // Re-seal the checksum so only the magic is wrong.
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CoreError::CheckpointCorrupt { what: "magic" })
        ));

        let mut bytes = sample().encode();
        bytes[8] = 99; // version LSB
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CoreError::CheckpointCorrupt {
                what: "unsupported version"
            })
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        // Corrupt the electrons length field to a huge value and
        // re-seal the checksum: the length sanity check must refuse.
        let cp = sample();
        let bytes = cp.encode();
        // Offset of the electrons length: magic(8)+version(4)+time(8)
        // +events(8)+rng(32)+islands(8)+leads(8)+junctions(8) = 84.
        let off = 84;
        let mut bad = bytes.clone();
        bad[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = bad.len() - 8;
        let sum = fnv1a64(&bad[..body_len]).to_le_bytes();
        bad[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            Checkpoint::decode(&bad),
            Err(CoreError::CheckpointCorrupt { what: "electrons" })
        ));
    }
}
