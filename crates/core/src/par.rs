//! Deterministic parallel execution layer: sweeps, 2-D maps, and
//! independent-replica Monte Carlo ensembles.
//!
//! Everything SEMSIM evaluates is embarrassingly parallel — every I–V
//! sweep point, every `(V_bias, V_gate)` map cell, every ensemble
//! replica runs on its own circuit copy. This module fans those tasks
//! out over [`std::thread::scope`] with a chunked work queue (a single
//! [`AtomicUsize`] chunk cursor; the workspace is offline, so no rayon)
//! while keeping a hard determinism contract:
//!
//! **Results are bit-identical regardless of thread count**, including
//! `threads = 1` matching the serial drivers in [`crate::engine`].
//!
//! Two mechanisms carry the contract:
//!
//! 1. **Counter-based seed splitting** — task `i` draws from the PRNG
//!    stream seeded by [`split_seed`]`(master_seed, i)`, a pure function
//!    of the task index; which thread executes the task is irrelevant.
//! 2. **Index-ordered merge** — per-task results land in a slot vector
//!    indexed by task, and reductions (ensemble statistics, merged
//!    health reports, error selection) fold that vector in index order.
//!    Thread scheduling can permute *execution* order arbitrarily; it
//!    can never permute *merge* order.
//!
//! `tests/par_determinism.rs` at the workspace root pins the contract:
//! byte-identical sweeps across 1/2/4/8 threads, ensemble statistics
//! invariant under thread count and task permutation, and collision-free
//! split streams.
//!
//! Every task additionally runs under **panic isolation**: a panicking
//! job is caught at the task boundary ([`std::panic::catch_unwind`])
//! and surfaces as [`CoreError::TaskPanicked`] through the ordinary
//! lowest-index-error-wins fold — sibling tasks run to completion, and
//! the error a caller sees is the same at every thread count. The
//! retry/salvage layer in [`crate::batch`] builds on this to turn
//! isolated faults into recovered or individually-faulted points.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::circuit::{Circuit, JunctionId};
use crate::engine::{run_sweep_point, Record, RunLength, SimConfig, Simulation, SweepPoint};
use crate::health::{HealthReport, RunOutcome, Supervisor};
pub use crate::rng::split_seed;
use crate::CoreError;

/// Default number of tasks a worker claims per queue operation. Small
/// enough for load balance on heterogeneous points (a blockaded point
/// finishes orders of magnitude faster than a conducting one), large
/// enough to amortize the atomic increment. Also the reference value
/// for the SC011 lint: an ensemble of at most this many replicas fits
/// in a single worker's chunk and cannot occupy a second thread.
pub const TASK_CHUNK: usize = 4;

/// How many worker threads the parallel drivers use by default:
/// [`std::thread::available_parallelism`], or 1 when unknown.
#[must_use]
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Execution knobs for the parallel drivers. **None of them can change
/// results** — only wall-clock time and scheduling; the determinism
/// test suite exercises that promise directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParOpts {
    /// Worker threads; `0` means [`available_threads`]. Capped at the
    /// task count.
    pub threads: usize,
    /// Tasks claimed per queue operation; `0` means [`TASK_CHUNK`].
    pub chunk: usize,
    /// Hand out chunks from the tail of the queue instead of the head.
    /// Exists so tests can permute task execution order and assert the
    /// merged results do not move.
    pub reverse: bool,
}

impl ParOpts {
    /// Options for `n` worker threads (0 = all available).
    #[must_use]
    pub fn with_threads(n: usize) -> Self {
        ParOpts {
            threads: n,
            ..ParOpts::default()
        }
    }

    /// Strictly serial execution on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    fn resolved_threads(&self, tasks: usize) -> usize {
        let t = if self.threads == 0 {
            available_threads()
        } else {
            self.threads
        };
        t.clamp(1, tasks.max(1))
    }

    fn resolved_chunk(&self) -> usize {
        if self.chunk == 0 {
            TASK_CHUNK
        } else {
            self.chunk
        }
    }
}

/// Renders a caught panic payload as a message (panics carry a `&str`
/// or `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job under panic isolation: an unwinding task becomes
/// [`CoreError::TaskPanicked`] instead of propagating the panic into
/// the worker (parallel path) or the caller (serial path).
fn run_isolated<T, F>(i: usize, job: &F) -> Result<T, CoreError>
where
    F: Fn(usize) -> Result<T, CoreError> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| job(i))) {
        Ok(r) => r,
        Err(payload) => Err(CoreError::TaskPanicked {
            task: i,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Runs `tasks` fallible jobs over the chunked work queue and returns
/// their results in task order. On failure the error of the *smallest*
/// failing task index is returned — the same error the serial loop
/// would hit first, keeping error behavior thread-count-invariant.
/// Panics are isolated per task (see [`run_isolated`]) and participate
/// in the same lowest-index selection as ordinary errors.
pub(crate) fn run_tasks<T, F>(tasks: usize, opts: ParOpts, job: F) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(usize) -> Result<T, CoreError> + Sync,
{
    if tasks == 0 {
        return Ok(Vec::new());
    }
    let threads = opts.resolved_threads(tasks);
    if threads == 1 {
        // Serial fast path: short-circuits on the first (= lowest
        // index) error, exactly like the pre-parallel drivers.
        return (0..tasks).map(|i| run_isolated(i, &job)).collect();
    }
    let chunk = opts.resolved_chunk();
    let nchunks = tasks.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<T, CoreError>>> = Vec::new();
    slots.resize_with(tasks, || None);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, Result<T, CoreError>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks {
                            break;
                        }
                        let c = if opts.reverse { nchunks - 1 - c } else { c };
                        let start = c * chunk;
                        let end = (start + chunk).min(tasks);
                        for i in start..end {
                            done.push((i, run_isolated(i, &job)));
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // Jobs are panic-isolated, so a worker thread can only die
            // to something catastrophic that bypasses `catch_unwind`
            // (e.g. a double panic or stack exhaustion). Even then the
            // sibling workers' results are kept; the dead worker's
            // tasks stay `None` and surface as `TaskPanicked` below.
            if let Ok(done) = handle.join() {
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            }
        }
    });

    // Index-ordered fold: first error wins deterministically.
    let mut out = Vec::with_capacity(tasks);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(CoreError::TaskPanicked {
                    task: i,
                    message: "worker thread died before reporting the task result".to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Maps `f` over `0..n` in parallel for infallible jobs, returning the
/// results in index order. A convenience over the same work queue for
/// callers outside the sweep/ensemble shapes (e.g. the bench binaries'
/// per-seed and per-setting fan-outs).
pub fn par_indexed<T, F>(n: usize, opts: ParOpts, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match run_tasks(n, opts, |i| Ok(f(i))) {
        Ok(v) => v,
        // Infallible jobs can still panic; re-raise on the caller's
        // thread with the original payload so `par_indexed` behaves
        // like a serial loop would.
        Err(CoreError::TaskPanicked { task, message }) => {
            panic!("par_indexed task {task} panicked: {message}")
        }
        Err(_) => unreachable!("infallible job returned an error"),
    }
}

/// Parallel I–V sweep: the exact computation of [`crate::engine::sweep`]
/// fanned out over the work queue. Point `i` uses the PRNG stream
/// seeded by [`split_seed`]`(config.seed, i)`; the returned vector is
/// ordered by `controls` index and bit-identical for every
/// `opts.threads`, including 1 (which matches the serial driver).
///
/// # Errors
///
/// Propagates configuration errors from [`Simulation::new`]; when
/// several points fail, the error of the lowest point index is
/// returned (the one the serial sweep would hit first).
#[allow(clippy::too_many_arguments)]
pub fn par_sweep<F>(
    circuit: &Circuit,
    config: &SimConfig,
    junction: JunctionId,
    controls: &[f64],
    warmup: u64,
    events: u64,
    opts: ParOpts,
    setup: F,
) -> Result<Vec<SweepPoint>, CoreError>
where
    F: Fn(&mut Simulation<'_>, f64) -> Result<(), CoreError> + Sync,
{
    run_tasks(controls.len(), opts, |i| {
        let mut apply = &setup;
        run_sweep_point(
            circuit,
            config,
            junction,
            i as u64,
            controls[i],
            warmup,
            events,
            &mut apply,
        )
    })
}

/// One cell of a 2-D control map (e.g. the paper's Fig. 5
/// `(V_bias, V_gate)` current map).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPoint {
    /// Inner (fast) axis value.
    pub x: f64,
    /// Outer (slow) axis value.
    pub y: f64,
    /// Measured time-averaged current (A).
    pub current: f64,
    /// Why the measurement stopped (see [`SweepPoint::outcome`]).
    pub outcome: RunOutcome,
    /// Tunnel events measured.
    pub events: u64,
}

/// Parallel 2-D map over `ys × xs` (row-major: `y` outer, `x` inner;
/// cell `(ix, iy)` is task `iy * xs.len() + ix` and element
/// `out[iy * xs.len() + ix]`). `setup(sim, x, y)` applies both
/// controls. Seeding and determinism follow [`par_sweep`].
///
/// # Errors
///
/// As [`par_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn par_map2d<F>(
    circuit: &Circuit,
    config: &SimConfig,
    junction: JunctionId,
    xs: &[f64],
    ys: &[f64],
    warmup: u64,
    events: u64,
    opts: ParOpts,
    setup: F,
) -> Result<Vec<MapPoint>, CoreError>
where
    F: Fn(&mut Simulation<'_>, f64, f64) -> Result<(), CoreError> + Sync,
{
    let nx = xs.len();
    run_tasks(nx * ys.len(), opts, |t| {
        let (x, y) = (xs[t % nx], ys[t / nx]);
        let mut apply = |sim: &mut Simulation<'_>, x: f64| setup(sim, x, y);
        let p = run_sweep_point(
            circuit, config, junction, t as u64, x, warmup, events, &mut apply,
        )?;
        Ok(MapPoint {
            x,
            y,
            current: p.current,
            outcome: p.outcome,
            events: p.events,
        })
    })
}

/// Tally of replica [`RunOutcome`]s in an ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Replicas that completed their requested length.
    pub completed: usize,
    /// Replicas frozen in Coulomb blockade.
    pub blockaded: usize,
    /// Replicas truncated by the wall-clock budget.
    pub wall_clock_exceeded: usize,
    /// Replicas truncated by the lifetime event cap.
    pub event_cap_reached: usize,
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn note(&mut self, outcome: &RunOutcome) {
        match outcome {
            RunOutcome::Completed => self.completed += 1,
            RunOutcome::Blockaded { .. } => self.blockaded += 1,
            RunOutcome::WallClockExceeded { .. } => self.wall_clock_exceeded += 1,
            RunOutcome::EventCapReached { .. } => self.event_cap_reached += 1,
        }
    }

    /// Total outcomes recorded.
    #[must_use]
    pub fn total(&self) -> usize {
        self.completed + self.blockaded + self.wall_clock_exceeded + self.event_cap_reached
    }
}

/// Merged results of an independent-replica Monte Carlo ensemble.
///
/// Nothing a replica produced is dropped: the full per-replica
/// [`Record`]s are kept (replica-indexed), per-replica
/// [`HealthReport`]s are folded into one ensemble-level report, and
/// every [`RunOutcome`] is tallied. All reductions fold in replica
/// order, so the report is identical for every thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleReport {
    /// Per-replica run records, indexed by replica.
    pub records: Vec<Record>,
    /// Outcome tally across replicas.
    pub outcomes: OutcomeCounts,
    /// Per-replica health reports folded with [`HealthReport::absorb`]
    /// in replica order.
    pub health: HealthReport,
    /// Mean time-averaged current (A) through the recorded junction,
    /// averaged over replicas in replica order.
    pub mean_current: f64,
    /// Population standard deviation of the replica currents (A).
    pub std_current: f64,
    /// Total tunnel events executed across replicas.
    pub total_events: u64,
}

impl EnsembleReport {
    /// Replica count.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.records.len()
    }

    /// Standard error of the ensemble mean current: `σ/√n` over the
    /// replica currents. This is the statistical error bar a
    /// cross-engine comparison of [`EnsembleReport::mean_current`]
    /// should tolerate; 0 when the ensemble is empty.
    #[must_use]
    pub fn sem_current(&self) -> f64 {
        let n = self.replicas();
        if n == 0 {
            0.0
        } else {
            self.std_current / (n as f64).sqrt()
        }
    }
}

/// An independent-replica Monte Carlo ensemble of one circuit: `n`
/// statistically independent copies of the same run, each seeded by
/// [`split_seed`]`(config.seed, replica)`.
///
/// Replicas always run with
/// [`Supervisor::blockade_is_outcome`] set: a frozen replica is data
/// ([`RunOutcome::Blockaded`], tallied in the report), not an error
/// that aborts the ensemble.
///
/// # Example
///
/// ```no_run
/// use semsim_core::engine::{RunLength, SimConfig};
/// use semsim_core::par::{Ensemble, ParOpts};
/// # fn main() -> Result<(), semsim_core::CoreError> {
/// # let mut b = semsim_core::circuit::CircuitBuilder::new();
/// # let src = b.add_lead(10e-3);
/// # let island = b.add_island();
/// # let j = b.add_junction(src, island, 1e6, 1e-18)?;
/// # b.add_junction(island, semsim_core::circuit::NodeId::GROUND, 1e6, 1e-18)?;
/// # let circuit = b.build()?;
/// let report = Ensemble::new(&circuit, SimConfig::new(5.0), j, 32, RunLength::Events(10_000))
///     .with_warmup(500)
///     .run(ParOpts::default())?;
/// println!("I = {} ± {} A", report.mean_current, report.std_current);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ensemble<'c> {
    circuit: &'c Circuit,
    config: SimConfig,
    junction: JunctionId,
    replicas: usize,
    length: RunLength,
    warmup: u64,
}

impl<'c> Ensemble<'c> {
    /// An ensemble of `replicas` independent runs of `length`, with
    /// current statistics measured through `junction`.
    pub fn new(
        circuit: &'c Circuit,
        config: SimConfig,
        junction: JunctionId,
        replicas: usize,
        length: RunLength,
    ) -> Self {
        Ensemble {
            circuit,
            config,
            junction,
            replicas,
            length,
            warmup: 0,
        }
    }

    /// Discards `events` warmup events per replica before measuring.
    #[must_use]
    pub fn with_warmup(mut self, events: u64) -> Self {
        self.warmup = events;
        self
    }

    /// Runs every replica (in parallel per `opts`) with no extra
    /// per-replica setup.
    ///
    /// # Errors
    ///
    /// As [`Ensemble::run_with`].
    pub fn run(&self, opts: ParOpts) -> Result<EnsembleReport, CoreError> {
        self.run_with(opts, |_, _| Ok(()))
    }

    /// Runs every replica, calling `setup(sim, replica)` on each fresh
    /// simulation before its warmup (e.g. to set bias leads).
    ///
    /// # Errors
    ///
    /// Configuration and numerical-fault errors propagate; with several
    /// failing replicas the lowest replica index wins (see
    /// [`par_sweep`]). Blockade never errors here — it is an outcome.
    pub fn run_with<F>(&self, opts: ParOpts, setup: F) -> Result<EnsembleReport, CoreError>
    where
        F: Fn(&mut Simulation<'_>, usize) -> Result<(), CoreError> + Sync,
    {
        let per_replica = run_tasks(self.replicas, opts, |r| {
            let cfg = self
                .config
                .clone()
                .with_seed(split_seed(self.config.seed, r as u64))
                .with_supervisor(Supervisor {
                    blockade_is_outcome: true,
                    ..self.config.supervisor
                });
            let mut sim = Simulation::new(self.circuit, cfg)?;
            setup(&mut sim, r)?;
            if self.warmup > 0 {
                sim.run(RunLength::Events(self.warmup))?;
            }
            let record = sim.run(self.length)?;
            Ok((record, sim.health_report()))
        })?;

        // Replica-ordered reductions: identical for any thread count.
        let mut outcomes = OutcomeCounts::default();
        let mut health = HealthReport::empty();
        let mut total_events = 0u64;
        let mut records = Vec::with_capacity(per_replica.len());
        let mut currents = Vec::with_capacity(per_replica.len());
        for (record, h) in per_replica {
            outcomes.note(&record.outcome);
            health.absorb(&h);
            total_events += record.events;
            currents.push(record.current(self.junction));
            records.push(record);
        }
        let n = currents.len().max(1) as f64;
        let mean = currents.iter().sum::<f64>() / n;
        let var = currents
            .iter()
            .map(|c| (c - mean) * (c - mean))
            .sum::<f64>()
            / n;
        Ok(EnsembleReport {
            records,
            outcomes,
            health,
            mean_current: mean,
            std_current: var.sqrt(),
            total_events,
        })
    }
}

/// Convenience wrapper: [`Ensemble::new`]`(…).with_warmup(warmup).run(opts)`.
///
/// # Errors
///
/// As [`Ensemble::run_with`].
#[allow(clippy::too_many_arguments)]
pub fn par_ensemble(
    circuit: &Circuit,
    config: &SimConfig,
    junction: JunctionId,
    replicas: usize,
    warmup: u64,
    length: RunLength,
    opts: ParOpts,
) -> Result<EnsembleReport, CoreError> {
    Ensemble::new(circuit, config.clone(), junction, replicas, length)
        .with_warmup(warmup)
        .run(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::engine::sweep;

    fn conducting_set() -> (Circuit, JunctionId) {
        let mut b = CircuitBuilder::new();
        let src = b.add_lead(0.0);
        let drn = b.add_lead(0.0);
        let gate = b.add_lead(0.0);
        let island = b.add_island();
        let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
        b.add_junction(island, drn, 1e6, 1e-18).unwrap();
        b.add_capacitor(gate, island, 3e-18).unwrap();
        (b.build().unwrap(), j1)
    }

    fn bits(points: &[SweepPoint]) -> Vec<(u64, u64, u64)> {
        points
            .iter()
            .map(|p| (p.control.to_bits(), p.current.to_bits(), p.events))
            .collect()
    }

    #[test]
    fn par_sweep_matches_serial_sweep_bitwise() {
        let (c, j1) = conducting_set();
        let cfg = SimConfig::new(5.0).with_seed(17);
        let controls = [-30e-3, -10e-3, 0.0, 10e-3, 30e-3];
        let bias = |sim: &mut Simulation<'_>, v: f64| {
            sim.set_lead_voltage(1, v / 2.0)?;
            sim.set_lead_voltage(2, -v / 2.0)
        };
        let serial = sweep(&c, &cfg, j1, &controls, 50, 400, bias).unwrap();
        for threads in [1, 2, 4] {
            let par = par_sweep(
                &c,
                &cfg,
                j1,
                &controls,
                50,
                400,
                ParOpts::with_threads(threads),
                bias,
            )
            .unwrap();
            assert_eq!(bits(&serial), bits(&par), "threads = {threads}");
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn map2d_layout_is_row_major_and_thread_invariant() {
        let (c, j1) = conducting_set();
        let cfg = SimConfig::new(5.0).with_seed(3);
        let xs = [10e-3, 20e-3, 30e-3];
        let ys = [0.0, 5e-3];
        let setup = |sim: &mut Simulation<'_>, x: f64, y: f64| {
            sim.set_lead_voltage(1, x)?;
            sim.set_lead_voltage(3, y)
        };
        let a = par_map2d(&c, &cfg, j1, &xs, &ys, 20, 200, ParOpts::serial(), setup).unwrap();
        assert_eq!(a.len(), 6);
        for (iy, &y) in ys.iter().enumerate() {
            for (ix, &x) in xs.iter().enumerate() {
                let p = &a[iy * xs.len() + ix];
                assert_eq!((p.x, p.y), (x, y));
            }
        }
        let b = par_map2d(
            &c,
            &cfg,
            j1,
            &xs,
            &ys,
            20,
            200,
            ParOpts {
                threads: 3,
                chunk: 1,
                reverse: true,
            },
            setup,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ensemble_merges_outcomes_and_health() {
        let (c, j1) = conducting_set();
        // Half the replicas conduct, half are blockaded: even replicas
        // get full bias, odd replicas a sub-threshold one.
        let cfg = SimConfig::new(0.01).with_seed(5).with_audit_interval(100);
        let ens = Ensemble::new(&c, cfg, j1, 6, RunLength::Events(300));
        let report = ens
            .run_with(ParOpts::default(), |sim, r| {
                let v = if r % 2 == 0 { 40e-3 } else { 1e-3 };
                sim.set_lead_voltage(1, v / 2.0)?;
                sim.set_lead_voltage(2, -v / 2.0)
            })
            .unwrap();
        assert_eq!(report.replicas(), 6);
        assert_eq!(report.outcomes.completed, 3);
        assert_eq!(report.outcomes.blockaded, 3);
        assert_eq!(report.outcomes.total(), 6);
        // Conducting replicas audited (300 events / 100); blockaded
        // replicas ran their one free frozen-table audit each.
        assert!(report.health.audits >= 9, "audits {}", report.health.audits);
        assert_eq!(report.total_events, 3 * 300);
        assert!(report.mean_current > 0.0);
        assert!(report.std_current > 0.0, "bimodal ensemble has spread");
        // Blockaded replicas are data, not errors, and stay visible.
        assert!(report.records[1].events == 0);
        assert!(matches!(
            report.records[1].outcome,
            RunOutcome::Blockaded { .. }
        ));
    }

    #[test]
    fn empty_and_single_task_edge_cases() {
        let (c, j1) = conducting_set();
        let cfg = SimConfig::new(5.0).with_seed(1);
        let none = par_sweep(&c, &cfg, j1, &[], 10, 10, ParOpts::default(), |_sim, _v| {
            Ok(())
        })
        .unwrap();
        assert!(none.is_empty());
        let one = par_ensemble(
            &c,
            &cfg,
            j1,
            1,
            0,
            RunLength::Events(50),
            ParOpts::with_threads(8),
        )
        .unwrap();
        assert_eq!(one.replicas(), 1);
    }

    #[test]
    fn lowest_index_error_wins() {
        let (c, j1) = conducting_set();
        let cfg = SimConfig::new(5.0).with_seed(1);
        // Leads 7 and 8 do not exist: tasks 1 and 3 fail. Every thread
        // count must surface task 1's error (lead 7), like the serial
        // loop would.
        for threads in [1, 4] {
            let err = par_sweep(
                &c,
                &cfg,
                j1,
                &[1.0, 7.0, 2.0, 8.0],
                5,
                5,
                ParOpts::with_threads(threads),
                |sim, v| {
                    if v > 5.0 {
                        sim.set_lead_voltage(v as usize, 0.0)
                    } else {
                        sim.set_lead_voltage(1, 10e-3)
                    }
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, CoreError::UnknownLead { lead: 7 }),
                "threads {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn par_indexed_orders_results() {
        let squares = par_indexed(100, ParOpts::with_threads(4), |i| i * i);
        assert_eq!(squares.len(), 100);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
        assert!(par_indexed(0, ParOpts::default(), |i| i).is_empty());
    }

    #[test]
    fn panic_is_isolated_and_thread_count_invariant() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 2, 4] {
            let completed = AtomicUsize::new(0);
            let err = run_tasks(6, ParOpts::with_threads(threads), |i| {
                if i == 3 {
                    panic!("injected panic at task {i}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                Ok(i)
            })
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::TaskPanicked {
                    task: 3,
                    message: "injected panic at task 3".to_string(),
                },
                "threads = {threads}"
            );
            // The serial path short-circuits at the panic; the parallel
            // path keeps running sibling tasks instead of tearing down
            // the scope.
            let done = completed.load(Ordering::Relaxed);
            if threads == 1 {
                assert_eq!(done, 3, "serial path stops at the panic");
            } else {
                assert_eq!(done, 5, "siblings of a panicked task still run");
            }
        }
    }

    #[test]
    fn lowest_index_wins_across_panics_and_errors() {
        // Task 1 errors, task 2 panics: the fold must pick task 1's
        // error at every thread count, like the serial loop would.
        for threads in [1, 4] {
            let err = run_tasks(4, ParOpts::with_threads(threads), |i| match i {
                1 => Err(CoreError::NoJunctions),
                2 => panic!("later panic loses"),
                _ => Ok(i),
            })
            .unwrap_err();
            assert_eq!(err, CoreError::NoJunctions, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "par_indexed task 2 panicked: boom")]
    fn par_indexed_repanics_on_caller_thread() {
        par_indexed(4, ParOpts::with_threads(2), |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
