//! Electrostatic state and free-energy changes (paper Eq. 2).
//!
//! The dynamic state of a single-electron circuit is the integer number
//! of excess electrons on each island plus the instantaneous lead
//! voltages. Everything else — island charges `q̃`, potentials
//! `φ = C⁻¹q̃`, and the free-energy change `ΔW` of any candidate tunnel
//! event — is derived here.

use crate::circuit::{Circuit, NodeId};
use crate::constants::E_CHARGE;

/// Mutable electrostatic state of a circuit during simulation.
///
/// # Example
///
/// ```
/// use semsim_core::circuit::CircuitBuilder;
/// use semsim_core::energy::CircuitState;
///
/// # fn main() -> Result<(), semsim_core::CoreError> {
/// let mut b = CircuitBuilder::new();
/// let lead = b.add_lead(1e-3);
/// let island = b.add_island();
/// b.add_junction(lead, island, 1e6, 1e-18)?;
/// b.add_junction(island, semsim_core::circuit::NodeId::GROUND, 1e6, 1e-18)?;
/// let c = b.build()?;
/// let mut s = CircuitState::new(&c);
/// s.recompute_potentials(&c);
/// assert_eq!(s.electrons(), &[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitState {
    /// Excess electrons per island.
    electrons: Vec<i64>,
    /// Instantaneous lead voltages (V).
    lead_voltages: Vec<f64>,
    /// Cached island potentials (V). Exactness depends on the solver:
    /// the non-adaptive solver keeps these exact after every event, the
    /// adaptive solver refreshes them lazily.
    pub(crate) phi: Vec<f64>,
    /// Maintained island charge vector `q̃` (C): updated O(1) per
    /// transfer, marked dirty on lead steps (which are rare). Lets a
    /// single island's potential be recomputed in O(islands) without
    /// replaying event history.
    q_tilde: Vec<f64>,
    q_tilde_dirty: bool,
    /// Reusable buffer for charge-vector assembly — keeps potential
    /// refreshes allocation-free on the event loop's hot path.
    scratch_q: Vec<f64>,
}

/// Scratch-buffer contents carry no state; equality is over the
/// dynamic state proper.
impl PartialEq for CircuitState {
    fn eq(&self, other: &Self) -> bool {
        self.electrons == other.electrons
            && self.lead_voltages == other.lead_voltages
            && self.phi == other.phi
            && self.q_tilde == other.q_tilde
            && self.q_tilde_dirty == other.q_tilde_dirty
    }
}

impl CircuitState {
    /// Initial state: zero excess electrons, leads at their declared
    /// biases, potentials unset (call
    /// [`CircuitState::recompute_potentials`]).
    pub fn new(circuit: &Circuit) -> Self {
        let mut state = CircuitState {
            electrons: vec![0; circuit.num_islands()],
            lead_voltages: circuit.initial_lead_voltages().to_vec(),
            phi: vec![0.0; circuit.num_islands()],
            q_tilde: Vec::new(),
            q_tilde_dirty: false,
            scratch_q: Vec::with_capacity(circuit.num_islands()),
        };
        state.q_tilde = state.charge_vector(circuit);
        state
    }

    /// Excess electrons per island.
    pub fn electrons(&self) -> &[i64] {
        &self.electrons
    }

    /// Instantaneous lead voltages.
    pub fn lead_voltages(&self) -> &[f64] {
        &self.lead_voltages
    }

    /// Sets the voltage of `lead`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `lead` is out of range.
    pub fn set_lead_voltage(&mut self, lead: usize, v: f64) -> f64 {
        // q̃ depends on the circuit's coupling block, which this type
        // does not own here; mark the cache dirty (lead steps are rare).
        self.q_tilde_dirty = true;
        std::mem::replace(&mut self.lead_voltages[lead], v)
    }

    /// Exact potential of one island from the maintained charge vector:
    /// `φ_k = (C⁻¹)_k · q̃` over the sparsified row — O(stage) in weakly
    /// coupled circuits, independent of how much event history the
    /// caller skipped.
    pub fn exact_island_potential(&mut self, circuit: &Circuit, island: usize) -> f64 {
        if self.q_tilde_dirty {
            let mut q = std::mem::take(&mut self.q_tilde);
            fill_charge_vector(circuit, &self.electrons, &self.lead_voltages, &mut q);
            self.q_tilde = q;
            self.q_tilde_dirty = false;
        }
        circuit
            .sparse_inverse_capacitance()
            .row_dot(island, &self.q_tilde)
    }

    /// The island charge vector `q̃` (C): `−e·n + q₀ + C_ext·V`.
    pub fn charge_vector(&self, circuit: &Circuit) -> Vec<f64> {
        let mut q = Vec::with_capacity(circuit.num_islands());
        fill_charge_vector(circuit, &self.electrons, &self.lead_voltages, &mut q);
        q
    }

    /// Recomputes all island potentials exactly: `φ = C⁻¹·q̃`.
    /// Allocation-free: assembles q̃ into the reusable scratch buffer
    /// and multiplies into the existing `phi` storage.
    pub fn recompute_potentials(&mut self, circuit: &Circuit) {
        let mut q = std::mem::take(&mut self.scratch_q);
        fill_charge_vector(circuit, &self.electrons, &self.lead_voltages, &mut q);
        circuit
            .inverse_capacitance()
            .mul_vec_into(&q, &mut self.phi)
            .expect("island dimensions fixed at build");
        self.scratch_q = q;
    }

    /// [`CircuitState::recompute_potentials`] routed through a compute
    /// backend's matvec kernel. Every backend's matvec is bit-identical
    /// to `Matrix::mul_vec_into`, so this is an equivalent entry point;
    /// it exists so the adaptive solver's full refreshes go through the
    /// backend under test/benchmark selection.
    pub(crate) fn recompute_potentials_with(
        &mut self,
        circuit: &Circuit,
        backend: &dyn crate::backend::Backend,
    ) {
        let mut q = std::mem::take(&mut self.scratch_q);
        fill_charge_vector(circuit, &self.electrons, &self.lead_voltages, &mut q);
        backend.matvec(circuit.inverse_capacitance(), &q, &mut self.phi);
        self.scratch_q = q;
    }

    /// Potential of a node: lead voltage for leads, cached `φ` for
    /// islands.
    #[inline]
    pub fn potential(&self, circuit: &Circuit, node: NodeId) -> f64 {
        match circuit.island_index(node) {
            Some(i) => self.phi[i],
            None => {
                let l = circuit.lead_index(node).expect("node is lead or island");
                self.lead_voltages[l]
            }
        }
    }

    /// Cached island potentials.
    pub fn island_potentials(&self) -> &[f64] {
        &self.phi
    }

    /// Rebuilds the maintained q̃ cache from scratch. Incremental q̃
    /// updates are exact only up to floating-point association order;
    /// checkpoint/resume rebuilds the cache on *both* sides so their
    /// subsequent potential refreshes agree bit-for-bit.
    pub(crate) fn rebuild_charge_cache(&mut self, circuit: &Circuit) {
        let mut q = std::mem::take(&mut self.q_tilde);
        fill_charge_vector(circuit, &self.electrons, &self.lead_voltages, &mut q);
        self.q_tilde = q;
        self.q_tilde_dirty = false;
    }

    /// Overwrites the dynamic state from a checkpoint: electron numbers
    /// and lead voltages are replaced, q̃ is rebuilt from scratch, and
    /// potentials are left for the caller to recompute.
    pub(crate) fn restore(
        &mut self,
        circuit: &Circuit,
        electrons: Vec<i64>,
        lead_voltages: Vec<f64>,
    ) {
        debug_assert_eq!(electrons.len(), circuit.num_islands());
        debug_assert_eq!(lead_voltages.len(), circuit.num_leads());
        self.electrons = electrons;
        self.lead_voltages = lead_voltages;
        self.rebuild_charge_cache(circuit);
    }

    /// Moves `count` electrons from `from` to `to` (island electron
    /// numbers and q̃ only; potentials are the solver's responsibility).
    pub fn apply_transfer(&mut self, circuit: &Circuit, from: NodeId, to: NodeId, count: i64) {
        if let Some(i) = circuit.island_index(from) {
            self.electrons[i] -= count;
            self.q_tilde[i] += count as f64 * E_CHARGE;
        }
        if let Some(i) = circuit.island_index(to) {
            self.electrons[i] += count;
            self.q_tilde[i] -= count as f64 * E_CHARGE;
        }
    }
}

/// Assembles the island charge vector `q̃ = −e·n + q₀ + C_ext·V` into
/// `out` (cleared first). The arithmetic and accumulation order are
/// identical to the historical `charge_vector`, so values are
/// bit-identical whichever entry point assembles them.
fn fill_charge_vector(
    circuit: &Circuit,
    electrons: &[i64],
    lead_voltages: &[f64],
    out: &mut Vec<f64>,
) {
    let q0 = circuit.island_background_charges();
    let cext = circuit.lead_coupling();
    out.clear();
    out.extend((0..circuit.num_islands()).map(|i| {
        let mut q = -E_CHARGE * electrons[i] as f64 + q0[i];
        for (l, &v) in lead_voltages.iter().enumerate() {
            q += cext.get(i, l) * v;
        }
        q
    }));
}

/// Free-energy change (J) for moving `count` electrons from node `from`
/// to node `to` — the paper's Eq. 2, generalized to leads (whose
/// potential is the source voltage and whose charging terms vanish) and
/// to multi-electron transfers (Cooper pairs use `count = 2`):
///
/// `ΔW = k·e·(φ_from − φ_to) + (k·e)²/2 · (C⁻¹_ff + C⁻¹_tt − 2·C⁻¹_ft)`
///
/// `ΔW < 0` means the transfer lowers the free energy.
#[inline]
pub fn delta_w(
    circuit: &Circuit,
    state: &CircuitState,
    from: NodeId,
    to: NodeId,
    count: i64,
) -> f64 {
    let ke = count as f64 * E_CHARGE;
    let phi_from = state.potential(circuit, from);
    let phi_to = state.potential(circuit, to);
    let charging = circuit.cinv_between(from, from) + circuit.cinv_between(to, to)
        - 2.0 * circuit.cinv_between(from, to);
    ke * (phi_from - phi_to) + 0.5 * ke * ke * charging
}

/// Exact change of an island's potential caused by moving `count`
/// electrons from `from` to `to`: `δφ_k = k·e·(C⁻¹_{k,from} −
/// C⁻¹_{k,to})` (lead terms are zero). Potentials are linear in the
/// island charges, so these per-event deltas are exact, which is what
/// lets the adaptive solver accumulate them without approximation error
/// in the potentials themselves.
#[inline]
pub fn potential_delta(
    circuit: &Circuit,
    island: usize,
    from: NodeId,
    to: NodeId,
    count: i64,
) -> f64 {
    let cinv = circuit.inverse_capacitance();
    let mut d = 0.0;
    if let Some(f) = circuit.island_index(from) {
        d += cinv.get(island, f);
    }
    if let Some(t) = circuit.island_index(to) {
        d -= cinv.get(island, t);
    }
    count as f64 * E_CHARGE * d
}

/// Exact change of an island's potential caused by stepping `lead` by
/// `dv` volts: `δφ_k = (C⁻¹·C_ext)_{k,lead} · dv`.
#[inline]
pub fn lead_step_delta(circuit: &Circuit, island: usize, lead: usize, dv: f64) -> f64 {
    circuit.lead_response().get(island, lead) * dv
}

/// Total electrostatic free energy of the state (J), up to a
/// state-independent constant: `F = ½·q̃ᵀ·C⁻¹·q̃`. Used by tests to
/// verify that [`delta_w`] is the exact discrete gradient of `F`.
pub fn total_free_energy(circuit: &Circuit, state: &CircuitState) -> f64 {
    let q = state.charge_vector(circuit);
    let phi = circuit
        .inverse_capacitance()
        .mul_vec(&q)
        .expect("island dimensions fixed at build");
    0.5 * semsim_linalg::dot(&q, &phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    /// Single-electron box: island, junction to ground, gate capacitor.
    fn seb(vg: f64) -> (Circuit, NodeId) {
        let mut b = CircuitBuilder::new();
        let gate = b.add_lead(vg);
        let island = b.add_island();
        b.add_junction(NodeId::GROUND, island, 1e6, 1e-18).unwrap();
        b.add_capacitor(gate, island, 2e-18).unwrap();
        (b.build().unwrap(), island)
    }

    #[test]
    fn seb_delta_w_matches_textbook() {
        // ΔW for adding electron n→n+1 from the ground lead:
        // E_C(2n+1) − e·C_g·V_g/C_Σ with E_C = e²/2C_Σ.
        let vg = 5e-3;
        let (c, island) = seb(vg);
        let mut s = CircuitState::new(&c);
        s.recompute_potentials(&c);
        let csum = 3e-18;
        let ec = E_CHARGE * E_CHARGE / (2.0 * csum);
        let expected = ec - E_CHARGE * 2e-18 * vg / csum;
        let dw = delta_w(&c, &s, NodeId::GROUND, island, 1);
        assert!(
            (dw - expected).abs() < 1e-6 * ec,
            "dw={dw}, expected={expected}"
        );
    }

    #[test]
    fn delta_w_is_discrete_gradient_of_free_energy() {
        // For island→island transfers, ΔW must equal F(after) − F(before)
        // exactly (leads additionally exchange work with their sources,
        // which ½q̃ᵀC⁻¹q̃ absorbs via the q̃ definition).
        let mut b = CircuitBuilder::new();
        let i1 = b.add_island_with_charge(0.3);
        let i2 = b.add_island();
        let lead = b.add_lead(2e-3);
        b.add_junction(lead, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 1e6, 2e-18).unwrap();
        b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        let mut s = CircuitState::new(&c);
        s.recompute_potentials(&c);

        let f0 = total_free_energy(&c, &s);
        let dw = delta_w(&c, &s, i1, i2, 1);
        s.apply_transfer(&c, i1, i2, 1);
        let f1 = total_free_energy(&c, &s);
        assert!(
            ((f1 - f0) - dw).abs() < 1e-9 * f0.abs().max(dw.abs()),
            "ΔF={}, ΔW={}",
            f1 - f0,
            dw
        );
    }

    #[test]
    fn forward_backward_antisymmetry() {
        // ΔW(fw from state) + ΔW(bw from successor state) = 0.
        let mut b = CircuitBuilder::new();
        let lead = b.add_lead(3e-3);
        let i1 = b.add_island();
        let i2 = b.add_island();
        b.add_junction(lead, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 1e6, 1.5e-18).unwrap();
        b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        let mut s = CircuitState::new(&c);
        s.recompute_potentials(&c);

        let fw = delta_w(&c, &s, i1, i2, 1);
        s.apply_transfer(&c, i1, i2, 1);
        s.recompute_potentials(&c);
        let bw = delta_w(&c, &s, i2, i1, 1);
        assert!((fw + bw).abs() < 1e-9 * fw.abs().max(1e-30), "{fw} {bw}");
    }

    #[test]
    fn cooper_pair_charging_is_quadrupled() {
        let (c, island) = seb(0.0);
        let mut s = CircuitState::new(&c);
        s.recompute_potentials(&c);
        let dw1 = delta_w(&c, &s, NodeId::GROUND, island, 1);
        let dw2 = delta_w(&c, &s, NodeId::GROUND, island, 2);
        // At zero gate bias φ = 0, so ΔW is the pure charging term:
        // k²·e²/2C_Σ → factor 4 between 2e and 1e.
        assert!((dw2 / dw1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn potential_delta_matches_full_recompute() {
        let mut b = CircuitBuilder::new();
        let lead = b.add_lead(1e-3);
        let i1 = b.add_island();
        let i2 = b.add_island();
        b.add_junction(lead, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 1e6, 1e-18).unwrap();
        b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap();
        b.add_capacitor(i1, NodeId::GROUND, 5e-18).unwrap();
        let c = b.build().unwrap();
        let mut s = CircuitState::new(&c);
        s.recompute_potentials(&c);
        let before = s.island_potentials().to_vec();

        let deltas: Vec<f64> = (0..c.num_islands())
            .map(|k| potential_delta(&c, k, i1, i2, 1))
            .collect();
        s.apply_transfer(&c, i1, i2, 1);
        s.recompute_potentials(&c);
        for k in 0..c.num_islands() {
            let expected = s.island_potentials()[k] - before[k];
            assert!(
                (deltas[k] - expected).abs() < 1e-12 * expected.abs().max(1e-9),
                "island {k}: {} vs {expected}",
                deltas[k]
            );
        }
    }

    #[test]
    fn lead_step_delta_matches_full_recompute() {
        let (c, _island) = seb(0.0);
        let mut s = CircuitState::new(&c);
        s.recompute_potentials(&c);
        let before = s.island_potentials().to_vec();
        let dv = 7e-3;
        // Gate is lead index 1 (ground = 0).
        let predicted: Vec<f64> = (0..c.num_islands())
            .map(|k| lead_step_delta(&c, k, 1, dv))
            .collect();
        s.set_lead_voltage(1, dv);
        s.recompute_potentials(&c);
        for k in 0..c.num_islands() {
            let actual = s.island_potentials()[k] - before[k];
            assert!((predicted[k] - actual).abs() < 1e-15, "{k}");
        }
    }

    #[test]
    fn transfer_bookkeeping() {
        let (c, island) = seb(0.0);
        let mut s = CircuitState::new(&c);
        s.apply_transfer(&c, NodeId::GROUND, island, 1);
        assert_eq!(s.electrons(), &[1]);
        s.apply_transfer(&c, island, NodeId::GROUND, 2);
        assert_eq!(s.electrons(), &[-1]);
    }
}
