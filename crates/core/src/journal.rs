//! Crash-safe batch journal: the append-only `SEMSIMJL` format.
//!
//! A [`Journal`] records every *successful* point of a batch (sweep or
//! ensemble) as it completes, so a killed run can be resumed with
//! `--resume` and skip straight past the finished work. The format
//! reuses the checkpoint codec ([`Writer`]/[`Reader`], little-endian,
//! FNV-1a checksums — see [`crate::checkpoint`]):
//!
//! ```text
//! header  :=  b"SEMSIMJL"  version:u32  master_seed:u64  tasks:u64
//!             fingerprint:u64  kind:u32  fnv1a64(preceding 40 bytes):u64
//! record  :=  body_len:u32  body  fnv1a64(body):u64
//! body    :=  task:u64  status:u32  recovered_attempts:u32
//!             n_attempts:u32  attempt*  payload(T)
//! attempt :=  attempt:u32  seed:u64  action:u32  has_fault:u32
//!             [fault_len:u32  fault_utf8]
//! ```
//!
//! Design rules, all in service of the batch determinism contract:
//!
//! - **Append-only.** A crash can only ever produce a *truncated or
//!   torn final record*. [`scan`] validates records front to back and
//!   stops at the first invalid one; everything before it is trusted
//!   (each record carries its own checksum), everything from it on is
//!   the *discarded tail*. Resuming truncates the file back to the
//!   valid prefix — corrupt tails are dropped, never repaired.
//! - **Header identity.** The header pins the master seed, task count,
//!   payload kind, and a configuration fingerprint; [`Journal::resume`]
//!   refuses (with [`CoreError::JournalMismatch`]) to resume a journal
//!   written by a different batch, because replaying foreign points
//!   would silently violate bit-identical resume.
//! - **Only `Ok`/`Recovered` points are journaled.** A `Faulted` point
//!   holds no value worth replaying — on resume it is simply run again
//!   (deterministically). `Skipped` points came *from* the journal and
//!   are never written back.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::batch::{AttemptRecord, PointStatus, RecoveryAction};
use crate::checkpoint::{fnv1a64, Reader, Writer};
use crate::engine::SweepPoint;
use crate::health::RunOutcome;
use crate::CoreError;

/// Magic prefix of a journal file.
pub const MAGIC: &[u8; 8] = b"SEMSIMJL";
/// Current journal format version.
pub const FORMAT_VERSION: u32 = 1;
/// Header size on disk: magic + version + seed + tasks + fingerprint +
/// kind + checksum.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 4 + 8;

/// A value that can ride in a journal record. Implemented by
/// [`SweepPoint`] (sweeps and maps) and
/// [`ReplicaSummary`](crate::batch::ReplicaSummary) (ensembles).
pub trait JournalItem: Sized {
    /// Payload discriminator stored in the header so a sweep journal
    /// cannot be resumed against an ensemble (or vice versa).
    const KIND: u32;
    /// Serializes the payload.
    fn encode(&self, w: &mut Writer);
    /// Deserializes the payload (bounds- and tag-checked).
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] marks the record — and therefore the rest of
    /// the file — as a corrupt tail.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CoreError>;
}

/// Identity of the batch a journal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Master RNG seed of the batch.
    pub master_seed: u64,
    /// Total task count of the batch.
    pub tasks: u64,
    /// FNV-1a fingerprint of everything else that determines point
    /// values (controls, run lengths, solver/physics configuration,
    /// retry policy — see [`crate::batch`]).
    pub fingerprint: u64,
    /// Payload discriminator ([`JournalItem::KIND`]).
    pub kind: u32,
}

impl JournalHeader {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(self.master_seed);
        w.u64(self.tasks);
        w.u64(self.fingerprint);
        w.u32(self.kind);
        let sum = fnv1a64(&w.buf);
        w.u64(sum);
        w.buf
    }

    fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(CoreError::JournalCorrupt {
                what: "truncated header",
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(CoreError::JournalCorrupt { what: "magic" });
        }
        let body = &bytes[..HEADER_LEN - 8];
        let mut r = Reader::new(&bytes[8..HEADER_LEN]);
        let version = r.u32("journal version")?;
        let header = JournalHeader {
            master_seed: r.u64("journal master seed")?,
            tasks: r.u64("journal task count")?,
            fingerprint: r.u64("journal fingerprint")?,
            kind: r.u32("journal payload kind")?,
        };
        let stored = r.u64("journal header checksum")?;
        // Checksum before version: a rotted version *field* is
        // corruption; only a resealed header from a genuinely newer
        // writer reports as skew.
        if stored != fnv1a64(body) {
            return Err(CoreError::JournalCorrupt {
                what: "header checksum",
            });
        }
        if version != FORMAT_VERSION {
            return Err(CoreError::JournalVersionSkew {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(header)
    }

    /// Rejects a journal written by a different batch.
    fn check(&self, found: &JournalHeader) -> Result<(), CoreError> {
        let mismatch = |what, expected, found| CoreError::JournalMismatch {
            what,
            expected,
            found,
        };
        if found.kind != self.kind {
            return Err(mismatch(
                "payload kind",
                u64::from(self.kind),
                u64::from(found.kind),
            ));
        }
        if found.master_seed != self.master_seed {
            return Err(mismatch("master seed", self.master_seed, found.master_seed));
        }
        if found.tasks != self.tasks {
            return Err(mismatch("task count", self.tasks, found.tasks));
        }
        if found.fingerprint != self.fingerprint {
            return Err(mismatch(
                "configuration fingerprint",
                self.fingerprint,
                found.fingerprint,
            ));
        }
        Ok(())
    }
}

/// One journaled point: the task it belongs to, how it finished
/// ([`PointStatus::Ok`] or [`PointStatus::Recovered`]), the attempt
/// log that got it there, and the value itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry<T> {
    /// Task index within the batch.
    pub task: usize,
    /// How the point finished (only `Ok`/`Recovered` are journalable).
    pub status: PointStatus,
    /// Per-attempt log (seed, recovery action, fault that ended it).
    pub attempts: Vec<AttemptRecord>,
    /// The point value.
    pub item: T,
}

/// Result of [`scan`]: the header, every valid entry in file order,
/// and how much trailing garbage (if any) follows the valid prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct Scan<T> {
    /// Validated file header.
    pub header: JournalHeader,
    /// Valid entries, in the order they were appended.
    pub entries: Vec<JournalEntry<T>>,
    /// Byte length of the valid prefix (header + valid records).
    pub valid_len: usize,
    /// Bytes after the valid prefix (a torn record, a truncated write,
    /// or bit rot) — safe to discard.
    pub discarded_tail_bytes: usize,
    /// Which check the first invalid record failed (`None` when the
    /// file ends cleanly on a record boundary). Surfaced through
    /// `--resume` and serve-restart logs so operators can tell a torn
    /// crash write from on-disk rot.
    pub tail_reason: Option<String>,
}

pub(crate) fn encode_outcome(w: &mut Writer, outcome: &RunOutcome) {
    match outcome {
        RunOutcome::Completed => {
            w.u32(0);
            w.u64(0);
        }
        RunOutcome::Blockaded { time } => {
            w.u32(1);
            w.f64(*time);
        }
        RunOutcome::WallClockExceeded { budget } => {
            w.u32(2);
            w.f64(*budget);
        }
        RunOutcome::EventCapReached { cap } => {
            w.u32(3);
            w.u64(*cap);
        }
    }
}

pub(crate) fn decode_outcome(r: &mut Reader<'_>) -> Result<RunOutcome, CoreError> {
    let tag = r.u32("outcome tag")?;
    Ok(match tag {
        0 => {
            r.u64("outcome payload")?;
            RunOutcome::Completed
        }
        1 => RunOutcome::Blockaded {
            time: r.f64("outcome payload")?,
        },
        2 => RunOutcome::WallClockExceeded {
            budget: r.f64("outcome payload")?,
        },
        3 => RunOutcome::EventCapReached {
            cap: r.u64("outcome payload")?,
        },
        _ => {
            return Err(CoreError::JournalCorrupt {
                what: "outcome tag",
            })
        }
    })
}

impl JournalItem for SweepPoint {
    const KIND: u32 = 1;

    fn encode(&self, w: &mut Writer) {
        w.f64(self.control);
        w.f64(self.current);
        encode_outcome(w, &self.outcome);
        w.u64(self.events);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CoreError> {
        Ok(SweepPoint {
            control: r.f64("sweep point control")?,
            current: r.f64("sweep point current")?,
            outcome: decode_outcome(r)?,
            events: r.u64("sweep point events")?,
        })
    }
}

fn encode_action(action: RecoveryAction) -> u32 {
    match action {
        RecoveryAction::Initial => 0,
        RecoveryAction::RerunSame => 1,
        RecoveryAction::ReseedTightened => 2,
        RecoveryAction::SolverFallback => 3,
    }
}

fn decode_action(tag: u32) -> Result<RecoveryAction, CoreError> {
    Ok(match tag {
        0 => RecoveryAction::Initial,
        1 => RecoveryAction::RerunSame,
        2 => RecoveryAction::ReseedTightened,
        3 => RecoveryAction::SolverFallback,
        _ => {
            return Err(CoreError::JournalCorrupt {
                what: "recovery action tag",
            })
        }
    })
}

fn encode_entry<T: JournalItem>(entry: &JournalEntry<T>) -> Result<Vec<u8>, CoreError> {
    let (status_tag, recovered_attempts) = match entry.status {
        PointStatus::Ok => (0u32, 0u32),
        PointStatus::Recovered { attempts } => (1, attempts),
        PointStatus::Faulted | PointStatus::Skipped | PointStatus::Cancelled => {
            return Err(CoreError::JournalCorrupt {
                what: "only Ok/Recovered points are journalable",
            })
        }
    };
    let mut w = Writer::new();
    w.u64(entry.task as u64);
    w.u32(status_tag);
    w.u32(recovered_attempts);
    w.u32(entry.attempts.len() as u32);
    for a in &entry.attempts {
        w.u32(a.attempt);
        w.u64(a.seed);
        w.u32(encode_action(a.action));
        match &a.fault {
            None => w.u32(0),
            Some(msg) => {
                w.u32(1);
                w.u32(msg.len() as u32);
                w.bytes(msg.as_bytes());
            }
        }
    }
    entry.item.encode(&mut w);
    let body = w.buf;
    let mut framed = Writer::new();
    framed.u32(body.len() as u32);
    framed.bytes(&body);
    framed.u64(fnv1a64(&body));
    Ok(framed.buf)
}

fn decode_entry<T: JournalItem>(body: &[u8], tasks: u64) -> Result<JournalEntry<T>, CoreError> {
    let corrupt = |what| CoreError::JournalCorrupt { what };
    let mut r = Reader::new(body);
    let task = r.u64("record task")?;
    if task >= tasks {
        return Err(corrupt("record task out of range"));
    }
    let status_tag = r.u32("record status")?;
    let recovered_attempts = r.u32("record recovered attempts")?;
    let status = match status_tag {
        0 => PointStatus::Ok,
        1 => PointStatus::Recovered {
            attempts: recovered_attempts,
        },
        _ => return Err(corrupt("record status tag")),
    };
    let n = r.u32("attempt count")? as usize;
    if n > body.len() {
        return Err(corrupt("attempt count out of range"));
    }
    let mut attempts = Vec::with_capacity(n);
    for _ in 0..n {
        let attempt = r.u32("attempt index")?;
        let seed = r.u64("attempt seed")?;
        let action = decode_action(r.u32("attempt action")?)?;
        let fault = match r.u32("attempt fault flag")? {
            0 => None,
            1 => {
                let len = r.u32("attempt fault length")? as usize;
                let bytes = r.bytes(len, "attempt fault text")?;
                Some(String::from_utf8_lossy(bytes).into_owned())
            }
            _ => return Err(corrupt("attempt fault flag")),
        };
        attempts.push(AttemptRecord {
            attempt,
            seed,
            action,
            fault,
        });
    }
    let item = T::decode(&mut r)?;
    if r.pos != body.len() {
        return Err(corrupt("trailing bytes in record"));
    }
    Ok(JournalEntry {
        task: task as usize,
        status,
        attempts,
        item,
    })
}

/// Validates `bytes` as a journal and returns every intact entry plus
/// the size of the valid prefix. Pure (no I/O), so tests can exercise
/// truncation at every byte boundary and arbitrary bit flips directly.
///
/// # Errors
///
/// [`CoreError::JournalCorrupt`] only for an invalid *header* (magic,
/// version, truncation, checksum). Invalid *records* are not errors:
/// the scan stops there and reports the rest of the file as
/// `discarded_tail_bytes`.
pub fn scan<T: JournalItem>(bytes: &[u8]) -> Result<Scan<T>, CoreError> {
    let header = JournalHeader::decode(bytes)?;
    let mut entries: Vec<JournalEntry<T>> = Vec::new();
    let mut pos = HEADER_LEN;
    let mut tail_reason: Option<String> = None;
    loop {
        let remaining = &bytes[pos..];
        if remaining.is_empty() {
            break;
        }
        // A record needs its u32 length frame, body, and u64 checksum
        // all present and consistent; anything else is the torn tail.
        // The first failed check names the tail so resume logs can say
        // *why* bytes were discarded, not just how many.
        let Some(len_bytes) = remaining.get(..4) else {
            tail_reason = Some("torn record: truncated length frame".into());
            break;
        };
        let mut b = [0u8; 4];
        b.copy_from_slice(len_bytes);
        let body_len = u32::from_le_bytes(b) as usize;
        let Some(body) = remaining.get(4..4 + body_len) else {
            tail_reason = Some("torn record: truncated body".into());
            break;
        };
        let Some(sum_bytes) = remaining.get(4 + body_len..4 + body_len + 8) else {
            tail_reason = Some("torn record: truncated checksum".into());
            break;
        };
        let mut s = [0u8; 8];
        s.copy_from_slice(sum_bytes);
        if u64::from_le_bytes(s) != fnv1a64(body) {
            tail_reason = Some("record checksum mismatch".into());
            break;
        }
        match decode_entry::<T>(body, header.tasks) {
            Ok(entry) => entries.push(entry),
            Err(e) => {
                tail_reason = Some(e.to_string());
                break;
            }
        }
        pos += 4 + body_len + 8;
    }
    Ok(Scan {
        header,
        entries,
        valid_len: pos,
        discarded_tail_bytes: bytes.len() - pos,
        tail_reason,
    })
}

fn io_err(path: &Path, e: &std::io::Error) -> CoreError {
    CoreError::JournalIo {
        message: format!("{}: {e}", path.display()),
    }
}

/// An open journal: restored entries from a resume (if any) plus an
/// append handle the batch drivers write completed points through.
/// Appends are whole-record `write_all` calls behind a mutex, so
/// concurrent workers interleave at record granularity only — a crash
/// tears at most the final record, which the next resume discards.
#[derive(Debug)]
pub struct Journal<T> {
    file: Mutex<File>,
    path: PathBuf,
    restored: Vec<JournalEntry<T>>,
    discarded_tail_bytes: usize,
    discarded_tail_reason: Option<String>,
    /// Set after the first failed append. A failed append may tear a
    /// record at the end of the file; any record written after a torn
    /// one would sit beyond the next resume's scan horizon and be
    /// silently unreachable, so the journal refuses all further
    /// appends once one fails.
    failed: Mutex<Option<String>>,
    /// Scripted write failure (testing only): `(appends remaining
    /// before the fault fires, bytes of the faulting record actually
    /// written — a torn short write, like real ENOSPC)`.
    #[cfg(feature = "fault-inject")]
    write_fault: Mutex<Option<(u64, usize)>>,
}

/// Formats a failed append as the [`CoreError::JournalWriteFailed`]
/// the batch layer salvages around, naming ENOSPC explicitly — the
/// one write failure users can act on without a debugger.
fn write_err(path: &Path, e: &std::io::Error) -> CoreError {
    let hint = if e.raw_os_error() == Some(28) {
        " [disk full]"
    } else {
        ""
    };
    CoreError::JournalWriteFailed {
        message: format!("{}: {e}{hint}", path.display()),
    }
}

impl<T: JournalItem> Journal<T> {
    /// Creates (or truncates) a journal for a fresh batch and writes
    /// its header.
    ///
    /// # Errors
    ///
    /// [`CoreError::JournalIo`] on any filesystem failure.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, CoreError> {
        let mut file = File::create(path).map_err(|e| io_err(path, &e))?;
        file.write_all(&header.encode())
            .map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            restored: Vec::new(),
            discarded_tail_bytes: 0,
            discarded_tail_reason: None,
            failed: Mutex::new(None),
            #[cfg(feature = "fault-inject")]
            write_fault: Mutex::new(None),
        })
    }

    /// Opens an existing journal for resume: validates the header
    /// against `header`, restores every intact entry, truncates any
    /// corrupt tail off the file, and positions the handle for
    /// appending. A missing file degrades to [`Journal::create`] —
    /// `--resume` on a first run is not an error.
    ///
    /// # Errors
    ///
    /// [`CoreError::JournalCorrupt`] for an unreadable header,
    /// [`CoreError::JournalMismatch`] when the journal belongs to a
    /// different batch, [`CoreError::JournalIo`] on filesystem
    /// failures.
    pub fn resume(path: &Path, header: &JournalHeader) -> Result<Self, CoreError> {
        if !path.exists() {
            return Self::create(path, header);
        }
        let bytes = std::fs::read(path).map_err(|e| io_err(path, &e))?;
        let scan = scan::<T>(&bytes)?;
        header.check(&scan.header)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        if scan.discarded_tail_bytes > 0 {
            file.set_len(scan.valid_len as u64)
                .map_err(|e| io_err(path, &e))?;
        }
        let mut file = file;
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            restored: scan.entries,
            discarded_tail_bytes: scan.discarded_tail_bytes,
            discarded_tail_reason: scan.tail_reason,
            failed: Mutex::new(None),
            #[cfg(feature = "fault-inject")]
            write_fault: Mutex::new(None),
        })
    }

    /// Appends one completed point. Safe to call from parallel workers.
    ///
    /// A failed append (ENOSPC, short write, revoked handle) may leave
    /// a torn record at the end of the file. That tail is exactly what
    /// [`scan`] discards on the next resume, so the journal stays
    /// loadable — but the caller must stop appending: a later record
    /// written after a torn one would sit beyond the scan horizon and
    /// be silently unreachable. The batch layer enforces this (it
    /// disables journaling for the rest of the batch and salvages
    /// points in memory).
    ///
    /// # Errors
    ///
    /// [`CoreError::JournalWriteFailed`] on write failure (the message
    /// names ENOSPC when the OS reports it);
    /// [`CoreError::JournalCorrupt`] when `entry.status` is not
    /// journalable (`Faulted`/`Skipped` — a caller bug).
    pub fn append(&self, entry: &JournalEntry<T>) -> Result<(), CoreError> {
        let record = encode_entry(entry)?;
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut failed = self
            .failed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(message) = failed.as_ref() {
            return Err(CoreError::JournalWriteFailed {
                message: format!(
                    "{}: append disabled after earlier write failure ({message})",
                    self.path.display()
                ),
            });
        }
        #[cfg(feature = "fault-inject")]
        {
            let mut fault = self
                .write_fault
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some((remaining, torn_bytes)) = fault.as_mut() {
                if *remaining == 0 {
                    // A real ENOSPC writes what fits, then fails: tear
                    // the record mid-write so resume sees the same
                    // torn tail a genuine disk-full leaves behind.
                    let torn = (*torn_bytes).min(record.len());
                    let _ = file.write_all(&record[..torn]);
                    let e = std::io::Error::from_raw_os_error(28);
                    *failed = Some(e.to_string());
                    return Err(write_err(&self.path, &e));
                }
                *remaining -= 1;
            }
        }
        file.write_all(&record).map_err(|e| {
            *failed = Some(e.to_string());
            write_err(&self.path, &e)
        })
    }

    /// The first append failure (`None` while every append has
    /// succeeded). Once set, all further appends are refused — see
    /// [`Journal::append`].
    #[must_use]
    pub fn write_failure(&self) -> Option<String> {
        self.failed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Arms a scripted append failure (testing only): the next
    /// `after_appends` appends succeed, then every later append writes
    /// only `torn_bytes` bytes of its record and fails like ENOSPC.
    #[cfg(feature = "fault-inject")]
    pub fn arm_write_failure(&self, after_appends: u64, torn_bytes: usize) {
        *self
            .write_fault
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((after_appends, torn_bytes));
    }

    /// Takes the entries restored by [`Journal::resume`] (empty for a
    /// fresh journal).
    pub fn take_restored(&mut self) -> Vec<JournalEntry<T>> {
        std::mem::take(&mut self.restored)
    }

    /// Bytes of corrupt tail discarded when the journal was opened.
    #[must_use]
    pub fn discarded_tail_bytes(&self) -> usize {
        self.discarded_tail_bytes
    }

    /// Which check the discarded tail failed (`None` when the journal
    /// was clean).
    #[must_use]
    pub fn discarded_tail_reason(&self) -> Option<&str> {
        self.discarded_tail_reason.as_deref()
    }
}

/// Reads and validates only the header of a journal file, without
/// decoding records. Used by the serve layer's restart recovery to log
/// what each surviving journal claims to be — including *why* a
/// damaged one is refused (version skew, bad magic, checksum).
///
/// # Errors
///
/// [`CoreError::JournalIo`] when the file cannot be read;
/// [`CoreError::JournalCorrupt`] / [`CoreError::JournalVersionSkew`]
/// when the header fails validation.
pub fn read_header(path: &Path) -> Result<JournalHeader, CoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, &e))?;
    JournalHeader::decode(&bytes)
}

/// Corrupts the final byte of a journal file in place (testing only;
/// requires the `fault-inject` cargo feature). The next
/// [`Journal::resume`] must detect the damaged record checksum and
/// discard the tail.
///
/// # Errors
///
/// [`CoreError::JournalIo`] on filesystem failures;
/// [`CoreError::JournalCorrupt`] when the file has no record bytes to
/// corrupt.
#[cfg(feature = "fault-inject")]
pub fn corrupt_journal_tail(path: &Path) -> Result<(), CoreError> {
    let mut bytes = std::fs::read(path).map_err(|e| io_err(path, &e))?;
    if bytes.len() <= HEADER_LEN {
        return Err(CoreError::JournalCorrupt {
            what: "no records to corrupt",
        });
    }
    let last = bytes.len() - 1;
    bytes[last] ^= 0x55;
    std::fs::write(path, &bytes).map_err(|e| io_err(path, &e))
}
