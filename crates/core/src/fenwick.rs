//! Fenwick (binary-indexed) tree over non-negative `f64` weights with
//! O(log n) update, prefix sum, and weighted sampling.
//!
//! The event solver must pick one tunnel event per iteration with
//! probability proportional to its rate (paper §III-B). A linear scan
//! would cost O(J) per event — acceptable for the non-adaptive solver,
//! which pays O(J) anyway to recompute every rate, but it would clamp
//! the adaptive solver's speedup. The Fenwick tree keeps both selection
//! and the adaptive solver's sparse rate updates logarithmic.

/// A Fenwick tree of non-negative weights supporting weighted sampling.
///
/// # Example
///
/// ```
/// use semsim_core::fenwick::FenwickTree;
///
/// let mut t = FenwickTree::new(4);
/// t.set(0, 1.0);
/// t.set(3, 3.0);
/// assert_eq!(t.total(), 4.0);
/// // u ∈ [0,1) picks index 0 for u < 0.25, index 3 otherwise.
/// assert_eq!(t.sample(0.1), Some(0));
/// assert_eq!(t.sample(0.9), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct FenwickTree {
    /// 1-based partial sums.
    tree: Vec<f64>,
    /// Current individual weights (for exact reads and totals).
    weights: Vec<f64>,
    /// Largest power of two ≤ len, used by the prefix descent.
    top_bit: usize,
    /// Largest weight ever stored — the natural scale for the drift
    /// tolerance in [`FenwickTree::is_consistent`].
    peak: f64,
}

impl FenwickTree {
    /// Creates a tree of `n` zero weights.
    pub fn new(n: usize) -> Self {
        // An empty tree has no descent steps at all: `1 << 0 = 1` here
        // would make `sample`'s prefix descent probe `tree[1]`, one past
        // the end of the single-entry tree array.
        let top_bit = match n {
            0 => 0,
            _ => 1usize << (usize::BITS as usize - 1 - n.leading_zeros() as usize),
        };
        FenwickTree {
            tree: vec![0.0; n + 1],
            weights: vec![0.0; n],
            top_bit,
            peak: 0.0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sets slot `i` to weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `w` is negative or NaN.
    pub fn set(&mut self, i: usize, w: f64) {
        assert!(w >= 0.0, "fenwick weight must be non-negative, got {w}");
        if w > self.peak {
            self.peak = w;
        }
        let delta = w - self.weights[i];
        if delta == 0.0 {
            return;
        }
        self.weights[i] = w;
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Sum of weights `0..=i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn prefix_sum(&self, i: usize) -> f64 {
        assert!(i < self.weights.len(), "fenwick index out of bounds");
        let mut idx = i + 1;
        let mut s = 0.0;
        while idx > 0 {
            s += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        s
    }

    /// Total weight. Recomputed from the individual weights on demand in
    /// debug builds; uses the tree in release.
    pub fn total(&self) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        self.prefix_sum(self.weights.len() - 1)
    }

    /// Picks the slot containing cumulative weight `u·total()` for
    /// `u ∈ [0, 1)`. Returns `None` when the total is zero or not finite.
    ///
    /// Slots of zero weight are never selected (up to floating-point
    /// boundary rounding, which is then skipped over explicitly).
    pub fn sample(&self, u: f64) -> Option<usize> {
        let total = self.total();
        if !(total > 0.0) || !total.is_finite() {
            return None;
        }
        let mut target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
        let mut pos = 0usize;
        let mut step = self.top_bit;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // `pos` is the count of slots whose cumulative sum is ≤ target;
        // the selected slot is `pos` (0-based).
        let mut idx = pos.min(self.weights.len() - 1);
        // Guard against landing on a zero-weight slot due to rounding.
        while idx < self.weights.len() && self.weights[idx] == 0.0 {
            idx += 1;
        }
        if idx >= self.weights.len() {
            // Fall back to the last positive slot.
            idx = self.weights.iter().rposition(|&w| w > 0.0)?;
        }
        Some(idx)
    }

    /// `true` if every weight is finite and non-negative and the tree's
    /// cumulative total agrees with the sum of the individual weights.
    ///
    /// Intended for `debug_assert!` invariant checks in the event loop:
    /// the adaptive solver updates slots sparsely, so a drifted tree
    /// would silently bias event selection. The incremental updates
    /// accumulate rounding error proportional to the *largest* weights
    /// the tree has held — not the current total, which cancellation can
    /// make arbitrarily small — so the tolerance scales with the peak.
    pub fn is_consistent(&self) -> bool {
        let mut sum = 0.0;
        for &w in &self.weights {
            if !w.is_finite() || w < 0.0 {
                return false;
            }
            sum += w;
        }
        let total = self.total();
        let scale = (self.peak * self.weights.len() as f64).max(1.0);
        (total - sum).abs() <= 1e-6 * scale
    }

    /// Resets every weight to zero.
    pub fn clear(&mut self) {
        self.tree.iter_mut().for_each(|v| *v = 0.0);
        self.weights.iter_mut().for_each(|v| *v = 0.0);
        self.peak = 0.0;
    }

    /// Writes the first `ws.len()` slots of an **all-zero** tree in one
    /// batched pass, reproducing bit-for-bit the tree state that the
    /// canonical ascending call sequence `set(0, ws[0]) … set(k-1,
    /// ws[k-1])` would leave behind. This is the chunked backend's
    /// from-zero rebuild: each internal node covers a contiguous slot
    /// range, and the ascending sequence accumulates exactly those
    /// weights in slot order, so a left fold over the covered range
    /// reproduces every partial sum with the same floating-point
    /// association. Zero weights are no-ops under `set` (the delta
    /// short-circuit), which also keeps `-0.0` out of the stored
    /// weights; the fold preserves that because its accumulator is
    /// never `-0.0` (it starts at `+0.0` and only non-negative values
    /// are admitted).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is longer than the tree or any weight is negative
    /// or NaN. Debug builds additionally assert the tree is cleared.
    pub fn rebuild_from_zero(&mut self, ws: &[f64]) {
        assert!(
            ws.len() <= self.weights.len(),
            "rebuild_from_zero: {} weights into {} slots",
            ws.len(),
            self.weights.len()
        );
        debug_assert!(
            self.weights.iter().all(|&w| w == 0.0) && self.tree.iter().all(|&v| v == 0.0),
            "rebuild_from_zero needs a cleared tree"
        );
        for (slot, &w) in ws.iter().enumerate() {
            assert!(w >= 0.0, "fenwick weight must be non-negative, got {w}");
            if w > self.peak {
                self.peak = w;
            }
            self.weights[slot] = if w == 0.0 { 0.0 } else { w };
        }
        // tree[idx] (1-based) covers slots (idx − lowbit(idx), idx];
        // slots past `ws.len()` are still zero and contribute exact
        // no-op additions.
        for idx in 1..self.tree.len() {
            let lowbit = idx & idx.wrapping_neg();
            let mut s = 0.0;
            for slot in (idx - lowbit)..idx {
                s += self.weights[slot];
            }
            self.tree[idx] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let ws = [0.5, 0.0, 2.0, 1.5, 0.25, 3.0, 0.0, 1.0];
        let mut t = FenwickTree::new(ws.len());
        for (i, &w) in ws.iter().enumerate() {
            t.set(i, w);
        }
        let mut acc = 0.0;
        for (i, &w) in ws.iter().enumerate() {
            acc += w;
            assert!((t.prefix_sum(i) - acc).abs() < 1e-12);
        }
        assert!((t.total() - 8.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_boundaries() {
        let mut t = FenwickTree::new(3);
        t.set(0, 1.0);
        t.set(1, 1.0);
        t.set(2, 2.0);
        assert_eq!(t.sample(0.0), Some(0));
        assert_eq!(t.sample(0.24), Some(0));
        assert_eq!(t.sample(0.26), Some(1));
        assert_eq!(t.sample(0.49), Some(1));
        assert_eq!(t.sample(0.51), Some(2));
        assert_eq!(t.sample(0.999), Some(2));
    }

    #[test]
    fn sampling_skips_zero_weights() {
        let mut t = FenwickTree::new(5);
        t.set(1, 1.0);
        t.set(3, 1.0);
        for i in 0..100 {
            let u = i as f64 / 100.0;
            let s = t.sample(u).unwrap();
            assert!(s == 1 || s == 3, "picked zero-weight slot {s}");
        }
    }

    #[test]
    fn empty_or_zero_total_returns_none() {
        let t = FenwickTree::new(0);
        assert!(t.is_empty());
        assert_eq!(t.sample(0.5), None);
        let t2 = FenwickTree::new(4);
        assert_eq!(t2.sample(0.5), None);
        assert_eq!(t2.total(), 0.0);
    }

    #[test]
    fn updates_overwrite() {
        let mut t = FenwickTree::new(2);
        t.set(0, 5.0);
        t.set(0, 1.0);
        t.set(1, 1.0);
        assert!((t.total() - 2.0).abs() < 1e-12);
        assert_eq!(t.get(0), 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut t = FenwickTree::new(3);
        t.set(2, 4.0);
        t.clear();
        assert_eq!(t.total(), 0.0);
        assert_eq!(t.sample(0.3), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        FenwickTree::new(1).set(0, -1.0);
    }

    #[test]
    fn empty_tree_has_no_descent_steps() {
        // `new(0)` used to compute `top_bit = 1 << 0 = 1`, giving the
        // prefix descent a step into `tree[1]` of a single-entry tree
        // array. The empty tree must have a zero descent.
        let t = FenwickTree::new(0);
        assert_eq!(t.top_bit, 0);
        assert_eq!(t.sample(0.0), None);
        assert_eq!(t.sample(1.0), None);
        for n in [1usize, 2, 4, 8, 64] {
            let t = FenwickTree::new(n);
            assert_eq!(t.top_bit, n.next_power_of_two().min(n), "n={n}");
        }
    }

    #[test]
    fn single_slot_boundaries() {
        let mut t = FenwickTree::new(1);
        t.set(0, 0.75);
        for u in [0.0, 0.5, 1.0 - f64::EPSILON, 1.0, 2.0] {
            assert_eq!(t.sample(u), Some(0), "u={u}");
        }
    }

    #[test]
    fn sample_near_one_never_returns_zero_weight_slot() {
        // As u → 1.0 the descent lands at (or past) the last slot; with
        // trailing zero weights the forward skip walks off the end and
        // the fallback must return the last *positive* slot.
        for n in [2usize, 3, 4, 8, 9, 64, 65] {
            let mut t = FenwickTree::new(n);
            t.set(0, 1.0);
            if n > 2 {
                t.set(n / 2, 2.0);
            }
            let last_positive = if n > 2 { n / 2 } else { 0 };
            for u in [0.999_999, 1.0 - f64::EPSILON, 1.0, 1.5] {
                let s = t.sample(u).unwrap();
                assert!(t.get(s) > 0.0, "n={n} u={u} picked zero-weight slot {s}");
                assert_eq!(s, last_positive, "n={n} u={u}");
            }
        }
    }

    #[test]
    fn power_of_two_sizes_descend_to_every_slot() {
        // Exact powers of two are where the first descent step reaches
        // the root: the probability midpoint of every slot must map
        // back to that slot, and u → 1 to the last.
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let mut t = FenwickTree::new(n);
            for i in 0..n {
                t.set(i, 1.0);
            }
            for i in 0..n {
                let u = (i as f64 + 0.5) / n as f64;
                assert_eq!(t.sample(u), Some(i), "n={n} i={i}");
            }
            assert_eq!(t.sample(1.0), Some(n - 1), "n={n}");
        }
    }

    #[test]
    fn rebuild_from_zero_matches_sequential_sets_bitwise() {
        for n in [0usize, 1, 2, 3, 5, 8, 9, 64, 100, 257] {
            let ws: Vec<f64> = (0..n)
                .map(|i| match i % 4 {
                    0 => 0.0,
                    1 => 1.0 / (i as f64 + 0.25),
                    2 => (i as f64).sqrt() * 1e-7,
                    _ => i as f64 * std::f64::consts::PI,
                })
                .collect();
            let mut seq = FenwickTree::new(n);
            for (i, &w) in ws.iter().enumerate() {
                seq.set(i, w);
            }
            let mut batched = FenwickTree::new(n);
            batched.rebuild_from_zero(&ws);
            assert_eq!(seq.tree.len(), batched.tree.len());
            for (a, b) in seq.tree.iter().zip(&batched.tree) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
            for (a, b) in seq.weights.iter().zip(&batched.weights) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
            assert_eq!(seq.peak.to_bits(), batched.peak.to_bits(), "n={n}");
        }
    }

    #[test]
    fn rebuild_from_zero_prefix_leaves_tail_slots_writable() {
        // The solver rebuilds only the tunnel slots; the secondary
        // (cotunnel/Cooper) slots are written incrementally afterwards.
        let mut seq = FenwickTree::new(6);
        let mut batched = FenwickTree::new(6);
        let head = [1.5, 0.0, 2.25, 0.5];
        for (i, &w) in head.iter().enumerate() {
            seq.set(i, w);
        }
        batched.rebuild_from_zero(&head);
        seq.set(4, 3.0);
        seq.set(5, 0.125);
        batched.set(4, 3.0);
        batched.set(5, 0.125);
        for (a, b) in seq.tree.iter().zip(&batched.tree) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for i in 0..6 {
            assert_eq!(seq.get(i).to_bits(), batched.get(i).to_bits());
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 2, 3, 5, 7, 9, 100, 1000] {
            let mut t = FenwickTree::new(n);
            for i in 0..n {
                t.set(i, (i + 1) as f64);
            }
            let total: f64 = (1..=n).map(|i| i as f64).sum();
            assert!((t.total() - total).abs() < 1e-9, "n={n}");
            // Sampling the midpoint of each slot's probability mass must
            // return that slot.
            let mut acc = 0.0;
            for i in 0..n {
                let w = (i + 1) as f64;
                let u = (acc + 0.5 * w) / total;
                assert_eq!(t.sample(u), Some(i), "n={n} i={i}");
                acc += w;
            }
        }
    }
}
