//! Numerical health guards, drift audits, and the run supervisor.
//!
//! The adaptive solver's whole value proposition is *skipping* work, so
//! a long Monte Carlo run has two failure modes that conventional
//! solvers do not: silently accumulated cache drift, and a single
//! NaN/Inf escaping a rate evaluation and poisoning the sampled event
//! stream. This module makes both failure modes loud:
//!
//! * **Health guards** — every produced tunnel rate, ΔW, and island
//!   potential is screened at the point of production
//!   ([`screen_rate`]/[`screen_finite`]); poison surfaces as a
//!   structured [`CoreError::NumericalFault`](crate::CoreError) instead
//!   of propagating.
//! * **Drift audit** — every `N` events (see
//!   [`SimConfig::with_audit_interval`](crate::engine::SimConfig)) the
//!   cached first-order rates are compared against a ground-truth
//!   recompute; excessive drift triggers a full cache flush, adaptive
//!   threshold tightening, and a logged [`DegradationEvent`].
//! * **Run supervisor** — wall-clock budget, lifetime event cap, and
//!   Coulomb-blockade stall detection, reported through the
//!   [`RunOutcome`] taxonomy in [`Record`](crate::engine::Record).
//!
//! The `fault-inject` cargo feature additionally compiles in a
//! [`FaultPlan`] hook used by the test suite to prove each recovery
//! path fires.

use std::fmt;

use crate::energy::CircuitState;
use crate::fenwick::FenwickTree;
use crate::solver::SolverContext;
use crate::CoreError;

/// Pipeline stage at which a numerical fault was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// A first-order tunnel (or quasi-particle) rate evaluation.
    TunnelRate,
    /// A free-energy change ΔW (paper Eq. 2).
    FreeEnergy,
    /// A second-order cotunneling path rate.
    CotunnelRate,
    /// A Cooper-pair tunneling rate.
    CooperPairRate,
    /// An island potential refresh.
    IslandPotential,
    /// The summed total rate of the event table.
    RateTotal,
    /// Drawing an event slot from the rate table.
    EventSampling,
}

impl fmt::Display for FaultStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultStage::TunnelRate => "tunnel rate evaluation",
            FaultStage::FreeEnergy => "free-energy change",
            FaultStage::CotunnelRate => "cotunneling rate evaluation",
            FaultStage::CooperPairRate => "Cooper-pair rate evaluation",
            FaultStage::IslandPotential => "island potential refresh",
            FaultStage::RateTotal => "rate table total",
            FaultStage::EventSampling => "event sampling",
        };
        f.write_str(s)
    }
}

/// Screens a produced rate: must be finite and non-negative.
#[inline]
pub(crate) fn screen_rate(
    stage: FaultStage,
    junction: Option<usize>,
    rate: f64,
) -> Result<f64, CoreError> {
    if rate.is_finite() && rate >= 0.0 {
        Ok(rate)
    } else {
        Err(CoreError::NumericalFault {
            stage,
            junction,
            value: rate,
        })
    }
}

/// Screens a produced energy/potential: must be finite.
#[inline]
pub(crate) fn screen_finite(
    stage: FaultStage,
    junction: Option<usize>,
    value: f64,
) -> Result<f64, CoreError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(CoreError::NumericalFault {
            stage,
            junction,
            value,
        })
    }
}

/// Why a [`run`](crate::engine::Simulation::run) stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunOutcome {
    /// The requested run length completed normally.
    Completed,
    /// Total rate ≈ 0 with no pending stimulus: the device is frozen in
    /// Coulomb blockade. Reported only when
    /// [`Supervisor::blockade_is_outcome`] is set; otherwise a stall is
    /// the [`CoreError::BlockadeStall`](crate::CoreError) error.
    Blockaded {
        /// Simulated time of the stall (s).
        time: f64,
    },
    /// The supervisor's wall-clock budget for one run expired.
    WallClockExceeded {
        /// The budget that expired (s of real time).
        budget: f64,
    },
    /// The supervisor's lifetime event cap was reached.
    EventCapReached {
        /// The cap (total events since construction).
        cap: u64,
    },
}

/// Run supervisor limits (all disabled by default).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Supervisor {
    /// Real-time budget per [`run`](crate::engine::Simulation::run)
    /// call (seconds); exceeding it ends the run with
    /// [`RunOutcome::WallClockExceeded`].
    pub wall_clock_budget: Option<f64>,
    /// Cap on total events since construction; reaching it ends the run
    /// with [`RunOutcome::EventCapReached`].
    pub max_events: Option<u64>,
    /// Report a Coulomb-blockade stall as [`RunOutcome::Blockaded`]
    /// instead of the `BlockadeStall` error.
    pub blockade_is_outcome: bool,
}

/// One graceful-degradation incident: a drift audit found the cached
/// rates too far from ground truth, flushed every cache, and (for the
/// adaptive solver) tightened the testing threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationEvent {
    /// Total events executed when the audit fired.
    pub event: u64,
    /// Simulated time of the audit (s).
    pub time: f64,
    /// Maximum relative rate drift measured (relative to the largest
    /// exact first-order rate).
    pub drift: f64,
    /// Rate-table slot with the worst drift.
    pub slot: usize,
    /// The tightened adaptive threshold θ, if the adaptive solver ran.
    pub threshold_after: Option<f64>,
}

/// Cumulative health summary of a simulation (see
/// [`Simulation::health_report`](crate::engine::Simulation)).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Drift audits performed.
    pub audits: u64,
    /// Worst relative drift ever measured by an audit.
    pub worst_drift: f64,
    /// Every degradation incident, oldest first.
    pub degradations: Vec<DegradationEvent>,
    /// Duplicate `(time, lead)` stimuli dropped at schedule time.
    pub duplicate_stimuli_dropped: u64,
}

impl HealthReport {
    /// An empty report (no audits, no incidents) — the identity of
    /// [`HealthReport::absorb`].
    pub fn empty() -> Self {
        HealthReport {
            audits: 0,
            worst_drift: 0.0,
            degradations: Vec::new(),
            duplicate_stimuli_dropped: 0,
        }
    }

    /// Folds another simulation's report into this one: audit and
    /// dropped-stimulus counts add, the worst drift is the maximum, and
    /// degradation incidents concatenate in absorption order. The
    /// parallel ensemble driver absorbs replica reports in replica-index
    /// order, so the merged report is independent of thread scheduling.
    pub fn absorb(&mut self, other: &HealthReport) {
        self.audits += other.audits;
        self.worst_drift = self.worst_drift.max(other.worst_drift);
        self.degradations.extend_from_slice(&other.degradations);
        self.duplicate_stimuli_dropped += other.duplicate_stimuli_dropped;
    }
}

/// Internal bookkeeping behind the drift audit and health report.
#[derive(Debug)]
pub(crate) struct HealthMonitor {
    audit_interval: Option<u64>,
    drift_tolerance: f64,
    events_since_audit: u64,
    audits: u64,
    worst_drift: f64,
    degradations: Vec<DegradationEvent>,
    duplicate_stimuli_dropped: u64,
}

impl HealthMonitor {
    pub(crate) fn new(audit_interval: Option<u64>, drift_tolerance: f64) -> Self {
        HealthMonitor {
            audit_interval,
            drift_tolerance,
            events_since_audit: 0,
            audits: 0,
            worst_drift: 0.0,
            degradations: Vec::new(),
            duplicate_stimuli_dropped: 0,
        }
    }

    /// `true` when periodic drift auditing is configured at all.
    pub(crate) fn audit_enabled(&self) -> bool {
        self.audit_interval.is_some()
    }

    /// Counts one executed event; `true` when an audit is due.
    pub(crate) fn audit_due(&mut self) -> bool {
        let Some(n) = self.audit_interval else {
            return false;
        };
        self.events_since_audit += 1;
        if self.events_since_audit >= n {
            self.events_since_audit = 0;
            true
        } else {
            false
        }
    }

    pub(crate) fn drift_tolerance(&self) -> f64 {
        self.drift_tolerance
    }

    pub(crate) fn note_audit(&mut self, drift: f64) {
        self.audits += 1;
        self.worst_drift = self.worst_drift.max(drift);
    }

    pub(crate) fn note_degradation(&mut self, event: DegradationEvent) {
        self.degradations.push(event);
    }

    pub(crate) fn note_duplicate_stimuli(&mut self, dropped: u64) {
        self.duplicate_stimuli_dropped += dropped;
    }

    pub(crate) fn degradations(&self) -> &[DegradationEvent] {
        &self.degradations
    }

    /// Restarts the audit period (after a checkpoint synchronization,
    /// when the caches are known-exact).
    pub(crate) fn reset_audit_clock(&mut self) {
        self.events_since_audit = 0;
    }

    pub(crate) fn report(&self) -> HealthReport {
        HealthReport {
            audits: self.audits,
            worst_drift: self.worst_drift,
            degradations: self.degradations.clone(),
            duplicate_stimuli_dropped: self.duplicate_stimuli_dropped,
        }
    }
}

/// Compares the cached first-order rates against a ground-truth
/// recompute from scratch, returning the worst relative drift and the
/// slot it occurred at. Drift is measured relative to the largest exact
/// rate, i.e. as the error a stale slot contributes to the sampling
/// distribution.
pub(crate) fn measure_rate_drift(
    ctx: &SolverContext<'_>,
    state: &CircuitState,
    rates: &FenwickTree,
) -> Result<(f64, usize), CoreError> {
    let mut exact_state = state.clone();
    exact_state.recompute_potentials(ctx.circuit);
    for (k, &phi) in exact_state.island_potentials().iter().enumerate() {
        screen_finite(FaultStage::IslandPotential, Some(k), phi)?;
    }
    let mut exact = Vec::with_capacity(2 * ctx.circuit.num_junctions());
    for j in ctx.circuit.junction_ids() {
        let (dw_fw, g_fw, dw_bw, g_bw) = ctx.junction_rates(&exact_state, j);
        let jx = j.index();
        screen_finite(FaultStage::FreeEnergy, Some(jx), dw_fw)?;
        screen_finite(FaultStage::FreeEnergy, Some(jx), dw_bw)?;
        exact.push((
            ctx.layout.tunnel_slot(j, true),
            screen_rate(FaultStage::TunnelRate, Some(jx), g_fw)?,
        ));
        exact.push((
            ctx.layout.tunnel_slot(j, false),
            screen_rate(FaultStage::TunnelRate, Some(jx), g_bw)?,
        ));
    }
    let scale = exact
        .iter()
        .fold(0.0_f64, |m, &(_, g)| m.max(g))
        .max(f64::MIN_POSITIVE);
    let mut worst = 0.0;
    let mut worst_slot = 0;
    for &(slot, g) in &exact {
        let rel = (rates.get(slot) - g).abs() / scale;
        if rel > worst {
            worst = rel;
            worst_slot = slot;
        }
    }
    Ok((worst, worst_slot))
}

/// A scripted fault to inject at a chosen event index (testing only;
/// requires the `fault-inject` cargo feature).
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultKind {
    /// Replace the next computed forward rate of `junction` with NaN,
    /// exercising the production-side health guard.
    PoisonRate {
        /// Target junction.
        junction: usize,
    },
    /// Scale the adaptive solver's cached `ΔW'` entries of `junction`
    /// by `factor`, silencing its testing gate so its rates go stale —
    /// the drift audit must catch the resulting divergence.
    CorruptCache {
        /// Target junction.
        junction: usize,
        /// Multiplicative corruption of the cached `ΔW'` magnitudes.
        factor: f64,
    },
    /// Force an immediate full cache resync with a poisoned rate for
    /// `junction`, exercising the refresh-failure path.
    FailRefresh {
        /// Target junction.
        junction: usize,
    },
    /// Panic inside the event loop, exercising the batch layer's panic
    /// isolation and rerun-on-panic recovery paths.
    PanicAt,
}

#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultAction {
    pub(crate) at_event: u64,
    pub(crate) kind: FaultKind,
    pub(crate) fired: bool,
}

/// A scripted sequence of fault injections, armed on a simulation with
/// [`Simulation::inject_faults`](crate::engine::Simulation). Only
/// compiled under the `fault-inject` cargo feature; exists to let tests
/// prove that every recovery path of the runtime actually fires.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub(crate) actions: Vec<FaultAction>,
}

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poisons the next computed forward rate of `junction` with NaN
    /// once `at_event` events have executed.
    pub fn poison_rate(mut self, at_event: u64, junction: usize) -> Self {
        self.actions.push(FaultAction {
            at_event,
            kind: FaultKind::PoisonRate { junction },
            fired: false,
        });
        self
    }

    /// Corrupts the adaptive solver's cached `ΔW'` entries of
    /// `junction` by `factor` once `at_event` events have executed
    /// (no-op under the non-adaptive solver, whose caches live one
    /// event at most).
    pub fn corrupt_cache(mut self, at_event: u64, junction: usize, factor: f64) -> Self {
        self.actions.push(FaultAction {
            at_event,
            kind: FaultKind::CorruptCache { junction, factor },
            fired: false,
        });
        self
    }

    /// Forces a full cache resync that fails (poisoned rate for
    /// `junction`) once `at_event` events have executed.
    pub fn fail_refresh(mut self, at_event: u64, junction: usize) -> Self {
        self.actions.push(FaultAction {
            at_event,
            kind: FaultKind::FailRefresh { junction },
            fired: false,
        });
        self
    }

    /// Panics (with a deterministic message naming `at_event`) once
    /// `at_event` events have executed — a stand-in for transient
    /// crashes, caught by the panic isolation in [`crate::par`].
    pub fn panic_at(mut self, at_event: u64) -> Self {
        self.actions.push(FaultAction {
            at_event,
            kind: FaultKind::PanicAt,
            fired: false,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screens_reject_poison() {
        assert!(screen_rate(FaultStage::TunnelRate, Some(0), 1.0e9).is_ok());
        assert!(screen_rate(FaultStage::TunnelRate, Some(0), 0.0).is_ok());
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let e = screen_rate(FaultStage::TunnelRate, Some(2), bad);
            assert!(
                matches!(
                    e,
                    Err(CoreError::NumericalFault {
                        stage: FaultStage::TunnelRate,
                        junction: Some(2),
                        ..
                    })
                ),
                "{bad} not rejected: {e:?}"
            );
        }
        assert!(screen_finite(FaultStage::FreeEnergy, None, -5.0).is_ok());
        assert!(screen_finite(FaultStage::FreeEnergy, None, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn monitor_audit_cadence() {
        let mut m = HealthMonitor::new(Some(3), 0.25);
        assert!(!m.audit_due());
        assert!(!m.audit_due());
        assert!(m.audit_due());
        assert!(!m.audit_due());
        m.reset_audit_clock();
        assert!(!m.audit_due());
        assert!(!m.audit_due());
        assert!(m.audit_due());
        // Disabled monitor never fires.
        let mut off = HealthMonitor::new(None, 0.25);
        for _ in 0..100 {
            assert!(!off.audit_due());
        }
    }

    #[test]
    fn monitor_report_accumulates() {
        let mut m = HealthMonitor::new(Some(10), 0.1);
        m.note_audit(0.02);
        m.note_audit(0.4);
        m.note_degradation(DegradationEvent {
            event: 10,
            time: 1e-9,
            drift: 0.4,
            slot: 3,
            threshold_after: Some(0.025),
        });
        m.note_duplicate_stimuli(2);
        let r = m.report();
        assert_eq!(r.audits, 2);
        assert_eq!(r.worst_drift, 0.4);
        assert_eq!(r.degradations.len(), 1);
        assert_eq!(r.duplicate_stimuli_dropped, 2);
    }
}
