//! Physical constants (CODATA 2018 exact values, SI units).

/// Elementary charge `e` (C).
pub const E_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant `k_B` (J/K).
pub const K_B: f64 = 1.380_649e-23;

/// Planck constant `h` (J·s).
pub const PLANCK_H: f64 = 6.626_070_15e-34;

/// Reduced Planck constant `ħ` (J·s).
pub const HBAR: f64 = PLANCK_H / (2.0 * std::f64::consts::PI);

/// Superconducting resistance quantum `R_Q = h / (4e²)` (Ω) — about
/// 6.45 kΩ; the paper's high-resistance Cooper-pair regime requires
/// `R_N ≫ R_Q`.
pub const R_Q: f64 = PLANCK_H / (4.0 * E_CHARGE * E_CHARGE);

/// Converts an energy in electronvolts to joules.
///
/// # Example
///
/// ```
/// // The paper's Fig. 1c gap: Δ(0) = 0.2 meV.
/// let gap = semsim_core::constants::ev_to_joule(0.2e-3);
/// assert!(gap > 3.1e-23 && gap < 3.3e-23);
/// ```
#[inline]
pub fn ev_to_joule(ev: f64) -> f64 {
    ev * E_CHARGE
}

/// Converts an energy in joules to electronvolts.
#[inline]
pub fn joule_to_ev(j: f64) -> f64 {
    j / E_CHARGE
}

/// Thermal energy `k_B·T` (J) at temperature `t` kelvin (clamped at 0).
///
/// # Example
///
/// ```
/// let kt = semsim_core::constants::thermal_energy(1.0);
/// assert_eq!(kt, semsim_core::constants::K_B);
/// assert_eq!(semsim_core::constants::thermal_energy(-1.0), 0.0);
/// ```
#[inline]
pub fn thermal_energy(t: f64) -> f64 {
    K_B * t.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_quantum_value() {
        // ≈ 6.453 kΩ, the value quoted in the paper (≈ 6.5 kΩ).
        assert!((R_Q - 6453.2).abs() < 1.0, "{R_Q}");
    }

    #[test]
    fn ev_joule_roundtrip() {
        let x = 1.7e-4;
        assert!((joule_to_ev(ev_to_joule(x)) - x).abs() < 1e-19);
    }

    #[test]
    fn hbar_consistent() {
        assert!((HBAR * 2.0 * std::f64::consts::PI - PLANCK_H).abs() < 1e-45);
    }

    #[test]
    fn thermal_energy_at_5k() {
        // kT at 5 K ≈ 0.43 meV — same order as the charging energies in
        // Fig. 1b, which is why the blockade there is soft.
        let kt_ev = joule_to_ev(thermal_energy(5.0));
        assert!((kt_ev - 4.31e-4).abs() < 1e-5);
    }
}
