//! The orthodox single-electron tunneling rate (paper Eq. 1).

use semsim_quad::occupancy_factor;

use crate::constants::E_CHARGE;

/// Orthodox tunneling rate through a normal junction (paper Eq. 1).
///
/// `dw` is the free-energy change of the event (J; negative = downhill),
/// `kt` the thermal energy `k_B·T` (J) and `resistance` the junction's
/// tunnel resistance (Ω). Evaluated in the numerically stable form
/// `Γ = kT/(e²R) · x/(eˣ−1)` with `x = ΔW/kT`, which:
///
/// * never overflows, however deep the blockade;
/// * is smooth through `ΔW = 0` (value `kT/(e²R)`);
/// * reduces to `Γ = −ΔW/(e²R)` for strongly favourable events;
/// * at `kT = 0` becomes the exact zero-temperature orthodox rate
///   `Γ = max(0, −ΔW)/(e²R)`.
///
/// # Example
///
/// ```
/// use semsim_core::rates::orthodox_rate;
/// use semsim_core::constants::{E_CHARGE, K_B};
///
/// let kt = K_B * 5.0; // 5 kelvin
/// let dw = -5e-3 * E_CHARGE; // 5 meV downhill (≫ kT ≈ 0.43 meV)
/// let g = orthodox_rate(dw, kt, 1e6);
/// // Deep downhill limit: Γ ≈ −ΔW/(e²R).
/// let expected = -dw / (E_CHARGE * E_CHARGE * 1e6);
/// assert!((g - expected).abs() / expected < 0.01);
/// ```
#[inline]
pub fn orthodox_rate(dw: f64, kt: f64, resistance: f64) -> f64 {
    debug_assert!(resistance > 0.0);
    let e2r = E_CHARGE * E_CHARGE * resistance;
    if kt <= 0.0 {
        return (-dw).max(0.0) / e2r;
    }
    kt * occupancy_factor(dw / kt) / e2r
}

/// Batched orthodox rates: appends `orthodox_rate(dw[i], kt,
/// resistance[i])` to `out` for every lane. This is the contiguous-
/// slice entry point the chunked compute backend feeds per chunk; each
/// lane is the scalar [`orthodox_rate`], so the batch is bit-identical
/// to a scalar loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn orthodox_rates(dw: &[f64], resistance: &[f64], kt: f64, out: &mut Vec<f64>) {
    assert_eq!(dw.len(), resistance.len(), "rate batch length mismatch");
    out.reserve(dw.len());
    out.extend(
        dw.iter()
            .zip(resistance)
            .map(|(&w, &r)| orthodox_rate(w, kt, r)),
    );
}

/// Detailed-balance ratio `Γ(ΔW)/Γ(−ΔW) = exp(−ΔW/kT)` — exposed for
/// tests and diagnostics.
///
/// # Example
///
/// ```
/// use semsim_core::rates::detailed_balance_ratio;
/// assert!((detailed_balance_ratio(0.0, 1.0) - 1.0).abs() < 1e-15);
/// ```
#[inline]
pub fn detailed_balance_ratio(dw: f64, kt: f64) -> f64 {
    if kt <= 0.0 {
        if dw > 0.0 {
            0.0
        } else if dw < 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    } else {
        (-dw / kt).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::K_B;

    const R: f64 = 1e6;

    #[test]
    fn rate_is_nonnegative_everywhere() {
        for i in -100..100 {
            let dw = i as f64 * 1e-22;
            assert!(orthodox_rate(dw, K_B, R) >= 0.0);
            assert!(orthodox_rate(dw, 0.0, R) >= 0.0);
        }
    }

    #[test]
    fn zero_temperature_threshold() {
        assert_eq!(orthodox_rate(1e-22, 0.0, R), 0.0);
        assert_eq!(orthodox_rate(0.0, 0.0, R), 0.0);
        let g = orthodox_rate(-1e-22, 0.0, R);
        assert!((g - 1e-22 / (E_CHARGE * E_CHARGE * R)).abs() < 1e-3 * g);
    }

    #[test]
    fn detailed_balance_holds() {
        let kt = K_B * 4.2;
        for &dw in &[1e-23, 5e-23, 2e-22] {
            let fw = orthodox_rate(dw, kt, R);
            let bw = orthodox_rate(-dw, kt, R);
            let ratio = fw / bw;
            let expected = detailed_balance_ratio(dw, kt);
            assert!(
                (ratio - expected).abs() / expected < 1e-9,
                "dw={dw}: {ratio} vs {expected}"
            );
        }
    }

    #[test]
    fn rate_at_zero_dw_is_thermal() {
        let kt = K_B * 1.0;
        let g = orthodox_rate(0.0, kt, R);
        assert!((g - kt / (E_CHARGE * E_CHARGE * R)).abs() < 1e-6 * g);
    }

    #[test]
    fn rate_monotone_decreasing_in_dw() {
        let kt = K_B * 2.0;
        let mut prev = f64::INFINITY;
        for i in -50..50 {
            let g = orthodox_rate(i as f64 * 1e-23, kt, R);
            assert!(g <= prev * (1.0 + 1e-12));
            prev = g;
        }
    }

    #[test]
    fn rate_scales_inverse_with_resistance() {
        let g1 = orthodox_rate(-1e-22, K_B, 1e6);
        let g2 = orthodox_rate(-1e-22, K_B, 2e6);
        assert!((g1 / g2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deep_blockade_does_not_overflow() {
        // ΔW/kT ≈ 7e4 — would overflow a naive exp().
        let g = orthodox_rate(1e-18, K_B * 1.0, R);
        assert_eq!(g, 0.0);
        let g = orthodox_rate(-1e-18, K_B * 1.0, R);
        assert!(g.is_finite() && g > 0.0);
    }

    #[test]
    fn detailed_balance_ratio_zero_temperature() {
        assert_eq!(detailed_balance_ratio(1.0, 0.0), 0.0);
        assert_eq!(detailed_balance_ratio(-1.0, 0.0), f64::INFINITY);
        assert_eq!(detailed_balance_ratio(0.0, 0.0), 1.0);
    }
}
