//! The two rate solvers of the paper's Fig. 3.
//!
//! * [`NonAdaptiveSolver`] — the conventional Monte Carlo approach
//!   (SIMON/MOSES-style): after every tunnel event, update every node
//!   potential and recompute the tunnel rate of every junction.
//! * [`AdaptiveSolver`] — the paper's Algorithm 1: test only the
//!   junctions near the event (or a stepped input), accumulate the
//!   potential change across each junction in a testing factor `b`, and
//!   recompute a rate only when `|b|` exceeds a threshold fraction of
//!   the free-energy change at the last recomputation. A periodic full
//!   refresh bounds the accumulated error.
//!
//! Both solvers maintain the same flat rate table (a Fenwick tree) that
//! the event solver samples from.

mod adaptive;
mod nonadaptive;

pub use adaptive::{AdaptiveSolver, AdaptiveStats};
pub use nonadaptive::NonAdaptiveSolver;

use crate::circuit::{Circuit, Junction, JunctionId};
use crate::energy::{delta_w, CircuitState};
use crate::events::RateLayout;
use crate::fenwick::FenwickTree;
use crate::health::{screen_finite, screen_rate, FaultStage};
use crate::rates::orthodox_rate;
use crate::superconduct::QpRateTable;
use crate::CoreError;

/// How single-electron (or quasi-particle) rates are evaluated.
#[derive(Debug, Clone)]
pub enum TunnelModel {
    /// Normal-state orthodox rate (paper Eq. 1 with ohmic `I(V)`).
    Normal,
    /// Superconducting quasi-particle rate via a precomputed table.
    Quasiparticle(QpRateTable),
}

/// Everything a solver needs to evaluate a single-electron rate.
#[derive(Debug)]
pub struct SolverContext<'a> {
    /// The circuit being simulated.
    pub circuit: &'a Circuit,
    /// Thermal energy `k_B·T` (J).
    pub kt: f64,
    /// Rate model for first-order events.
    pub model: &'a TunnelModel,
    /// Layout of the shared rate table.
    pub layout: RateLayout,
    /// Fault-injection hook: junction whose forward rate is replaced
    /// with NaN the next time it is evaluated.
    #[cfg(feature = "fault-inject")]
    pub poison_rate: Option<usize>,
}

impl<'a> SolverContext<'a> {
    /// Builds a context with no fault injection armed.
    pub fn new(circuit: &'a Circuit, kt: f64, model: &'a TunnelModel, layout: RateLayout) -> Self {
        SolverContext {
            circuit,
            kt,
            model,
            layout,
            #[cfg(feature = "fault-inject")]
            poison_rate: None,
        }
    }

    /// Arms NaN poisoning of `junction`'s forward rate.
    #[cfg(feature = "fault-inject")]
    pub fn with_poison(mut self, junction: Option<usize>) -> Self {
        self.poison_rate = junction;
        self
    }

    /// Evaluates both directed first-order rates of junction `j` from
    /// the current state, returning `(ΔW_fw, Γ_fw, ΔW_bw, Γ_bw)`.
    #[inline]
    pub fn junction_rates(&self, state: &CircuitState, j: JunctionId) -> (f64, f64, f64, f64) {
        let junction = self.circuit.junction(j);
        let dw_fw = delta_w(self.circuit, state, junction.node_a, junction.node_b, 1);
        let dw_bw = delta_w(self.circuit, state, junction.node_b, junction.node_a, 1);
        #[allow(unused_mut)]
        let (mut g_fw, g_bw) = match self.model {
            TunnelModel::Normal => (
                orthodox_rate(dw_fw, self.kt, junction.resistance),
                orthodox_rate(dw_bw, self.kt, junction.resistance),
            ),
            TunnelModel::Quasiparticle(table) => (
                table.rate(dw_fw, junction.resistance),
                table.rate(dw_bw, junction.resistance),
            ),
        };
        #[cfg(feature = "fault-inject")]
        if self.poison_rate == Some(j.index()) {
            g_fw = f64::NAN;
        }
        (dw_fw, g_fw, dw_bw, g_bw)
    }

    /// Evaluates one directed rate from an already-computed `ΔW` — the
    /// same arithmetic as one direction of
    /// [`SolverContext::junction_rates`], with no fault injection. This
    /// is the memoised quantity: for a fixed model and temperature the
    /// rate is a pure function of `(ΔW, R)`.
    #[inline]
    pub fn directed_rate(&self, junction: &Junction, dw: f64) -> f64 {
        match self.model {
            TunnelModel::Normal => orthodox_rate(dw, self.kt, junction.resistance),
            TunnelModel::Quasiparticle(table) => table.rate(dw, junction.resistance),
        }
    }
}

/// A change to the electrostatic inputs that solvers must react to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateChange {
    /// `count` electrons moved `from → to` (already applied to the
    /// electron numbers).
    Transfer {
        /// Source node.
        from: crate::circuit::NodeId,
        /// Destination node.
        to: crate::circuit::NodeId,
        /// Electrons moved.
        count: i64,
    },
    /// Lead `lead` stepped by `dv` volts (already applied).
    LeadStep {
        /// Lead index.
        lead: usize,
        /// Voltage change (V).
        dv: f64,
    },
}

/// Static-dispatch wrapper over the two solver implementations.
///
/// One instance lives per simulation, so the size difference between
/// the variants costs nothing; boxing the adaptive solver would add an
/// indirection on the hot path for no benefit.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Solver {
    /// Conventional full-recalculation solver.
    NonAdaptive(NonAdaptiveSolver),
    /// The paper's Algorithm 1.
    Adaptive(AdaptiveSolver),
}

impl Solver {
    /// Fully initializes potentials and every first-order rate.
    pub fn initialize(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
    ) -> Result<(), CoreError> {
        match self {
            Solver::NonAdaptive(s) => s.initialize(ctx, state, rates),
            Solver::Adaptive(s) => s.initialize(ctx, state, rates),
        }
    }

    /// Reacts to an applied state change, updating potentials and rates
    /// per the solver's policy.
    pub fn apply_change(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        change: StateChange,
    ) -> Result<(), CoreError> {
        match self {
            Solver::NonAdaptive(s) => s.apply_change(ctx, state, rates, change),
            Solver::Adaptive(s) => s.apply_change(ctx, state, rates, change),
        }
    }

    /// Guarantees `state`'s cached potential of `island` is exact.
    pub fn ensure_island_potential(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        island: usize,
    ) -> Result<(), CoreError> {
        match self {
            Solver::NonAdaptive(_) => Ok(()), // always exact
            Solver::Adaptive(s) => s.refresh_island(ctx.circuit, state, island),
        }
    }

    /// Discards every cached quantity and rebuilds potentials and the
    /// whole rate table from the electron numbers, writing rates in
    /// canonical junction order. The caller must clear the rate table
    /// first so the Fenwick partial sums are reaccumulated
    /// deterministically (required for bit-identical checkpoint/resume).
    pub(crate) fn resync(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
    ) -> Result<(), CoreError> {
        match self {
            Solver::NonAdaptive(s) => s.resync(ctx, state, rates),
            Solver::Adaptive(s) => s.resync(ctx, state, rates),
        }
    }

    /// Halves the adaptive testing threshold (graceful degradation after
    /// a failed drift audit), returning the new value. `None` for the
    /// non-adaptive solver, which has no approximation to tighten.
    pub(crate) fn tighten_threshold(&mut self) -> Option<f64> {
        match self {
            Solver::NonAdaptive(_) => None,
            Solver::Adaptive(s) => Some(s.tighten_threshold()),
        }
    }

    /// Total number of first-order rate recalculations performed (both
    /// directions of a junction count as one recalculation).
    pub fn rate_recalcs(&self) -> u64 {
        match self {
            Solver::NonAdaptive(s) => s.rate_recalcs(),
            Solver::Adaptive(s) => s.stats().rate_recalcs,
        }
    }

    /// Adaptive statistics, if this is the adaptive solver.
    pub fn adaptive_stats(&self) -> Option<&AdaptiveStats> {
        match self {
            Solver::NonAdaptive(_) => None,
            Solver::Adaptive(s) => Some(s.stats()),
        }
    }
}

/// Writes both directed rates of `j` into the rate table, screening the
/// free-energy changes and rates for NaN/Inf/negative poison *before*
/// they can enter the Fenwick tree (whose prefix sums would silently
/// spread the corruption to every sampling decision).
#[inline]
pub(crate) fn write_junction_rates(
    ctx: &SolverContext<'_>,
    state: &CircuitState,
    rates: &mut FenwickTree,
    j: JunctionId,
) -> Result<(f64, f64), CoreError> {
    let (dw_fw, g_fw, dw_bw, g_bw) = ctx.junction_rates(state, j);
    let jx = Some(j.index());
    screen_finite(FaultStage::FreeEnergy, jx, dw_fw)?;
    screen_finite(FaultStage::FreeEnergy, jx, dw_bw)?;
    rates.set(
        ctx.layout.tunnel_slot(j, true),
        screen_rate(FaultStage::TunnelRate, jx, g_fw)?,
    );
    rates.set(
        ctx.layout.tunnel_slot(j, false),
        screen_rate(FaultStage::TunnelRate, jx, g_bw)?,
    );
    Ok((dw_fw, dw_bw))
}
