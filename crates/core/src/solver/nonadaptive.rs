//! The conventional (non-adaptive) Monte Carlo solver.
//!
//! After every tunnel event or input step it updates the potential of
//! every island and recomputes the tunneling rate of every junction —
//! exactly the behaviour of conventional single-electron simulators and
//! the accuracy reference of the paper's Figs. 6–7.

use crate::energy::{lead_step_delta, potential_delta, CircuitState};
use crate::fenwick::FenwickTree;
use crate::solver::{write_junction_rates, SolverContext, StateChange};
use crate::CoreError;

/// Conventional solver: every potential and every rate, every event.
#[derive(Debug, Default)]
pub struct NonAdaptiveSolver {
    rate_recalcs: u64,
    /// Events since the last exact potential recomputation; incremental
    /// updates are exact in exact arithmetic, so this only guards against
    /// floating-point drift over very long runs.
    events_since_exact: u64,
}

/// Recompute potentials from scratch this often to wash out accumulated
/// floating-point rounding from incremental updates.
const EXACT_REFRESH_INTERVAL: u64 = 65_536;

impl NonAdaptiveSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of junction rate recalculations performed so far.
    pub fn rate_recalcs(&self) -> u64 {
        self.rate_recalcs
    }

    pub(crate) fn initialize(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
    ) -> Result<(), CoreError> {
        state.recompute_potentials(ctx.circuit);
        for j in ctx.circuit.junction_ids() {
            write_junction_rates(ctx, state, rates, j)?;
        }
        self.rate_recalcs += ctx.circuit.num_junctions() as u64;
        Ok(())
    }

    pub(crate) fn apply_change(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        change: StateChange,
    ) -> Result<(), CoreError> {
        let circuit = ctx.circuit;
        self.events_since_exact += 1;
        if self.events_since_exact >= EXACT_REFRESH_INTERVAL {
            state.recompute_potentials(circuit);
            self.events_since_exact = 0;
        } else {
            match change {
                StateChange::Transfer { from, to, count } => {
                    for k in 0..circuit.num_islands() {
                        state.phi[k] += potential_delta(circuit, k, from, to, count);
                    }
                }
                StateChange::LeadStep { lead, dv } => {
                    for k in 0..circuit.num_islands() {
                        state.phi[k] += lead_step_delta(circuit, k, lead, dv);
                    }
                }
            }
        }
        for j in circuit.junction_ids() {
            write_junction_rates(ctx, state, rates, j)?;
        }
        self.rate_recalcs += circuit.num_junctions() as u64;
        Ok(())
    }

    /// Rebuilds potentials and every rate from scratch (the caller has
    /// cleared the rate table). Resets the exact-refresh phase so a
    /// resumed run schedules its periodic recomputes identically to an
    /// uninterrupted one.
    pub(crate) fn resync(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
    ) -> Result<(), CoreError> {
        state.recompute_potentials(ctx.circuit);
        for j in ctx.circuit.junction_ids() {
            write_junction_rates(ctx, state, rates, j)?;
        }
        self.rate_recalcs += ctx.circuit.num_junctions() as u64;
        self.events_since_exact = 0;
        Ok(())
    }

    /// Overwrites the work counter (checkpoint restore).
    pub(crate) fn set_rate_recalcs(&mut self, n: u64) {
        self.rate_recalcs = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{CircuitBuilder, NodeId};
    use crate::constants::K_B;
    use crate::events::RateLayout;
    use crate::solver::TunnelModel;

    fn set_ctx_and_state() -> (crate::circuit::Circuit, CircuitState) {
        let mut b = CircuitBuilder::new();
        let src = b.add_lead(5e-3);
        let drn = b.add_lead(-5e-3);
        let island = b.add_island();
        b.add_junction(src, island, 1e6, 1e-18).unwrap();
        b.add_junction(island, drn, 1e6, 1e-18).unwrap();
        b.add_capacitor(NodeId::GROUND, island, 3e-18).unwrap();
        let c = b.build().unwrap();
        let s = CircuitState::new(&c);
        (c, s)
    }

    #[test]
    fn initialize_fills_all_rates() {
        let (c, mut s) = set_ctx_and_state();
        let layout = RateLayout {
            junctions: c.num_junctions(),
            cotunnel_paths: 0,
            cooper_pairs: false,
        };
        let model = TunnelModel::Normal;
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        let mut rates = FenwickTree::new(layout.len());
        let mut solver = NonAdaptiveSolver::new();
        solver.initialize(&ctx, &mut s, &mut rates).unwrap();
        assert!(rates.total() > 0.0);
        assert_eq!(solver.rate_recalcs(), 2);
    }

    #[test]
    fn incremental_potentials_match_exact_after_events() {
        let (c, mut s) = set_ctx_and_state();
        let layout = RateLayout {
            junctions: c.num_junctions(),
            cotunnel_paths: 0,
            cooper_pairs: false,
        };
        let model = TunnelModel::Normal;
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        let mut rates = FenwickTree::new(layout.len());
        let mut solver = NonAdaptiveSolver::new();
        solver.initialize(&ctx, &mut s, &mut rates).unwrap();

        let island = c.island_node(0);
        // Apply a few transfers and a lead step through the solver.
        for _ in 0..3 {
            s.apply_transfer(&c, NodeId(1), island, 1);
            solver
                .apply_change(
                    &ctx,
                    &mut s,
                    &mut rates,
                    StateChange::Transfer {
                        from: NodeId(1),
                        to: island,
                        count: 1,
                    },
                )
                .unwrap();
        }
        let old = s.set_lead_voltage(1, 9e-3);
        solver
            .apply_change(
                &ctx,
                &mut s,
                &mut rates,
                StateChange::LeadStep {
                    lead: 1,
                    dv: 9e-3 - old,
                },
            )
            .unwrap();

        let cached = s.island_potentials().to_vec();
        s.recompute_potentials(&c);
        for (a, b) in cached.iter().zip(s.island_potentials()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
