//! The paper's adaptive solver (Algorithm 1).
//!
//! After each tunnel event (or input-voltage step), only the junctions
//! in the disturbance's *dependency neighbourhood* are tested: the
//! exact potential change across each tested junction is accumulated
//! into a per-junction testing factor `b`, and the junction's rates are
//! recomputed only when `|b|` exceeds the threshold `θ` times the
//! free-energy changes recorded at the last recomputation (`ΔW'_fw`,
//! `ΔW'_bw`). The neighbourhoods — precomputed at circuit build from
//! the sparsified `C⁻¹` coupling structure — contain every junction
//! whose `ΔW` moves by more than [`Circuit::COUPLING_EPS`] (relative)
//! for the event, so a strongly coupled region is fully updated while
//! isolated stages are left alone — the source of the paper's
//! up-to-40× speedup. Junctions outside a neighbourhood feel only
//! couplings below the same threshold the sparsified exact potential
//! refresh already drops, so skipping them adds no new approximation
//! class.
//!
//! Rate *values* are additionally memoised: for a fixed model and
//! temperature the rate is a pure function of `(ΔW, R)`, and a junction
//! toggling between a handful of charge configurations keeps
//! re-deriving the same ΔW bit patterns. An [`EvalMemo`] keyed on the
//! exact bit pattern serves those repeats without touching the
//! exponential/table evaluation — hits return the exact previously
//! computed value, so memoisation cannot perturb a trajectory.
//!
//! A `dense_reference` mode evaluates neighbourhood membership from the
//! dense matrices per event (and bypasses the memo); it is the
//! bit-identity oracle the optimized path is validated against.
//!
//! ## Exactness bookkeeping
//!
//! Island potentials are *linear* in the island charges, so the
//! per-event potential deltas are exact. This implementation exploits
//! that: it keeps a log of every state change since the last full
//! refresh and refreshes an island's cached potential *lazily* by
//! replaying only the log entries the island has not seen. Potentials
//! used to recompute a flagged junction's rates are therefore exact; the
//! approximation — identical to the paper's — is that *unflagged*
//! junctions keep stale rates. Because the skipped error accumulates in
//! `b₀` only for junctions that keep being tested (distant junctions are
//! not even tested), all rates are additionally recomputed every
//! `refresh_interval` events, as the paper prescribes.

use semsim_quad::EvalMemo;

use crate::backend::{Backend, BackendSpec, Disturbance, ReplayEntry};
use crate::circuit::{Circuit, JunctionId, NodeId};
use crate::energy::{delta_w, lead_step_delta, potential_delta, CircuitState};
use crate::fenwick::FenwickTree;
use crate::health::{screen_finite, screen_rate, FaultStage};
use crate::solver::{write_junction_rates, SolverContext, StateChange};
use crate::CoreError;

/// Entries kept per junction in the rate memo. Toggling circuits
/// revisit only a few charge configurations per junction; eight ways
/// cover them with room for transients.
const MEMO_WAYS: usize = 8;

/// Counters describing the work the adaptive solver actually performed
/// — the quantities behind the paper's Fig. 6 speedup argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// State changes processed.
    pub events: u64,
    /// Junction tests (Algorithm 1 lines 3–5).
    pub junctions_tested: u64,
    /// Junction rate recalculations (both directions of one junction
    /// count once).
    pub rate_recalcs: u64,
    /// Periodic full refreshes performed.
    pub full_refreshes: u64,
}

/// The adaptive solver of the paper's Algorithm 1.
#[derive(Debug)]
pub struct AdaptiveSolver {
    /// The paper's threshold `θ` (λ in some notations): a tested
    /// junction is flagged when `|b| ≥ θ·min(|ΔW'_fw|, |ΔW'_bw|)`.
    threshold: f64,
    /// Full refresh period (events).
    refresh_interval: u64,
    /// ΔW at last rate computation, per junction, both directions.
    dw_fw: Vec<f64>,
    dw_bw: Vec<f64>,
    /// Accumulated testing factor `b₀` per junction.
    b0: Vec<f64>,
    /// Replay log since the last full refresh, with node references
    /// pre-resolved to flat indices ([`ReplayEntry::resolve`]) so the
    /// per-island replay fold is free of node-kind lookups.
    log: Vec<ReplayEntry>,
    /// Per-island index into `log` of the first unapplied entry.
    applied: Vec<usize>,
    events_since_refresh: u64,
    stats: AdaptiveStats,
    /// Reference mode: evaluate dependency membership from the dense
    /// matrices per event and bypass the rate memo. Must produce
    /// bit-identical trajectories to the optimized path.
    dense_reference: bool,
    /// Per-junction memo of `ΔW → Γ` evaluations (one slot per
    /// junction; both directions share a slot — the rate is the same
    /// pure function either way).
    memo: EvalMemo,
    /// Compute backend for the hot-loop kernels. Every trajectory
    /// kernel is bit-identical across backends, so this is a pure
    /// performance selection.
    backend: Box<dyn Backend>,
    /// Materialized per-event recompute set (ascending) — reused
    /// allocation.
    tested_scratch: Vec<JunctionId>,
    /// Junctions whose testing factor crossed the gate this event —
    /// reused allocation.
    flagged_scratch: Vec<JunctionId>,
    /// Batched forward/backward rate buffers for `rewrite_all_rates`.
    gfw_scratch: Vec<f64>,
    gbw_scratch: Vec<f64>,
    /// Screened tunnel weights for the from-zero Fenwick rebuild.
    weights_scratch: Vec<f64>,
}

impl AdaptiveSolver {
    /// Creates a solver with threshold `θ = threshold` and the given
    /// full-refresh period.
    ///
    /// Typical values: `threshold` in `0.01 ..= 0.3` (larger = faster,
    /// less accurate), `refresh_interval` in the hundreds or thousands.
    pub fn new(circuit: &Circuit, threshold: f64, refresh_interval: u64) -> Self {
        let nj = circuit.num_junctions();
        AdaptiveSolver {
            threshold,
            refresh_interval: refresh_interval.max(1),
            dw_fw: vec![0.0; nj],
            dw_bw: vec![0.0; nj],
            b0: vec![0.0; nj],
            log: Vec::new(),
            applied: vec![0; circuit.num_islands()],
            events_since_refresh: 0,
            stats: AdaptiveStats::default(),
            dense_reference: false,
            memo: EvalMemo::new(nj, MEMO_WAYS),
            backend: BackendSpec::Scalar.instantiate(),
            tested_scratch: Vec::new(),
            flagged_scratch: Vec::new(),
            gfw_scratch: Vec::new(),
            gbw_scratch: Vec::new(),
            weights_scratch: Vec::new(),
        }
    }

    /// Selects the compute backend. Trajectories are bit-identical for
    /// every backend; dense-reference mode ignores the selection and
    /// keeps the scalar kernels (it is the oracle).
    pub fn with_backend(mut self, spec: BackendSpec) -> Self {
        self.backend = spec.instantiate();
        self
    }

    /// Name of the active compute backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Switches this solver to dense-reference mode: dependency
    /// membership is recomputed from the dense `C⁻¹`/lead-response
    /// matrices on every event and the rate memo is bypassed. Slower,
    /// but free of precomputed structure — the oracle the optimized
    /// path is asserted bit-identical against.
    pub fn with_dense_reference(mut self) -> Self {
        self.dense_reference = true;
        self
    }

    /// Is this solver in dense-reference mode?
    pub fn is_dense_reference(&self) -> bool {
        self.dense_reference
    }

    /// Lifetime `(hits, misses)` of the rate memo.
    pub fn memo_stats(&self) -> (u64, u64) {
        self.memo.stats()
    }

    /// The threshold `θ`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The full-refresh period (events).
    pub fn refresh_interval(&self) -> u64 {
        self.refresh_interval
    }

    /// Work counters.
    pub fn stats(&self) -> &AdaptiveStats {
        &self.stats
    }

    /// Brings `island`'s cached potential up to date: replays the
    /// unapplied tail of the change log when it is short, or recomputes
    /// the potential from the maintained charge vector in O(islands)
    /// when the island has been stale for longer than that — so one
    /// refresh never costs more than a single `C⁻¹` row product.
    pub(crate) fn refresh_island(
        &mut self,
        circuit: &Circuit,
        state: &mut CircuitState,
        island: usize,
    ) -> Result<(), CoreError> {
        let from_idx = self.applied[island];
        let pending = self.log.len() - from_idx.min(self.log.len());
        if pending == 0 {
            return Ok(());
        }
        if pending > circuit.num_islands() {
            state.phi[island] = state.exact_island_potential(circuit, island);
        } else {
            // The fold runs on the compute backend: per-entry deltas
            // ([`ReplayEntry::delta`] — the exact `potential_delta` /
            // `lead_step_delta` expressions over pre-resolved indices)
            // accumulated in strict log order, so every backend
            // produces the same bits the historical per-entry loop did.
            state.phi[island] = self.backend.replay_fold(
                circuit.inverse_capacitance().row(island),
                circuit.lead_response().row(island),
                &self.log[from_idx..],
                state.phi[island],
            );
        }
        self.applied[island] = self.log.len();
        screen_finite(FaultStage::IslandPotential, Some(island), state.phi[island])?;
        Ok(())
    }

    fn refresh_junction_nodes(
        &mut self,
        circuit: &Circuit,
        state: &mut CircuitState,
        j: JunctionId,
    ) -> Result<(), CoreError> {
        let junction = *circuit.junction(j);
        if let Some(i) = circuit.island_index(junction.node_a) {
            self.refresh_island(circuit, state, i)?;
        }
        if let Some(i) = circuit.island_index(junction.node_b) {
            self.refresh_island(circuit, state, i)?;
        }
        Ok(())
    }

    pub(crate) fn initialize(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
    ) -> Result<(), CoreError> {
        // Establish the exact-potential invariant the replay log
        // maintains from here on.
        state.recompute_potentials_with(ctx.circuit, &*self.backend);
        // The rate table is freshly zeroed at construction, so the
        // initial rewrite may use the backend's from-zero batched
        // Fenwick rebuild.
        self.full_refresh(ctx, state, rates, true)?;
        // initialize() is not a "refresh" in the statistics sense.
        self.stats.full_refreshes = self.stats.full_refreshes.saturating_sub(1);
        Ok(())
    }

    fn full_refresh(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        rates_from_zero: bool,
    ) -> Result<(), CoreError> {
        let circuit = ctx.circuit;
        // Replaying the log per island costs O(islands·pending); the
        // exact matvec costs O(islands²). Pick the cheaper route.
        if self.log.len() < circuit.num_islands() {
            for island in 0..circuit.num_islands() {
                self.refresh_island(circuit, state, island)?;
            }
        } else {
            state.recompute_potentials_with(circuit, &*self.backend);
        }
        self.log.clear();
        self.applied.iter_mut().for_each(|a| *a = 0);
        self.rewrite_all_rates(ctx, state, rates, rates_from_zero)?;
        self.stats.full_refreshes += 1;
        self.events_since_refresh = 0;
        Ok(())
    }

    /// Recomputes every junction's rates from the current potentials in
    /// canonical (ascending) order, resetting the `ΔW'`/`b₀` caches.
    ///
    /// The optimized path batches through the compute backend: all ΔW
    /// from the SoA buffers, then all directed rates, then per-junction
    /// screening and slot writes in the exact scalar order — so values,
    /// write sequence and the surfaced error (first failing junction,
    /// same fault stage) are identical to the historical per-junction
    /// loop. `rates_from_zero` marks the rate table as freshly zeroed
    /// (solver construction), enabling the backend's batched Fenwick
    /// rebuild; periodic refreshes and resyncs overwrite slots
    /// incrementally and must pass `false`. Dense-reference mode (and
    /// fault-injected runs) keep the uncached scalar loop.
    fn rewrite_all_rates(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        rates_from_zero: bool,
    ) -> Result<(), CoreError> {
        let circuit = ctx.circuit;
        #[cfg(feature = "fault-inject")]
        let use_reference = self.dense_reference || ctx.poison_rate.is_some();
        #[cfg(not(feature = "fault-inject"))]
        let use_reference = self.dense_reference;
        if use_reference {
            for j in circuit.junction_ids() {
                let (dw_fw, dw_bw) = self.write_rates_cached(ctx, state, rates, j)?;
                self.dw_fw[j.index()] = dw_fw;
                self.dw_bw[j.index()] = dw_bw;
                self.b0[j.index()] = 0.0;
            }
            self.stats.rate_recalcs += circuit.num_junctions() as u64;
            return Ok(());
        }
        let soa = circuit.junction_soa();
        self.backend.delta_w_all(
            circuit,
            &state.phi,
            state.lead_voltages(),
            &mut self.dw_fw,
            &mut self.dw_bw,
        );
        let mut gfw = std::mem::take(&mut self.gfw_scratch);
        let mut gbw = std::mem::take(&mut self.gbw_scratch);
        self.backend
            .tunnel_rates(ctx.model, ctx.kt, &self.dw_fw, &soa.resistance, &mut gfw);
        self.backend
            .tunnel_rates(ctx.model, ctx.kt, &self.dw_bw, &soa.resistance, &mut gbw);
        let mut weights = std::mem::take(&mut self.weights_scratch);
        weights.clear();
        for j in circuit.junction_ids() {
            let idx = j.index();
            let jx = Some(idx);
            screen_finite(FaultStage::FreeEnergy, jx, self.dw_fw[idx])?;
            screen_finite(FaultStage::FreeEnergy, jx, self.dw_bw[idx])?;
            if rates_from_zero {
                // tunnel_slot(j, fw) = 2j, (j, bw) = 2j + 1: pushing
                // fw then bw per ascending junction lays the weights
                // out slot-contiguously for the batched rebuild.
                weights.push(screen_rate(FaultStage::TunnelRate, jx, gfw[idx])?);
                weights.push(screen_rate(FaultStage::TunnelRate, jx, gbw[idx])?);
            } else {
                rates.set(
                    ctx.layout.tunnel_slot(j, true),
                    screen_rate(FaultStage::TunnelRate, jx, gfw[idx])?,
                );
                rates.set(
                    ctx.layout.tunnel_slot(j, false),
                    screen_rate(FaultStage::TunnelRate, jx, gbw[idx])?,
                );
            }
            self.b0[idx] = 0.0;
        }
        if rates_from_zero {
            self.backend.fenwick_rebuild(rates, &weights);
        }
        self.weights_scratch = weights;
        self.gfw_scratch = gfw;
        self.gbw_scratch = gbw;
        self.stats.rate_recalcs += circuit.num_junctions() as u64;
        Ok(())
    }

    /// Writes both directed rates of `j`, serving repeated `ΔW` bit
    /// patterns from the memo. A memo hit returns the exact value the
    /// rate function previously computed for that bit pattern, so this
    /// is bit-identical to [`write_junction_rates`]; dense-reference
    /// mode and fault-injected junctions take that uncached path
    /// directly.
    fn write_rates_cached(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        j: JunctionId,
    ) -> Result<(f64, f64), CoreError> {
        if self.dense_reference {
            return write_junction_rates(ctx, state, rates, j);
        }
        #[cfg(feature = "fault-inject")]
        if ctx.poison_rate == Some(j.index()) {
            return write_junction_rates(ctx, state, rates, j);
        }
        let circuit = ctx.circuit;
        let junction = *circuit.junction(j);
        let dw_fw = delta_w(circuit, state, junction.node_a, junction.node_b, 1);
        let dw_bw = delta_w(circuit, state, junction.node_b, junction.node_a, 1);
        let jx = Some(j.index());
        screen_finite(FaultStage::FreeEnergy, jx, dw_fw)?;
        screen_finite(FaultStage::FreeEnergy, jx, dw_bw)?;
        let idx = j.index();
        let g_fw = match self.memo.get(idx, dw_fw) {
            Some(g) => g,
            None => {
                let g = ctx.directed_rate(&junction, dw_fw);
                self.memo.insert(idx, dw_fw, g);
                g
            }
        };
        let g_bw = match self.memo.get(idx, dw_bw) {
            Some(g) => g,
            None => {
                let g = ctx.directed_rate(&junction, dw_bw);
                self.memo.insert(idx, dw_bw, g);
                g
            }
        };
        rates.set(
            ctx.layout.tunnel_slot(j, true),
            screen_rate(FaultStage::TunnelRate, jx, g_fw)?,
        );
        rates.set(
            ctx.layout.tunnel_slot(j, false),
            screen_rate(FaultStage::TunnelRate, jx, g_bw)?,
        );
        Ok((dw_fw, dw_bw))
    }

    /// Discards the replay log and every cache, recomputing potentials
    /// with the full matvec (never the replay path — checkpoint/resume
    /// relies on both sides reaching bit-identical potentials, and the
    /// replay path's summation order depends on history).
    pub(crate) fn resync(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
    ) -> Result<(), CoreError> {
        state.recompute_potentials_with(ctx.circuit, &*self.backend);
        self.log.clear();
        self.applied.iter_mut().for_each(|a| *a = 0);
        // A resync re-establishes state from external data (checkpoint
        // restore, drift-audit repair); drop memoised rates so the
        // rebuilt table owes nothing to pre-resync history.
        self.memo.clear();
        // The rate table may hold pre-resync values — overwrite
        // incrementally, never the from-zero rebuild.
        self.rewrite_all_rates(ctx, state, rates, false)?;
        self.stats.full_refreshes += 1;
        self.events_since_refresh = 0;
        Ok(())
    }

    /// Halves the testing threshold (graceful degradation after a failed
    /// drift audit), returning the new value.
    pub(crate) fn tighten_threshold(&mut self) -> f64 {
        self.threshold *= 0.5;
        // Conservative: the audit just found drift, so discard every
        // cached evaluation along with the looser threshold.
        self.memo.clear();
        self.threshold
    }

    /// Overwrites the threshold (checkpoint restore — the running value
    /// may have been tightened below the configured one).
    pub(crate) fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
        self.memo.clear();
    }

    /// Overwrites the work counters (checkpoint restore).
    pub(crate) fn set_stats(&mut self, stats: AdaptiveStats) {
        self.stats = stats;
    }

    /// Scales the cached `ΔW'` magnitudes of `junction` by `factor`,
    /// silencing the testing gate so the junction's rates go stale —
    /// used by the fault-injection harness to prove the drift audit
    /// catches exactly this class of corruption.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn corrupt_cache_entry(&mut self, junction: usize, factor: f64) {
        self.dw_fw[junction] *= factor;
        self.dw_bw[junction] *= factor;
    }

    /// Exact potential change of `node` caused by one log entry (0 for
    /// leads except the stepped lead itself).
    #[inline]
    fn node_delta(circuit: &Circuit, entry: Disturbance, node: NodeId) -> f64 {
        match entry {
            Disturbance::Transfer { from, to, count } => match circuit.island_index(node) {
                Some(k) => potential_delta(circuit, k, from, to, count),
                None => 0.0,
            },
            Disturbance::Step { lead, dv } => match circuit.island_index(node) {
                Some(k) => lead_step_delta(circuit, k, lead, dv),
                None => {
                    if circuit.lead_index(node) == Some(lead) {
                        dv
                    } else {
                        0.0
                    }
                }
            },
        }
    }

    pub(crate) fn apply_change(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        change: StateChange,
    ) -> Result<(), CoreError> {
        let circuit = ctx.circuit;
        self.stats.events += 1;
        self.events_since_refresh += 1;

        let entry = match change {
            StateChange::Transfer { from, to, count } => Disturbance::Transfer { from, to, count },
            StateChange::LeadStep { lead, dv } => Disturbance::Step { lead, dv },
        };
        self.log.push(ReplayEntry::resolve(circuit, entry));

        if self.events_since_refresh >= self.refresh_interval {
            // Periodic full recalculation (paper: "all junction
            // tunneling rates are recalculated periodically"). The
            // rate table holds live values here — incremental rewrite.
            return self.full_refresh(ctx, state, rates, false);
        }

        // Test exactly the junctions in the disturbance's dependency
        // neighbourhood, in ascending junction order (Algorithm 1
        // lines 2–11). Lead endpoints of a transfer contribute no
        // neighbourhood: a lead is a fixed-potential wall, so the
        // hundreds of junctions sharing a supply rail with the event
        // are unaffected unless their own islands couple.
        //
        // The optimized path materializes the recompute set and hands
        // it to the compute backend's testing kernel; the junctions it
        // flags are then recomputed in ascending order. This evaluates
        // the same tests, in the same order, with the same arithmetic
        // as the historical interleaved loop — tests read only
        // `b₀`/`ΔW'` and build-time matrices, never the quantities a
        // flagged recompute updates, so deferring the recomputes
        // changes no test outcome. Dense-reference mode keeps the
        // interleaved per-junction loop as the oracle.
        match change {
            StateChange::Transfer { from, to, .. } => {
                let ia = circuit.island_index(from);
                let ib = circuit.island_index(to);
                if self.dense_reference {
                    for j in circuit.junction_ids() {
                        let member = ia.is_some_and(|i| circuit.junction_depends_on_island(i, j))
                            || ib.is_some_and(|i| circuit.junction_depends_on_island(i, j));
                        if member {
                            self.test_junction(ctx, state, rates, entry, j)?;
                        }
                    }
                } else {
                    // Allocation-free merge of the two endpoints' sorted
                    // dependent lists: ascending order, each junction
                    // tested once even when both islands list it.
                    let mut tested = std::mem::take(&mut self.tested_scratch);
                    tested.clear();
                    let la = ia.map_or(&[][..], |i| circuit.island_dependents(i));
                    let lb = ib.map_or(&[][..], |i| circuit.island_dependents(i));
                    let (mut pa, mut pb) = (0, 0);
                    while pa < la.len() || pb < lb.len() {
                        let j = match (la.get(pa), lb.get(pb)) {
                            (Some(&a), Some(&b)) if a == b => {
                                pa += 1;
                                pb += 1;
                                a
                            }
                            (Some(&a), Some(&b)) if a < b => {
                                pa += 1;
                                a
                            }
                            (Some(_), Some(&b)) => {
                                pb += 1;
                                b
                            }
                            (Some(&a), None) => {
                                pa += 1;
                                a
                            }
                            (None, Some(&b)) => {
                                pb += 1;
                                b
                            }
                            (None, None) => unreachable!("loop condition"),
                        };
                        tested.push(j);
                    }
                    self.process_tested(ctx, state, rates, entry, tested)?;
                }
            }
            StateChange::LeadStep { lead, .. } => {
                if self.dense_reference {
                    for j in circuit.junction_ids() {
                        if circuit.junction_depends_on_lead(lead, j) {
                            self.test_junction(ctx, state, rates, entry, j)?;
                        }
                    }
                } else {
                    let mut tested = std::mem::take(&mut self.tested_scratch);
                    tested.clear();
                    tested.extend_from_slice(circuit.lead_dependents(lead));
                    self.process_tested(ctx, state, rates, entry, tested)?;
                }
            }
        }
        Ok(())
    }

    /// Runs the backend testing kernel over the materialized recompute
    /// set and recomputes the rates of every flagged junction in
    /// ascending order — the batched equivalent of calling
    /// [`AdaptiveSolver::test_junction`] per member.
    fn process_tested(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        entry: Disturbance,
        tested: Vec<JunctionId>,
    ) -> Result<(), CoreError> {
        self.stats.junctions_tested += tested.len() as u64;
        let mut flagged = std::mem::take(&mut self.flagged_scratch);
        flagged.clear();
        self.backend.test_factors(
            ctx.circuit,
            entry,
            &tested,
            self.threshold,
            &self.dw_fw,
            &self.dw_bw,
            &mut self.b0,
            &mut flagged,
        );
        for &j in &flagged {
            self.refresh_junction_nodes(ctx.circuit, state, j)?;
            let (dw_fw, dw_bw) = self.write_rates_cached(ctx, state, rates, j)?;
            let idx = j.index();
            self.dw_fw[idx] = dw_fw;
            self.dw_bw[idx] = dw_bw;
            self.b0[idx] = 0.0;
            self.stats.rate_recalcs += 1;
        }
        self.flagged_scratch = flagged;
        self.tested_scratch = tested;
        Ok(())
    }

    /// Tests one junction against the disturbance (Algorithm 1 lines
    /// 3–5): accumulates the exact `ΔW` shift into `b` and recomputes
    /// the junction's rates when it crosses the testing gate.
    fn test_junction(
        &mut self,
        ctx: &SolverContext<'_>,
        state: &mut CircuitState,
        rates: &mut FenwickTree,
        entry: Disturbance,
        j: JunctionId,
    ) -> Result<(), CoreError> {
        let circuit = ctx.circuit;
        self.stats.junctions_tested += 1;
        let junction = *circuit.junction(j);
        let dp_a = Self::node_delta(circuit, entry, junction.node_a);
        let dp_b = Self::node_delta(circuit, entry, junction.node_b);
        // The testing factor accumulates in energy units: a potential
        // change δP across the junction shifts ΔW by e·δP (Eq. 2), so
        // it is e·b that is compared against θ·|ΔW'|.
        let idx = j.index();
        let b = self.b0[idx] + crate::constants::E_CHARGE * (dp_a - dp_b);
        // Flag when |b| exceeds θ·|ΔW'| for either direction, i.e.
        // compare against the smaller magnitude.
        let gate = self.threshold * self.dw_fw[idx].abs().min(self.dw_bw[idx].abs());
        if b.abs() >= gate {
            self.refresh_junction_nodes(circuit, state, j)?;
            let (dw_fw, dw_bw) = self.write_rates_cached(ctx, state, rates, j)?;
            self.dw_fw[idx] = dw_fw;
            self.dw_bw[idx] = dw_bw;
            self.b0[idx] = 0.0;
            self.stats.rate_recalcs += 1;
        } else {
            self.b0[idx] = b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::constants::K_B;
    use crate::events::RateLayout;
    use crate::solver::TunnelModel;

    /// Two SET stages joined by a large coupling capacitor — the
    /// locality structure of the paper's Fig. 4.
    fn two_stage() -> (Circuit, Vec<JunctionId>) {
        let mut b = CircuitBuilder::new();
        let vdd = b.add_lead(10e-3);
        let i1 = b.add_island();
        let mid = b.add_island(); // "wire" island with large capacitance
        let i2 = b.add_island();
        let js = vec![
            b.add_junction(vdd, i1, 1e6, 1e-18).unwrap(),
            b.add_junction(i1, NodeId::GROUND, 1e6, 1e-18).unwrap(),
            b.add_junction(mid, i2, 1e6, 1e-18).unwrap(),
            b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap(),
        ];
        // Stage 1 output drives the wire through a capacitor; the wire's
        // large ground capacitance isolates stage 2.
        b.add_capacitor(i1, mid, 1e-18).unwrap();
        b.add_capacitor(mid, NodeId::GROUND, 1e-15).unwrap();
        (b.build().unwrap(), js)
    }

    fn make_parts(
        c: &Circuit,
        threshold: f64,
        interval: u64,
    ) -> (CircuitState, FenwickTree, AdaptiveSolver, RateLayout) {
        let layout = RateLayout {
            junctions: c.num_junctions(),
            cotunnel_paths: 0,
            cooper_pairs: false,
        };
        let state = CircuitState::new(c);
        let rates = FenwickTree::new(layout.len());
        let solver = AdaptiveSolver::new(c, threshold, interval);
        (state, rates, solver, layout)
    }

    #[test]
    fn zero_threshold_matches_nonadaptive_exactly() {
        // θ = 0 flags every tested junction; combined with the BFS
        // reaching everything coupled, rates must equal the exact ones.
        let (c, _js) = two_stage();
        let model = TunnelModel::Normal;
        let (mut state, mut rates, mut solver, layout) = make_parts(&c, 0.0, u64::MAX);
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        solver.initialize(&ctx, &mut state, &mut rates).unwrap();

        // Fire a transfer on stage 1.
        let i1 = c.island_node(0);
        state.apply_transfer(&c, NodeId(1), i1, 1);
        solver
            .apply_change(
                &ctx,
                &mut state,
                &mut rates,
                StateChange::Transfer {
                    from: NodeId(1),
                    to: i1,
                    count: 1,
                },
            )
            .unwrap();

        // Compare against a fresh exact computation.
        let mut exact_state = state.clone();
        exact_state.recompute_potentials(&c);
        let mut exact_rates = FenwickTree::new(layout.len());
        for j in c.junction_ids() {
            write_junction_rates(&ctx, &exact_state, &mut exact_rates, j).unwrap();
        }
        for slot in 0..layout.len() {
            let a = rates.get(slot);
            let e = exact_rates.get(slot);
            assert!(
                (a - e).abs() <= 1e-9 * e.abs().max(1e-12),
                "slot {slot}: {a} vs {e}"
            );
        }
    }

    #[test]
    fn isolated_stage_is_not_recalculated() {
        let (c, js) = two_stage();
        let model = TunnelModel::Normal;
        let (mut state, mut rates, mut solver, layout) = make_parts(&c, 0.05, u64::MAX);
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        solver.initialize(&ctx, &mut state, &mut rates).unwrap();
        let before = solver.stats().rate_recalcs;

        let i1 = c.island_node(0);
        state.apply_transfer(&c, NodeId(1), i1, 1);
        solver
            .apply_change(
                &ctx,
                &mut state,
                &mut rates,
                StateChange::Transfer {
                    from: NodeId(1),
                    to: i1,
                    count: 1,
                },
            )
            .unwrap();
        let recalcs = solver.stats().rate_recalcs - before;
        // Stage 1 has 2 junctions; stage 2's 2 junctions must have been
        // left alone thanks to the 1 fF wire capacitance.
        assert!(recalcs <= 2, "recalculated {recalcs} junctions");
        assert!(solver.stats().junctions_tested > 0);
        let _ = js;
    }

    #[test]
    fn periodic_refresh_fires() {
        let (c, _js) = two_stage();
        let model = TunnelModel::Normal;
        let (mut state, mut rates, mut solver, layout) = make_parts(&c, 0.5, 3);
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        solver.initialize(&ctx, &mut state, &mut rates).unwrap();
        let i1 = c.island_node(0);
        for k in 0..6 {
            let (from, to) = if k % 2 == 0 {
                (NodeId(1), i1)
            } else {
                (i1, NodeId(1))
            };
            state.apply_transfer(&c, from, to, 1);
            solver
                .apply_change(
                    &ctx,
                    &mut state,
                    &mut rates,
                    StateChange::Transfer { from, to, count: 1 },
                )
                .unwrap();
        }
        assert_eq!(solver.stats().full_refreshes, 2);
        // After refreshes the log must be compact.
        assert!(solver.log.len() < 3);
    }

    #[test]
    fn lead_step_seeds_and_updates() {
        let (c, _js) = two_stage();
        let model = TunnelModel::Normal;
        let (mut state, mut rates, mut solver, layout) = make_parts(&c, 0.01, u64::MAX);
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        solver.initialize(&ctx, &mut state, &mut rates).unwrap();
        let total_before = rates.total();

        // Step the supply lead (lead index 1 — ground is 0).
        let old = state.set_lead_voltage(1, 30e-3);
        solver
            .apply_change(
                &ctx,
                &mut state,
                &mut rates,
                StateChange::LeadStep {
                    lead: 1,
                    dv: 30e-3 - old,
                },
            )
            .unwrap();
        assert!(rates.total() != total_before);
    }

    #[test]
    fn lazy_island_refresh_is_exact() {
        let (c, _js) = two_stage();
        let model = TunnelModel::Normal;
        let (mut state, mut rates, mut solver, layout) = make_parts(&c, 10.0, u64::MAX);
        let ctx = SolverContext::new(&c, K_B * 5.0, &model, layout);
        solver.initialize(&ctx, &mut state, &mut rates).unwrap();

        // Huge threshold → nothing flags → potentials go stale.
        let i1 = c.island_node(0);
        for _ in 0..5 {
            state.apply_transfer(&c, NodeId(1), i1, 1);
            solver
                .apply_change(
                    &ctx,
                    &mut state,
                    &mut rates,
                    StateChange::Transfer {
                        from: NodeId(1),
                        to: i1,
                        count: 1,
                    },
                )
                .unwrap();
        }
        // Lazily refresh each island and compare to exact.
        for island in 0..c.num_islands() {
            solver.refresh_island(&c, &mut state, island).unwrap();
        }
        let lazy = state.island_potentials().to_vec();
        state.recompute_potentials(&c);
        for (a, b) in lazy.iter().zip(state.island_potentials()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
