//! Circuit topology and electrostatics precomputation.
//!
//! A single-electron circuit is a graph of *nodes* connected by tunnel
//! junctions and ordinary capacitors. Nodes are either **leads**
//! (fixed-potential terminals driven by voltage sources — the paper's
//! `vdc` entries) or **islands** (charge-quantized conductors). At build
//! time the island-block capacitance matrix `C` is assembled and inverted
//! once; the Monte Carlo solvers then only ever read `C⁻¹` (the paper's
//! Eq. 2) and the island–lead coupling block.

use semsim_linalg::{Matrix, SparsifiedMatrix};

use crate::constants::E_CHARGE;
use crate::CoreError;

/// Identifier of a circuit node (lead or island).
///
/// Node 0 is always the implicit ground lead created by
/// [`CircuitBuilder::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The implicit ground lead.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node, unique across leads and islands.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a tunnel junction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JunctionId(pub(crate) usize);

impl JunctionId {
    /// Raw index of the junction in declaration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NodeKind {
    /// Fixed-potential terminal; payload is the lead index.
    Lead(usize),
    /// Charge-quantized conductor; payload is the island index.
    Island(usize),
}

/// A tunnel junction: thin insulating barrier electrons tunnel through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Junction {
    /// First terminal.
    pub node_a: NodeId,
    /// Second terminal.
    pub node_b: NodeId,
    /// Normal-state tunnel resistance (Ω).
    pub resistance: f64,
    /// Junction capacitance (F).
    pub capacitance: f64,
}

/// An ordinary (non-tunneling) capacitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// First terminal.
    pub node_a: NodeId,
    /// Second terminal.
    pub node_b: NodeId,
    /// Capacitance (F).
    pub capacitance: f64,
}

/// Flat structure-of-arrays junction buffers consumed by the compute
/// backends ([`crate::backend`]): one contiguous slice per per-junction
/// quantity, indexed by raw junction id. The chunked backend walks
/// these slices in fixed-width lanes instead of chasing
/// [`Junction`]/[`NodeId`] structs, and the charging coefficients are
/// precomputed with exactly the arithmetic
/// [`crate::energy::delta_w`] would evaluate — so a ΔW assembled from
/// these buffers is bit-identical to the scalar path.
#[derive(Debug, Clone, Default)]
pub struct JunctionSoA {
    /// Island index of `node_a` per junction; [`JunctionSoA::NONE`]
    /// when the terminal is a lead.
    pub a_island: Vec<u32>,
    /// Island index of `node_b` per junction; [`JunctionSoA::NONE`]
    /// when the terminal is a lead.
    pub b_island: Vec<u32>,
    /// Lead index of `node_a` per junction; [`JunctionSoA::NONE`] when
    /// the terminal is an island.
    pub a_lead: Vec<u32>,
    /// Lead index of `node_b` per junction; [`JunctionSoA::NONE`] when
    /// the terminal is an island.
    pub b_lead: Vec<u32>,
    /// Forward charging coefficient per junction:
    /// `C⁻¹_aa + C⁻¹_bb − 2·C⁻¹_ab` evaluated in exactly the operand
    /// order of [`crate::energy::delta_w`] with `from = node_a`.
    pub charging_fw: Vec<f64>,
    /// Backward charging coefficient per junction:
    /// `C⁻¹_bb + C⁻¹_aa − 2·C⁻¹_ba`. Kept separately from
    /// `charging_fw` because the LU-derived `C⁻¹` is only symmetric to
    /// rounding, and bit-identity demands the exact per-direction
    /// entries.
    pub charging_bw: Vec<f64>,
    /// Normal-state tunnel resistance (Ω) per junction.
    pub resistance: Vec<f64>,
}

impl JunctionSoA {
    /// Sentinel index meaning "terminal is not of this kind".
    pub const NONE: u32 = u32::MAX;
}

/// Builder for [`Circuit`].
///
/// # Example
///
/// ```
/// use semsim_core::circuit::{CircuitBuilder, NodeId};
///
/// # fn main() -> Result<(), semsim_core::CoreError> {
/// let mut b = CircuitBuilder::new();
/// let bias = b.add_lead(1e-3);
/// let island = b.add_island();
/// b.add_junction(bias, island, 1e6, 1e-18)?;
/// b.add_junction(island, NodeId::GROUND, 1e6, 1e-18)?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_islands(), 1);
/// assert_eq!(circuit.num_leads(), 2); // ground + bias
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    nodes: Vec<NodeKind>,
    lead_bias: Vec<f64>,
    island_background: Vec<f64>,
    junctions: Vec<Junction>,
    capacitors: Vec<Capacitor>,
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBuilder {
    /// Creates a builder holding only the implicit ground lead (node 0).
    pub fn new() -> Self {
        CircuitBuilder {
            nodes: vec![NodeKind::Lead(0)],
            lead_bias: vec![0.0],
            island_background: Vec::new(),
            junctions: Vec::new(),
            capacitors: Vec::new(),
        }
    }

    /// Adds a lead (fixed-potential terminal) with initial bias `voltage`
    /// (V). The bias can be changed during simulation via stimuli.
    pub fn add_lead(&mut self, voltage: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeKind::Lead(self.lead_bias.len()));
        self.lead_bias.push(voltage);
        id
    }

    /// Adds an island with zero background charge.
    pub fn add_island(&mut self) -> NodeId {
        self.add_island_with_charge(0.0)
    }

    /// Adds an island with fractional background charge `q0` in units of
    /// the elementary charge (the paper's `Q_b/e`, e.g. `0.65` for the
    /// Fig. 5 experiment).
    pub fn add_island_with_charge(&mut self, q0_in_e: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes
            .push(NodeKind::Island(self.island_background.len()));
        self.island_background.push(q0_in_e * E_CHARGE);
        id
    }

    /// Adds a tunnel junction between `a` and `b` with normal-state
    /// resistance `resistance` (Ω) and capacitance `capacitance` (F).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes, self-loops, and non-positive or non-finite
    /// component values.
    pub fn add_junction(
        &mut self,
        a: NodeId,
        b: NodeId,
        resistance: f64,
        capacitance: f64,
    ) -> Result<JunctionId, CoreError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(CoreError::SelfLoop { node: a.0 });
        }
        if !(resistance > 0.0) || !resistance.is_finite() {
            return Err(CoreError::InvalidComponent {
                what: "junction resistance",
                value: resistance,
            });
        }
        if !(capacitance > 0.0) || !capacitance.is_finite() {
            return Err(CoreError::InvalidComponent {
                what: "junction capacitance",
                value: capacitance,
            });
        }
        let id = JunctionId(self.junctions.len());
        self.junctions.push(Junction {
            node_a: a,
            node_b: b,
            resistance,
            capacitance,
        });
        Ok(id)
    }

    /// Adds an ordinary capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same validation as [`CircuitBuilder::add_junction`].
    pub fn add_capacitor(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacitance: f64,
    ) -> Result<(), CoreError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(CoreError::SelfLoop { node: a.0 });
        }
        if !(capacitance > 0.0) || !capacitance.is_finite() {
            return Err(CoreError::InvalidComponent {
                what: "capacitance",
                value: capacitance,
            });
        }
        self.capacitors.push(Capacitor {
            node_a: a,
            node_b: b,
            capacitance,
        });
        Ok(())
    }

    fn check_node(&self, n: NodeId) -> Result<(), CoreError> {
        if n.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(CoreError::UnknownNode { node: n.0 })
        }
    }

    /// Finalizes the circuit: assembles and inverts the island
    /// capacitance matrix and precomputes adjacency used by the solvers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoJunctions`] for a junction-less circuit and
    /// [`CoreError::FloatingIsland`] if the capacitance matrix is
    /// singular.
    pub fn build(self) -> Result<Circuit, CoreError> {
        Circuit::from_parts(self)
    }
}

/// An immutable, analysis-ready single-electron circuit.
///
/// Constructed by [`CircuitBuilder::build`]; see the builder for an
/// example.
#[derive(Debug, Clone)]
pub struct Circuit {
    nodes: Vec<NodeKind>,
    lead_bias: Vec<f64>,
    lead_nodes: Vec<NodeId>,
    island_background: Vec<f64>,
    island_nodes: Vec<NodeId>,
    junctions: Vec<Junction>,
    capacitors: Vec<Capacitor>,
    /// Island-block capacitance matrix (islands × islands).
    cmatrix: Matrix,
    /// Its inverse — the paper's `C⁻¹`.
    cinv: Matrix,
    /// Row-sparsified view of `C⁻¹` (relative threshold 1e-8): in
    /// weakly coupled circuits each island feels only its own stage, so
    /// rows are short and the adaptive solver's exact potential
    /// refreshes cost O(stage) instead of O(islands).
    cinv_sparse: SparsifiedMatrix,
    /// Island–lead coupling block (islands × leads).
    cext: Matrix,
    /// `C⁻¹ · C_ext` — potential response of each island to a unit step
    /// on each lead.
    lead_response: Matrix,
    /// Junctions incident to each node.
    node_junctions: Vec<Vec<JunctionId>>,
    /// Neighbour junctions per junction for the adaptive BFS: junctions
    /// incident to either terminal or to nodes capacitively adjacent to
    /// either terminal.
    junction_neighbors: Vec<Vec<JunctionId>>,
    /// Junctions incident to each lead's capacitive neighbourhood — the
    /// BFS seeds for an input-voltage step on that lead.
    lead_seed_junctions: Vec<Vec<JunctionId>>,
    /// Sparsified dependency neighbourhood of each island: the
    /// junctions (ascending id order) whose ΔW changes by more than the
    /// sparsification threshold when that island's charge changes —
    /// i.e. junctions with a terminal island `k` such that
    /// `|C⁻¹[island,k]|` exceeds [`Circuit::COUPLING_EPS`] of the
    /// island's own diagonal. The adaptive solver walks these flat
    /// lists per event instead of scanning dense `C⁻¹` rows.
    island_dependents: Vec<Vec<JunctionId>>,
    /// Dependency neighbourhood of each lead: junctions touching the
    /// lead node plus junctions on islands whose potential responds to
    /// a step on that lead above the sparsification threshold.
    lead_dependents: Vec<Vec<JunctionId>>,
    /// Per-lead maximum `|lead_response|` over islands — the scale the
    /// lead sparsification threshold is relative to.
    lead_response_colmax: Vec<f64>,
    /// Transpose of `C⁻¹` (a bitwise copy of every entry). The
    /// per-event testing kernel gathers `C⁻¹[island, f]` for the two
    /// fixed source/destination columns `f` over many islands; in the
    /// row-major `cinv` those reads stride by a full row, in `cinv_t`
    /// the column is one contiguous cache-resident slice.
    cinv_t: Matrix,
    /// Transpose of `lead_response` — same contiguity argument, for
    /// input-voltage steps.
    lead_response_t: Matrix,
    /// Flat SoA junction buffers for the compute backends.
    junction_soa: JunctionSoA,
    /// Warning-severity findings from the static checks that ran during
    /// [`CircuitBuilder::build`] (ill-conditioned capacitance matrix,
    /// tunnel-unreachable islands). Error-severity defects surface as
    /// [`CoreError`]s instead.
    check_warnings: semsim_check::Diagnostics,
}

impl Circuit {
    fn from_parts(b: CircuitBuilder) -> Result<Self, CoreError> {
        if b.junctions.is_empty() {
            return Err(CoreError::NoJunctions);
        }
        let n_nodes = b.nodes.len();
        let n_islands = b.island_background.len();
        let n_leads = b.lead_bias.len();

        let mut island_nodes = vec![NodeId(0); n_islands];
        let mut lead_nodes = vec![NodeId(0); n_leads];
        for (idx, kind) in b.nodes.iter().enumerate() {
            match *kind {
                NodeKind::Lead(l) => lead_nodes[l] = NodeId(idx),
                NodeKind::Island(i) => island_nodes[i] = NodeId(idx),
            }
        }

        // Assemble the island capacitance matrix and the island–lead
        // coupling block from every capacitive element (junctions have a
        // capacitance too).
        let mut cmatrix = Matrix::zeros(n_islands, n_islands);
        let mut cext = Matrix::zeros(n_islands, n_leads);
        let caps = b
            .junctions
            .iter()
            .map(|j| (j.node_a, j.node_b, j.capacitance))
            .chain(
                b.capacitors
                    .iter()
                    .map(|c| (c.node_a, c.node_b, c.capacitance)),
            );
        for (na, nb, c) in caps {
            let ka = b.nodes[na.0];
            let kb = b.nodes[nb.0];
            match (ka, kb) {
                (NodeKind::Island(i), NodeKind::Island(j)) => {
                    cmatrix.add_to(i, i, c);
                    cmatrix.add_to(j, j, c);
                    cmatrix.add_to(i, j, -c);
                    cmatrix.add_to(j, i, -c);
                }
                (NodeKind::Island(i), NodeKind::Lead(l)) => {
                    cmatrix.add_to(i, i, c);
                    cext.add_to(i, l, c);
                }
                (NodeKind::Lead(l), NodeKind::Island(i)) => {
                    cmatrix.add_to(i, i, c);
                    cext.add_to(i, l, c);
                }
                // A capacitor between two fixed-potential terminals does
                // not influence island dynamics.
                (NodeKind::Lead(_), NodeKind::Lead(_)) => {}
            }
        }

        // Static checks on the abstract graph. Hard defects (floating
        // islands → singular matrix) still surface through the inverse
        // below as `CoreError::FloatingIsland`; the warnings
        // (ill-conditioning, tunnel-unreachable islands) are kept on the
        // circuit for callers to surface.
        let check_warnings = {
            let mut model = semsim_check::CircuitModel::new();
            let mut model_nodes = Vec::with_capacity(n_nodes);
            for (idx, kind) in b.nodes.iter().enumerate() {
                let mn = match kind {
                    NodeKind::Lead(_) => model.add_lead(),
                    NodeKind::Island(_) => model.add_island(),
                };
                model.set_label(mn, idx.to_string());
                model_nodes.push(mn);
            }
            for j in &b.junctions {
                model.add_junction(
                    model_nodes[j.node_a.0],
                    model_nodes[j.node_b.0],
                    1.0 / j.resistance,
                    j.capacitance,
                );
            }
            for c in &b.capacitors {
                model.add_capacitor(
                    model_nodes[c.node_a.0],
                    model_nodes[c.node_b.0],
                    c.capacitance,
                );
            }
            let mut warnings = semsim_check::Diagnostics::new();
            for d in semsim_check::check_circuit(&model) {
                if d.severity == semsim_check::Severity::Warning {
                    warnings.push(d);
                }
            }
            warnings
        };

        let cinv = if n_islands > 0 {
            cmatrix.inverse().map_err(CoreError::FloatingIsland)?
        } else {
            Matrix::zeros(0, 0)
        };
        let cinv_sparse = SparsifiedMatrix::new(&cinv, 1e-8);
        let lead_response = if n_islands > 0 {
            cinv.mul(&cext).expect("shape fixed by construction")
        } else {
            Matrix::zeros(0, n_leads)
        };

        // Node-level incidence and capacitive adjacency.
        let mut node_junctions: Vec<Vec<JunctionId>> = vec![Vec::new(); n_nodes];
        for (idx, j) in b.junctions.iter().enumerate() {
            node_junctions[j.node_a.0].push(JunctionId(idx));
            node_junctions[j.node_b.0].push(JunctionId(idx));
        }
        // Capacitive adjacency between nodes, *island hops only*: leads
        // are fixed-potential, so electrostatic influence never
        // propagates through them — two junctions that share only a
        // supply rail or ground do not perturb each other. Ignoring
        // lead-mediated "adjacency" is what keeps neighbour lists local
        // (paper Fig. 4: stages talk only through island-to-island
        // coupling capacitors).
        let is_island_node = |n: NodeId| matches!(b.nodes[n.0], NodeKind::Island(_));
        let mut island_adjacent: Vec<Vec<NodeId>> = vec![Vec::new(); n_nodes];
        let pairs = b
            .junctions
            .iter()
            .map(|j| (j.node_a, j.node_b))
            .chain(b.capacitors.iter().map(|c| (c.node_a, c.node_b)));
        for (na, nb) in pairs {
            if is_island_node(nb) {
                island_adjacent[na.0].push(nb);
            }
            if is_island_node(na) {
                island_adjacent[nb.0].push(na);
            }
        }

        // Neighbour junctions: everything incident to my island
        // terminals or to islands one capacitive hop away from them.
        let mut junction_neighbors: Vec<Vec<JunctionId>> = Vec::with_capacity(b.junctions.len());
        for (idx, j) in b.junctions.iter().enumerate() {
            let mut seen = vec![false; b.junctions.len()];
            let mut out = Vec::new();
            let push_node = |node: NodeId, seen: &mut Vec<bool>, out: &mut Vec<JunctionId>| {
                for &jj in &node_junctions[node.0] {
                    if jj.0 != idx && !seen[jj.0] {
                        seen[jj.0] = true;
                        out.push(jj);
                    }
                }
            };
            for &terminal in &[j.node_a, j.node_b] {
                if !is_island_node(terminal) {
                    continue;
                }
                push_node(terminal, &mut seen, &mut out);
                for &adj in &island_adjacent[terminal.0] {
                    push_node(adj, &mut seen, &mut out);
                }
            }
            junction_neighbors.push(out);
        }

        // Seeds for an input step on each lead: junctions touching the
        // lead directly, plus junctions of islands coupled to the lead.
        let mut lead_seed_junctions: Vec<Vec<JunctionId>> = Vec::with_capacity(n_leads);
        for &node in lead_nodes.iter().take(n_leads) {
            let mut seen = vec![false; b.junctions.len()];
            let mut out = Vec::new();
            let push_node = |node: NodeId, seen: &mut Vec<bool>, out: &mut Vec<JunctionId>| {
                for &jj in &node_junctions[node.0] {
                    if !seen[jj.0] {
                        seen[jj.0] = true;
                        out.push(jj);
                    }
                }
            };
            push_node(node, &mut seen, &mut out);
            for &adj in island_adjacent[node.0].clone().iter() {
                push_node(adj, &mut seen, &mut out);
            }
            lead_seed_junctions.push(out);
        }

        let mut circuit = Circuit {
            nodes: b.nodes,
            lead_bias: b.lead_bias,
            lead_nodes,
            island_background: b.island_background,
            island_nodes,
            junctions: b.junctions,
            capacitors: b.capacitors,
            cmatrix,
            cinv,
            cinv_sparse,
            cext,
            lead_response,
            node_junctions,
            junction_neighbors,
            lead_seed_junctions,
            island_dependents: Vec::new(),
            lead_dependents: Vec::new(),
            lead_response_colmax: Vec::new(),
            cinv_t: Matrix::zeros(0, 0),
            lead_response_t: Matrix::zeros(0, 0),
            junction_soa: JunctionSoA::default(),
            check_warnings,
        };
        circuit.cinv_t = circuit.cinv.transposed();
        circuit.lead_response_t = circuit.lead_response.transposed();
        circuit.junction_soa = {
            let idx32 = |o: Option<usize>| o.map_or(JunctionSoA::NONE, |i| i as u32);
            let mut soa = JunctionSoA::default();
            for j in &circuit.junctions {
                let (a, b) = (j.node_a, j.node_b);
                soa.a_island.push(idx32(circuit.island_index(a)));
                soa.b_island.push(idx32(circuit.island_index(b)));
                soa.a_lead.push(idx32(circuit.lead_index(a)));
                soa.b_lead.push(idx32(circuit.lead_index(b)));
                // Operand order matches `delta_w`'s charging expression
                // for each direction — bit-identity depends on it.
                soa.charging_fw.push(
                    circuit.cinv_between(a, a) + circuit.cinv_between(b, b)
                        - 2.0 * circuit.cinv_between(a, b),
                );
                soa.charging_bw.push(
                    circuit.cinv_between(b, b) + circuit.cinv_between(a, a)
                        - 2.0 * circuit.cinv_between(b, a),
                );
                soa.resistance.push(j.resistance);
            }
            soa
        };

        // Sparsified dependency neighbourhoods, precomputed from the
        // same membership predicates the dense-reference solver mode
        // evaluates per event — the two paths are identical sets in
        // identical (ascending) order by construction, which is what
        // makes the optimized solver bit-identical to the reference.
        circuit.lead_response_colmax = (0..n_leads)
            .map(|l| {
                (0..n_islands).fold(0.0f64, |m, k| m.max(circuit.lead_response.get(k, l).abs()))
            })
            .collect();
        circuit.island_dependents = (0..n_islands)
            .map(|i| {
                circuit
                    .junction_ids()
                    .filter(|&j| circuit.junction_depends_on_island(i, j))
                    .collect()
            })
            .collect();
        circuit.lead_dependents = (0..n_leads)
            .map(|l| {
                circuit
                    .junction_ids()
                    .filter(|&j| circuit.junction_depends_on_lead(l, j))
                    .collect()
            })
            .collect();

        Ok(circuit)
    }

    /// Warning-severity findings from the static checks run at build
    /// time (SC003 ill-conditioning, SC005 tunnel-unreachable islands).
    pub fn check_warnings(&self) -> &semsim_check::Diagnostics {
        &self.check_warnings
    }

    /// Number of nodes (leads + islands), including ground.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of islands.
    pub fn num_islands(&self) -> usize {
        self.island_background.len()
    }

    /// Number of leads, including ground.
    pub fn num_leads(&self) -> usize {
        self.lead_bias.len()
    }

    /// Number of tunnel junctions.
    pub fn num_junctions(&self) -> usize {
        self.junctions.len()
    }

    /// Is `node` an island?
    pub fn is_island(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.0], NodeKind::Island(_))
    }

    /// Island index of `node`, if it is an island.
    pub fn island_index(&self, node: NodeId) -> Option<usize> {
        match self.nodes[node.0] {
            NodeKind::Island(i) => Some(i),
            NodeKind::Lead(_) => None,
        }
    }

    /// Lead index of `node`, if it is a lead.
    pub fn lead_index(&self, node: NodeId) -> Option<usize> {
        match self.nodes[node.0] {
            NodeKind::Lead(l) => Some(l),
            NodeKind::Island(_) => None,
        }
    }

    /// Node of island `island`.
    ///
    /// # Panics
    ///
    /// Panics if `island ≥ num_islands()`.
    pub fn island_node(&self, island: usize) -> NodeId {
        self.island_nodes[island]
    }

    /// Node of lead `lead`.
    ///
    /// # Panics
    ///
    /// Panics if `lead ≥ num_leads()`.
    pub fn lead_node(&self, lead: usize) -> NodeId {
        self.lead_nodes[lead]
    }

    /// Initial bias voltages of all leads (V), in lead order.
    pub fn initial_lead_voltages(&self) -> &[f64] {
        &self.lead_bias
    }

    /// Background charges of all islands (C), in island order.
    pub fn island_background_charges(&self) -> &[f64] {
        &self.island_background
    }

    /// The junctions in declaration order.
    pub fn junctions(&self) -> &[Junction] {
        &self.junctions
    }

    /// One junction.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from this circuit's builder
    /// are always valid).
    pub fn junction(&self, id: JunctionId) -> &Junction {
        &self.junctions[id.0]
    }

    /// The ordinary capacitors in declaration order.
    pub fn capacitors(&self) -> &[Capacitor] {
        &self.capacitors
    }

    /// The island capacitance matrix `C`.
    pub fn capacitance_matrix(&self) -> &Matrix {
        &self.cmatrix
    }

    /// The inverse island capacitance matrix `C⁻¹` (paper Eq. 2).
    pub fn inverse_capacitance(&self) -> &Matrix {
        &self.cinv
    }

    /// Row-sparsified view of `C⁻¹` (entries below 1e-8 of the row
    /// diagonal dropped) — the locality structure the adaptive solver
    /// exploits for exact single-island potential refreshes.
    pub fn sparse_inverse_capacitance(&self) -> &SparsifiedMatrix {
        &self.cinv_sparse
    }

    /// The island–lead coupling block `C_ext`.
    pub fn lead_coupling(&self) -> &Matrix {
        &self.cext
    }

    /// `C⁻¹·C_ext`: island-potential response to a unit lead step.
    pub fn lead_response(&self) -> &Matrix {
        &self.lead_response
    }

    /// Transpose of `C⁻¹` — bitwise-equal entries, column-contiguous
    /// layout for the chunked backend's per-event gathers.
    pub fn transposed_inverse_capacitance(&self) -> &Matrix {
        &self.cinv_t
    }

    /// Transpose of `C⁻¹·C_ext` — bitwise-equal entries, per-lead rows
    /// contiguous.
    pub fn transposed_lead_response(&self) -> &Matrix {
        &self.lead_response_t
    }

    /// Flat SoA junction buffers consumed by the compute backends.
    pub fn junction_soa(&self) -> &JunctionSoA {
        &self.junction_soa
    }

    /// Entry of `C⁻¹` between two *nodes* — zero if either is a lead.
    #[inline]
    pub fn cinv_between(&self, a: NodeId, b: NodeId) -> f64 {
        match (self.island_index(a), self.island_index(b)) {
            (Some(i), Some(j)) => self.cinv.get(i, j),
            _ => 0.0,
        }
    }

    /// Total capacitance seen by the island at `node` (the `C_Σ` of a
    /// single-island device), or `None` for a lead.
    pub fn total_capacitance(&self, node: NodeId) -> Option<f64> {
        self.island_index(node).map(|i| self.cmatrix.get(i, i))
    }

    /// Junctions incident to `node`.
    pub fn junctions_at(&self, node: NodeId) -> &[JunctionId] {
        &self.node_junctions[node.0]
    }

    /// Neighbour junctions of `j` for the adaptive BFS.
    pub fn junction_neighbors(&self, j: JunctionId) -> &[JunctionId] {
        &self.junction_neighbors[j.0]
    }

    /// BFS seed junctions for an input step on `lead`.
    pub fn lead_seed_junctions(&self, lead: usize) -> &[JunctionId] {
        &self.lead_seed_junctions[lead]
    }

    /// Relative threshold below which a `C⁻¹` (or lead-response)
    /// coupling is treated as zero when building dependency
    /// neighbourhoods. Matches the sparsification threshold of
    /// [`Circuit::sparse_inverse_capacitance`], so a junction outside a
    /// neighbourhood sees exactly the potential change the sparsified
    /// exact refresh would give it: none.
    pub const COUPLING_EPS: f64 = 1e-8;

    /// Does junction `j`'s free energy depend (above
    /// [`Circuit::COUPLING_EPS`]) on the charge of island `island`?
    ///
    /// True iff a terminal of `j` is an island `k` with
    /// `|C⁻¹[island,k]| ≥ COUPLING_EPS·|C⁻¹[island,island]|`. The
    /// diagonal always qualifies, so junctions incident to the island
    /// itself are always dependents.
    #[inline]
    pub fn junction_depends_on_island(&self, island: usize, j: JunctionId) -> bool {
        let tol = Self::COUPLING_EPS * self.cinv.get(island, island).abs();
        let junction = &self.junctions[j.0];
        [junction.node_a, junction.node_b]
            .into_iter()
            .filter_map(|n| self.island_index(n))
            .any(|k| self.cinv.get(island, k).abs() >= tol)
    }

    /// Does junction `j`'s free energy depend (above
    /// [`Circuit::COUPLING_EPS`]) on the bias voltage of `lead`?
    ///
    /// True iff `j` touches the lead node itself (the lead potential
    /// enters ΔW directly) or has an island terminal whose
    /// lead-response coefficient for `lead` is at least `COUPLING_EPS`
    /// of the largest response any island has to that lead. A lead no
    /// island responds to keeps only its directly attached junctions.
    #[inline]
    pub fn junction_depends_on_lead(&self, lead: usize, j: JunctionId) -> bool {
        let junction = &self.junctions[j.0];
        let lead_node = self.lead_nodes[lead];
        if junction.node_a == lead_node || junction.node_b == lead_node {
            return true;
        }
        let tol = Self::COUPLING_EPS * self.lead_response_colmax[lead];
        tol > 0.0
            && [junction.node_a, junction.node_b]
                .into_iter()
                .filter_map(|n| self.island_index(n))
                .any(|k| self.lead_response.get(k, lead).abs() >= tol)
    }

    /// Precomputed dependency neighbourhood of `island`: junctions
    /// satisfying [`Circuit::junction_depends_on_island`], ascending.
    pub fn island_dependents(&self, island: usize) -> &[JunctionId] {
        &self.island_dependents[island]
    }

    /// Precomputed dependency neighbourhood of `lead`: junctions
    /// satisfying [`Circuit::junction_depends_on_lead`], ascending.
    pub fn lead_dependents(&self, lead: usize) -> &[JunctionId] {
        &self.lead_dependents[lead]
    }

    /// Iterator over all junction ids.
    pub fn junction_ids(&self) -> impl ExactSizeIterator<Item = JunctionId> {
        (0..self.junctions.len()).map(JunctionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig. 1b device: R₁=R₂=1 MΩ, C₁=C₂=1 aF, C_g=3 aF.
    fn paper_set() -> (Circuit, NodeId, JunctionId, JunctionId) {
        let mut b = CircuitBuilder::new();
        let src = b.add_lead(0.0);
        let drn = b.add_lead(0.0);
        let gate = b.add_lead(0.0);
        let island = b.add_island();
        let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
        let j2 = b.add_junction(island, drn, 1e6, 1e-18).unwrap();
        b.add_capacitor(gate, island, 3e-18).unwrap();
        (b.build().unwrap(), island, j1, j2)
    }

    #[test]
    fn set_total_capacitance_is_5af() {
        let (c, island, _, _) = paper_set();
        let ct = c.total_capacitance(island).unwrap();
        assert!((ct - 5e-18).abs() < 1e-30);
    }

    #[test]
    fn set_cinv_is_reciprocal_of_ctotal() {
        let (c, island, _, _) = paper_set();
        let i = c.island_index(island).unwrap();
        assert!((c.inverse_capacitance().get(i, i) - 1.0 / 5e-18).abs() < 1e8);
    }

    #[test]
    fn lead_response_rows_sum_to_less_than_one() {
        // An island fully surrounded by leads: the response to all leads
        // stepping together by 1 V is exactly 1 V.
        let (c, island, _, _) = paper_set();
        let i = c.island_index(island).unwrap();
        let total: f64 = (0..c.num_leads())
            .map(|l| c.lead_response().get(i, l))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_is_node_zero() {
        let mut b = CircuitBuilder::new();
        let isl = b.add_island();
        b.add_junction(NodeId::GROUND, isl, 1e5, 1e-18).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.lead_node(0), NodeId::GROUND);
        assert!(!c.is_island(NodeId::GROUND));
        assert!(c.is_island(isl));
    }

    #[test]
    fn rejects_no_junctions() {
        let mut b = CircuitBuilder::new();
        b.add_island();
        assert!(matches!(b.build(), Err(CoreError::NoJunctions)));
    }

    #[test]
    fn rejects_floating_island() {
        // An island connected to nothing capacitively except through a
        // second floating island loop is singular; simplest case: island
        // with a junction whose capacitance is the only one — actually
        // that is well-posed. A truly floating island needs no elements,
        // which build() can only see as a zero diagonal.
        let mut b = CircuitBuilder::new();
        let i1 = b.add_island();
        let i2 = b.add_island();
        let _unused = i2;
        // i2 has no capacitance at all → zero row.
        b.add_junction(NodeId::GROUND, i1, 1e6, 1e-18).unwrap();
        assert!(matches!(b.build(), Err(CoreError::FloatingIsland(_))));
    }

    #[test]
    fn rejects_bad_components() {
        let mut b = CircuitBuilder::new();
        let i = b.add_island();
        assert!(b.add_junction(NodeId::GROUND, i, -1.0, 1e-18).is_err());
        assert!(b.add_junction(NodeId::GROUND, i, 1e6, 0.0).is_err());
        assert!(b.add_junction(NodeId::GROUND, i, f64::NAN, 1e-18).is_err());
        assert!(b.add_junction(i, i, 1e6, 1e-18).is_err());
        assert!(b.add_capacitor(i, i, 1e-18).is_err());
        assert!(b.add_capacitor(NodeId::GROUND, i, f64::INFINITY).is_err());
        assert!(b.add_junction(NodeId(99), i, 1e6, 1e-18).is_err());
    }

    #[test]
    fn junction_neighbors_cover_shared_nodes() {
        let (c, _, j1, j2) = paper_set();
        assert!(c.junction_neighbors(j1).contains(&j2));
        assert!(c.junction_neighbors(j2).contains(&j1));
        assert!(!c.junction_neighbors(j1).contains(&j1));
    }

    #[test]
    fn neighbors_cross_coupling_capacitors() {
        // Two SET stages coupled only by a capacitor: each stage's
        // junctions must still see the other stage's junctions that touch
        // the coupled node (paper Fig. 4 locality structure).
        let mut b = CircuitBuilder::new();
        let i1 = b.add_island();
        let i2 = b.add_island();
        let ja = b.add_junction(NodeId::GROUND, i1, 1e6, 1e-18).unwrap();
        let jb = b.add_junction(NodeId::GROUND, i2, 1e6, 1e-18).unwrap();
        b.add_capacitor(i1, i2, 1e-17).unwrap();
        let c = b.build().unwrap();
        assert!(c.junction_neighbors(ja).contains(&jb));
        assert!(c.junction_neighbors(jb).contains(&ja));
    }

    #[test]
    fn lead_seeds_include_coupled_islands() {
        let (c, _, j1, j2) = paper_set();
        // Gate lead (index 3 in declaration order → lead index 3? ground
        // =0, src=1, drn=2, gate=3). A step on the gate must seed both
        // junctions of the SET.
        let seeds = c.lead_seed_junctions(3);
        assert!(seeds.contains(&j1) && seeds.contains(&j2));
    }

    #[test]
    fn island_dependents_cover_incident_and_coupled_junctions() {
        // Two islands coupled by a sizeable capacitor: each island's
        // neighbourhood must include the other island's junctions, in
        // ascending id order, and agree with the per-event predicate.
        let mut b = CircuitBuilder::new();
        let i1 = b.add_island();
        let i2 = b.add_island();
        let ja = b.add_junction(NodeId::GROUND, i1, 1e6, 1e-18).unwrap();
        let jb = b.add_junction(NodeId::GROUND, i2, 1e6, 1e-18).unwrap();
        b.add_capacitor(i1, i2, 1e-17).unwrap();
        let c = b.build().unwrap();
        for island in 0..c.num_islands() {
            let deps = c.island_dependents(island);
            assert!(deps.contains(&ja) && deps.contains(&jb));
            assert!(deps.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
            let from_predicate: Vec<JunctionId> = c
                .junction_ids()
                .filter(|&j| c.junction_depends_on_island(island, j))
                .collect();
            assert_eq!(deps, from_predicate.as_slice());
        }
    }

    #[test]
    fn island_dependents_exclude_decoupled_stages() {
        // Two SET stages that talk only through ground (a lead): their
        // C⁻¹ cross-coupling is exactly zero, so neither stage's island
        // lists the other stage's junction.
        let mut b = CircuitBuilder::new();
        let i1 = b.add_island();
        let i2 = b.add_island();
        let ja = b.add_junction(NodeId::GROUND, i1, 1e6, 1e-18).unwrap();
        let jb = b.add_junction(NodeId::GROUND, i2, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.island_dependents(0), &[ja]);
        assert_eq!(c.island_dependents(1), &[jb]);
    }

    #[test]
    fn lead_dependents_cover_direct_and_responsive_junctions() {
        let (c, _, j1, j2) = paper_set();
        // Gate lead (index 3): couples to the island, whose junctions
        // both respond.
        let gate_deps = c.lead_dependents(3);
        assert!(gate_deps.contains(&j1) && gate_deps.contains(&j2));
        // Source lead (index 1): j1 touches it directly; j2 sits on the
        // island, which responds to the source step.
        let src_deps = c.lead_dependents(1);
        assert!(src_deps.contains(&j1) && src_deps.contains(&j2));
        for lead in 0..c.num_leads() {
            let from_predicate: Vec<JunctionId> = c
                .junction_ids()
                .filter(|&j| c.junction_depends_on_lead(lead, j))
                .collect();
            assert_eq!(c.lead_dependents(lead), from_predicate.as_slice());
        }
    }

    #[test]
    fn unresponsive_lead_keeps_only_direct_junctions() {
        // A lead that couples to no island at all (only a lead–lead
        // capacitor) has zero response column; its dependents must be
        // exactly the junctions touching it — here, none.
        let mut b = CircuitBuilder::new();
        let stub = b.add_lead(0.0);
        let isl = b.add_island();
        b.add_junction(NodeId::GROUND, isl, 1e6, 1e-18).unwrap();
        b.add_capacitor(stub, NodeId::GROUND, 1e-18).unwrap();
        let c = b.build().unwrap();
        let stub_idx = c.lead_index(stub).unwrap();
        assert!(c.lead_dependents(stub_idx).is_empty());
    }

    #[test]
    fn two_island_coupling_symmetric() {
        let mut b = CircuitBuilder::new();
        let i1 = b.add_island();
        let i2 = b.add_island();
        b.add_junction(NodeId::GROUND, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 1e6, 2e-18).unwrap();
        b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        assert!(c.capacitance_matrix().is_symmetric(1e-30));
        // C⁻¹ entries are O(1e17); allow machine-level asymmetry.
        let scale = c.cinv_between(i1, i1).abs();
        assert!(c.inverse_capacitance().is_symmetric(1e-9 * scale));
        assert_eq!(c.capacitance_matrix().get(0, 1), -2e-18);
        assert!((c.cinv_between(i1, i2) - c.cinv_between(i2, i1)).abs() < 1e-9 * scale);
        assert_eq!(c.cinv_between(NodeId::GROUND, i1), 0.0);
    }
}
