//! Tunnel event descriptions and the flat rate-table layout shared by
//! the solvers and the event selector.

use crate::circuit::{Circuit, JunctionId, NodeId};

/// A concrete tunneling event chosen by the event solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A single electron (normal state) or quasi-particle
    /// (superconducting state) tunnels through `junction`.
    Tunnel {
        /// The junction tunneled through.
        junction: JunctionId,
        /// Node the electron leaves.
        from: NodeId,
        /// Node the electron arrives at.
        to: NodeId,
    },
    /// An inelastic cotunneling event through two junctions at once:
    /// one electron moves from `from` to `to`, with `via` only virtually
    /// occupied.
    Cotunnel {
        /// First junction of the path (touching `from`).
        junction_a: JunctionId,
        /// Second junction of the path (touching `to`).
        junction_b: JunctionId,
        /// Node the electron leaves.
        from: NodeId,
        /// Intermediate island (charge unchanged).
        via: NodeId,
        /// Node the electron arrives at.
        to: NodeId,
    },
    /// A Cooper pair (2e) tunnels through `junction`.
    CooperPair {
        /// The junction tunneled through.
        junction: JunctionId,
        /// Node the pair leaves.
        from: NodeId,
        /// Node the pair arrives at.
        to: NodeId,
    },
}

impl Event {
    /// Number of electrons transferred (1 for single/quasi-particle and
    /// cotunneling, 2 for a Cooper pair).
    pub fn electron_count(&self) -> i64 {
        match self {
            Event::CooperPair { .. } => 2,
            _ => 1,
        }
    }

    /// Source and destination nodes of the net charge transfer.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            Event::Tunnel { from, to, .. }
            | Event::Cotunnel { from, to, .. }
            | Event::CooperPair { from, to, .. } => (from, to),
        }
    }
}

/// A directed cotunneling path `from —j_a→ via —j_b→ to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CotunnelPath {
    /// Junction between `from` and `via`.
    pub junction_a: JunctionId,
    /// Junction between `via` and `to`.
    pub junction_b: JunctionId,
    /// Start node.
    pub from: NodeId,
    /// Intermediate island.
    pub via: NodeId,
    /// End node.
    pub to: NodeId,
}

/// Enumerates every directed second-order cotunneling path in the
/// circuit: for each island, each ordered pair of distinct incident
/// junctions, in both directions.
///
/// # Example
///
/// ```
/// use semsim_core::circuit::CircuitBuilder;
/// use semsim_core::events::enumerate_cotunnel_paths;
///
/// # fn main() -> Result<(), semsim_core::CoreError> {
/// let mut b = CircuitBuilder::new();
/// let s = b.add_lead(1e-3);
/// let i = b.add_island();
/// b.add_junction(s, i, 1e6, 1e-18)?;
/// b.add_junction(i, semsim_core::circuit::NodeId::GROUND, 1e6, 1e-18)?;
/// let c = b.build()?;
/// // One island with two junctions → 2 directed paths.
/// assert_eq!(enumerate_cotunnel_paths(&c).len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_cotunnel_paths(circuit: &Circuit) -> Vec<CotunnelPath> {
    let mut paths = Vec::new();
    for island in 0..circuit.num_islands() {
        let via = circuit.island_node(island);
        let incident = circuit.junctions_at(via);
        for (ai, &ja) in incident.iter().enumerate() {
            for &jb in incident.iter().skip(ai + 1) {
                let a = other_end(circuit, ja, via);
                let b = other_end(circuit, jb, via);
                if a == b {
                    // Two parallel junctions between the same pair of
                    // nodes: a "cotunneling" event would be a no-op.
                    continue;
                }
                paths.push(CotunnelPath {
                    junction_a: ja,
                    junction_b: jb,
                    from: a,
                    via,
                    to: b,
                });
                paths.push(CotunnelPath {
                    junction_a: jb,
                    junction_b: ja,
                    from: b,
                    via,
                    to: a,
                });
            }
        }
    }
    paths
}

fn other_end(circuit: &Circuit, j: JunctionId, node: NodeId) -> NodeId {
    let junction = circuit.junction(j);
    if junction.node_a == node {
        junction.node_b
    } else {
        junction.node_a
    }
}

/// Layout of the flat rate table used by the Fenwick tree.
///
/// Slots, in order:
/// * `2·J` single-electron / quasi-particle slots — junction `j`
///   direction `a→b` at `2j`, `b→a` at `2j+1`;
/// * `P` cotunneling slots (one per directed path), if enabled;
/// * `2·J` Cooper-pair slots, if superconducting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLayout {
    /// Number of junctions.
    pub junctions: usize,
    /// Number of directed cotunneling paths (0 when disabled).
    pub cotunnel_paths: usize,
    /// Whether Cooper-pair slots exist.
    pub cooper_pairs: bool,
}

impl RateLayout {
    /// Total number of rate slots.
    pub fn len(&self) -> usize {
        2 * self.junctions
            + self.cotunnel_paths
            + if self.cooper_pairs {
                2 * self.junctions
            } else {
                0
            }
    }

    /// `true` if the layout has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot of a single-electron/quasi-particle rate.
    /// `forward` means the electron moves `node_a → node_b`.
    #[inline]
    pub fn tunnel_slot(&self, j: JunctionId, forward: bool) -> usize {
        2 * j.index() + usize::from(!forward)
    }

    /// Slot of a cotunneling path rate.
    #[inline]
    pub fn cotunnel_slot(&self, path: usize) -> usize {
        debug_assert!(path < self.cotunnel_paths);
        2 * self.junctions + path
    }

    /// Slot of a Cooper-pair rate.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the layout has no Cooper-pair slots.
    #[inline]
    pub fn cooper_slot(&self, j: JunctionId, forward: bool) -> usize {
        debug_assert!(self.cooper_pairs);
        2 * self.junctions + self.cotunnel_paths + 2 * j.index() + usize::from(!forward)
    }

    /// Decodes a slot index back into an event category.
    pub fn decode(&self, slot: usize) -> SlotKind {
        let tunnel_end = 2 * self.junctions;
        let cot_end = tunnel_end + self.cotunnel_paths;
        if slot < tunnel_end {
            SlotKind::Tunnel {
                junction: JunctionId(slot / 2),
                forward: slot.is_multiple_of(2),
            }
        } else if slot < cot_end {
            SlotKind::Cotunnel {
                path: slot - tunnel_end,
            }
        } else {
            let rel = slot - cot_end;
            SlotKind::CooperPair {
                junction: JunctionId(rel / 2),
                forward: rel.is_multiple_of(2),
            }
        }
    }
}

/// Decoded identity of a rate-table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Single-electron or quasi-particle tunneling.
    Tunnel {
        /// Junction of the slot.
        junction: JunctionId,
        /// `true` for the `node_a → node_b` direction.
        forward: bool,
    },
    /// Cotunneling path by index.
    Cotunnel {
        /// Index into the enumerated path list.
        path: usize,
    },
    /// Cooper-pair tunneling.
    CooperPair {
        /// Junction of the slot.
        junction: JunctionId,
        /// `true` for the `node_a → node_b` direction.
        forward: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    #[test]
    fn layout_roundtrip() {
        let layout = RateLayout {
            junctions: 3,
            cotunnel_paths: 4,
            cooper_pairs: true,
        };
        assert_eq!(layout.len(), 6 + 4 + 6);
        for slot in 0..layout.len() {
            let kind = layout.decode(slot);
            let back = match kind {
                SlotKind::Tunnel { junction, forward } => layout.tunnel_slot(junction, forward),
                SlotKind::Cotunnel { path } => layout.cotunnel_slot(path),
                SlotKind::CooperPair { junction, forward } => layout.cooper_slot(junction, forward),
            };
            assert_eq!(back, slot);
        }
    }

    #[test]
    fn layout_without_extras() {
        let layout = RateLayout {
            junctions: 2,
            cotunnel_paths: 0,
            cooper_pairs: false,
        };
        assert_eq!(layout.len(), 4);
        assert!(!layout.is_empty());
        assert!(matches!(
            layout.decode(3),
            SlotKind::Tunnel {
                junction: JunctionId(1),
                forward: false
            }
        ));
    }

    #[test]
    fn cotunnel_paths_of_double_junction_island() {
        // Island with 3 junctions → 3 unordered pairs → 6 directed paths.
        let mut b = CircuitBuilder::new();
        let l1 = b.add_lead(0.0);
        let l2 = b.add_lead(0.0);
        let i = b.add_island();
        b.add_junction(l1, i, 1e6, 1e-18).unwrap();
        b.add_junction(l2, i, 1e6, 1e-18).unwrap();
        b.add_junction(i, NodeId::GROUND, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        assert_eq!(enumerate_cotunnel_paths(&c).len(), 6);
    }

    #[test]
    fn parallel_junctions_are_skipped() {
        let mut b = CircuitBuilder::new();
        let l = b.add_lead(0.0);
        let i = b.add_island();
        b.add_junction(l, i, 1e6, 1e-18).unwrap();
        b.add_junction(l, i, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        assert!(enumerate_cotunnel_paths(&c).is_empty());
    }

    #[test]
    fn chain_paths_cross_islands() {
        // lead—i1—i2—ground: island i1 gives paths lead↔i2, island i2
        // gives paths i1↔ground → 4 directed paths total.
        let mut b = CircuitBuilder::new();
        let l = b.add_lead(1e-3);
        let i1 = b.add_island();
        let i2 = b.add_island();
        b.add_junction(l, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 1e6, 1e-18).unwrap();
        b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap();
        let c = b.build().unwrap();
        let paths = enumerate_cotunnel_paths(&c);
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().all(|p| p.from != p.to));
    }

    #[test]
    fn event_accessors() {
        let e = Event::CooperPair {
            junction: JunctionId(0),
            from: NodeId(1),
            to: NodeId(2),
        };
        assert_eq!(e.electron_count(), 2);
        assert_eq!(e.endpoints(), (NodeId(1), NodeId(2)));
        let t = Event::Tunnel {
            junction: JunctionId(0),
            from: NodeId(2),
            to: NodeId(1),
        };
        assert_eq!(t.electron_count(), 1);
    }
}
