//! Resilient batch execution: per-point retry with graceful
//! degradation, partial-result salvage, and journaled resume on top of
//! the deterministic work queue in [`crate::par`].
//!
//! The plain parallel drivers are all-or-nothing: one
//! [`CoreError::NumericalFault`] (or one panic) discards every point a
//! long sweep already computed. The batch drivers here
//! ([`batch_sweep`], [`batch_ensemble`]) instead give each point its
//! own small supervisor:
//!
//! 1. **Attempt ladder.** A point runs as attempt 1 with exactly the
//!    seed the plain drivers use (`split_seed(master, task)`), so a
//!    fault-free batch is bit-identical to [`crate::par::par_sweep`] /
//!    [`crate::engine::sweep`]. On a *retryable* fault (numerical
//!    fault or panic) the point is retried up to
//!    [`RetryPolicy::max_retries`] times, each attempt derived purely
//!    from `(task, attempt)`:
//!    - a panic on the first attempt reruns with **identical** seed and
//!      parameters ([`RecoveryAction::RerunSame`] — the
//!      transient-crash assumption), so a once-panicking point recovers
//!      to the exact clean-run value;
//!    - otherwise the point is **reseeded**
//!      (`split_seed(master, task · attempt)`) with the adaptive
//!      threshold θ tightened by [`RetryPolicy::tighten_factor`] per
//!      retry ([`RecoveryAction::ReseedTightened`]);
//!    - the final attempt may drop to the non-adaptive reference solver
//!      ([`RecoveryAction::SolverFallback`]) when
//!      [`RetryPolicy::solver_fallback`] is set.
//!
//!    Non-retryable errors (configuration mistakes) fault the point
//!    immediately — retrying cannot fix a wrong circuit.
//! 2. **Salvage.** Nothing aborts the batch: every point reports
//!    [`PointStatus::Ok`], [`PointStatus::Recovered`],
//!    [`PointStatus::Faulted`], or [`PointStatus::Skipped`] in a
//!    [`BatchReport`], with per-attempt logs, merged
//!    [`HealthReport`]s and [`OutcomeCounts`]. The only errors that
//!    still abort are the batch-level ones retry cannot help
//!    (opening the journal: I/O, mismatch). A failed journal *append*
//!    mid-batch (disk full, short write) is recorded on its point
//!    ([`PointReport::journal_error`]) and the value salvaged in
//!    memory — the sweep finishes.
//! 3. **Journal.** With [`BatchOpts::journal`] set, completed points
//!    are appended to a crash-safe [`crate::journal`] file as they
//!    finish; [`BatchOpts::resume`] restores them as
//!    [`PointStatus::Skipped`] and re-runs only the rest,
//!    reproducing the uninterrupted run bit-for-bit.
//!
//! Everything stays deterministic: attempt seeds, θ-scales, and solver
//! fallbacks are pure functions of `(task, attempt)` and the fault
//! sequence, which is itself deterministic — so recovered batches are
//! thread-count-invariant too. Recovery never changes the answer, only
//! whether you get one.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::checkpoint::{fnv1a64, Writer};
use crate::circuit::{Circuit, JunctionId};
use crate::engine::{run_point_seeded, RunLength, SimConfig, Simulation, SolverSpec, SweepPoint};
use crate::health::{HealthReport, RunOutcome, Supervisor};
use crate::journal::{Journal, JournalEntry, JournalHeader, JournalItem};
use crate::par::{panic_message, run_tasks, OutcomeCounts, ParOpts};
use crate::rng::split_seed;
use crate::CoreError;

/// How hard a batch fights for each point before giving up on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables recovery).
    pub max_retries: u32,
    /// Multiplier applied to the adaptive threshold θ per
    /// [`RecoveryAction::ReseedTightened`] retry (tighter testing →
    /// more recalculation → less room for numerical drift).
    pub tighten_factor: f64,
    /// Let the final attempt fall back to the non-adaptive reference
    /// solver.
    pub solver_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            tighten_factor: 0.5,
            solver_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// Total attempts a point may consume (initial + retries).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }
}

/// Cooperative cancellation handle for a batch. Clones share one flag;
/// once [`CancelToken::cancel`] fires, workers finish (and journal) the
/// point they are on, then skip every remaining task as
/// [`PointStatus::Cancelled`] — the batch returns a salvageable partial
/// [`BatchReport`] instead of tearing down.
///
/// Cancellation never changes a *computed* value: points finished
/// before the flag flipped are bit-identical to the uninterrupted run,
/// so a cancelled-then-resumed batch still satisfies the determinism
/// contract.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the shared flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Token equality is identity: two tokens are equal when they share
/// the same flag (so `BatchOpts` can stay `PartialEq`).
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Options of one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOpts {
    /// Work-queue knobs (thread count etc.); cannot change results.
    pub par: ParOpts,
    /// Per-point retry/degradation policy.
    pub retry: RetryPolicy,
    /// Append completed points to this journal file.
    pub journal: Option<PathBuf>,
    /// Restore already-journaled points instead of recomputing them
    /// (no-op when the file does not exist yet).
    pub resume: bool,
    /// Replace the configuration's run supervisor for every point
    /// (wall-clock/event budgets). Applied *before* the journal
    /// fingerprint is computed, so a journal written under one budget
    /// is refused under another.
    pub supervisor: Option<Supervisor>,
    /// Cooperative cancellation: when the token fires, remaining points
    /// finish as [`PointStatus::Cancelled`] and the partial report is
    /// salvaged.
    pub cancel: Option<CancelToken>,
    /// Scripted faults for the batch's attempts (testing only).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<BatchFaultPlan>,
}

/// What kind of recovery step an attempt is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Attempt 1: the plain driver's exact seed and parameters.
    Initial,
    /// Rerun with identical seed and parameters after a panic on the
    /// initial attempt (transient-crash assumption — on success the
    /// value is bit-identical to the clean run).
    RerunSame,
    /// New seed (`split_seed(master, task · attempt)`) and a tightened
    /// adaptive threshold.
    ReseedTightened,
    /// New seed and the non-adaptive reference solver.
    SolverFallback,
}

/// Fully resolved parameters of one attempt — a pure function of
/// `(task, attempt, prior fault kinds)`, never of thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptSpec {
    /// Task (point) index within the batch.
    pub task: usize,
    /// 1-based attempt number.
    pub attempt: u32,
    /// PRNG seed of this attempt.
    pub seed: u64,
    /// Recovery step this attempt embodies.
    pub action: RecoveryAction,
    /// Cumulative multiplier on the adaptive threshold θ.
    pub theta_scale: f64,
    /// Whether this attempt uses the non-adaptive fallback solver.
    pub fallback: bool,
}

/// One line of a point's attempt log.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Seed the attempt ran with.
    pub seed: u64,
    /// Recovery step the attempt embodied.
    pub action: RecoveryAction,
    /// The fault that ended the attempt; `None` for the successful one.
    pub fault: Option<String>,
}

/// The fault that terminally ended a point.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskFault {
    /// An engine error.
    Error(CoreError),
    /// A caught panic.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for TaskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskFault::Error(e) => write!(f, "{e}"),
            TaskFault::Panic { message } => write!(f, "panic: {message}"),
        }
    }
}

impl TaskFault {
    /// Whether the attempt ladder may try again after this fault:
    /// numerical faults and panics are treated as transient; anything
    /// else (configuration errors, journal failures) is not fixable by
    /// rerunning.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TaskFault::Panic { .. } | TaskFault::Error(CoreError::NumericalFault { .. })
        )
    }
}

/// How one point of a batch finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// First attempt succeeded — bit-identical to the plain drivers.
    Ok,
    /// A retry succeeded after `attempts` total attempts.
    Recovered {
        /// Total attempts consumed (≥ 2).
        attempts: u32,
    },
    /// Every allowed attempt failed; the point carries no value (but
    /// its attempt log and terminal fault are preserved).
    Faulted,
    /// Restored from the journal without recomputation.
    Skipped,
    /// Never ran: a [`CancelToken`] fired before this point started.
    /// Carries no value; a journaled resume recomputes it.
    Cancelled,
}

/// Everything known about one point of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport<T> {
    /// Task (point) index within the batch.
    pub task: usize,
    /// How the point finished.
    pub status: PointStatus,
    /// Per-attempt log (for `Skipped` points: the log restored from
    /// the journal).
    pub attempts: Vec<AttemptRecord>,
    /// The point value; `None` only for [`PointStatus::Faulted`].
    pub item: Option<T>,
    /// Terminal fault of a [`PointStatus::Faulted`] point.
    pub fault: Option<TaskFault>,
    /// A failed journal append for this point (disk full, short
    /// write). The value is still salvaged in memory — only its
    /// durability was lost; a later `--resume` recomputes the point.
    pub journal_error: Option<String>,
}

/// Tally of [`PointStatus`]es across a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCounts {
    /// Points whose first attempt succeeded.
    pub ok: usize,
    /// Points salvaged by the retry ladder.
    pub recovered: usize,
    /// Points that exhausted every attempt.
    pub faulted: usize,
    /// Points restored from the journal.
    pub skipped: usize,
    /// Points that never ran because the batch was cancelled.
    pub cancelled: usize,
}

impl BatchCounts {
    fn note(&mut self, status: PointStatus) {
        match status {
            PointStatus::Ok => self.ok += 1,
            PointStatus::Recovered { .. } => self.recovered += 1,
            PointStatus::Faulted => self.faulted += 1,
            PointStatus::Skipped => self.skipped += 1,
            PointStatus::Cancelled => self.cancelled += 1,
        }
    }

    /// Total points tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.ok + self.recovered + self.faulted + self.skipped + self.cancelled
    }
}

/// A value the batch drivers know how to tally — both journalable
/// payloads carry the [`RunOutcome`] of the run that produced them.
pub trait BatchItem {
    /// Why the run that produced this value stopped.
    fn outcome(&self) -> RunOutcome;
}

impl BatchItem for SweepPoint {
    fn outcome(&self) -> RunOutcome {
        self.outcome
    }
}

/// Partial-result report of a batch: every point is accounted for,
/// whether it succeeded, recovered, faulted, or was restored from a
/// journal. All reductions fold in task order, so the report is
/// identical for every thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport<T> {
    /// Per-point reports, indexed by task.
    pub points: Vec<PointReport<T>>,
    /// Status tally.
    pub counts: BatchCounts,
    /// [`RunOutcome`] tally over the points that carry a value.
    pub outcomes: OutcomeCounts,
    /// Health reports of the successful attempts, folded in task order
    /// (journal-restored points contribute nothing — their health was
    /// merged by the run that computed them).
    pub health: HealthReport,
    /// Total retry attempts consumed across all points.
    pub retries: u64,
    /// Corrupt journal-tail bytes discarded on resume (0 otherwise).
    pub discarded_tail_bytes: usize,
    /// Which check the discarded tail failed (`None` when no tail was
    /// discarded).
    pub discarded_tail_reason: Option<String>,
}

impl<T> BatchReport<T> {
    /// Point values in task order, `None` where the point faulted.
    pub fn items(&self) -> impl Iterator<Item = Option<&T>> {
        self.points.iter().map(|p| p.item.as_ref())
    }

    /// Points whose journal append failed (their values were salvaged
    /// in memory but are not durable — a `--resume` recomputes them).
    #[must_use]
    pub fn journal_write_failures(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.journal_error.is_some())
            .count()
    }

    /// The first (lowest-task) journal append failure, if any.
    #[must_use]
    pub fn first_journal_write_error(&self) -> Option<&str> {
        self.points.iter().find_map(|p| p.journal_error.as_deref())
    }

    /// `true` when no point faulted or was cancelled — every value is
    /// present.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.counts.faulted == 0 && self.counts.cancelled == 0
    }

    /// The lowest-index faulted point, if any.
    #[must_use]
    pub fn first_fault(&self) -> Option<&PointReport<T>> {
        self.points
            .iter()
            .find(|p| matches!(p.status, PointStatus::Faulted))
    }

    /// All point values in task order, or `None` if any point faulted.
    #[must_use]
    pub fn values(&self) -> Option<Vec<T>>
    where
        T: Clone,
    {
        self.points.iter().map(|p| p.item.clone()).collect()
    }
}

/// Applies an attempt's seed, θ-scale, and solver fallback to a
/// configuration. Attempt 1 leaves everything but the seed untouched,
/// and the seed it applies is exactly the plain drivers' split seed.
fn attempt_config(config: &SimConfig, spec: &AttemptSpec) -> SimConfig {
    let mut cfg = config.clone().with_seed(spec.seed);
    if spec.fallback {
        cfg.solver = SolverSpec::NonAdaptive;
    } else if spec.theta_scale != 1.0 {
        if let SolverSpec::Adaptive {
            threshold,
            refresh_interval,
        } = cfg.solver
        {
            cfg.solver = SolverSpec::Adaptive {
                threshold: threshold * spec.theta_scale,
                refresh_interval,
            };
        }
    }
    cfg
}

/// Applies [`BatchOpts::supervisor`] (if any) to the configuration the
/// whole batch runs — and fingerprints — under.
fn effective_config(config: &SimConfig, opts: &BatchOpts) -> SimConfig {
    let mut cfg = config.clone();
    if let Some(supervisor) = opts.supervisor {
        cfg.supervisor = supervisor;
    }
    cfg
}

/// The first attempt of `task`: the plain drivers' exact parameters.
fn initial_spec(master_seed: u64, task: usize) -> AttemptSpec {
    AttemptSpec {
        task,
        attempt: 1,
        seed: split_seed(master_seed, task as u64),
        action: RecoveryAction::Initial,
        theta_scale: 1.0,
        fallback: false,
    }
}

/// The attempt after `spec` failed with `fault`. Pure in
/// `(master_seed, spec, fault kind, policy)`.
fn next_spec(
    master_seed: u64,
    spec: &AttemptSpec,
    fault: &TaskFault,
    policy: &RetryPolicy,
) -> AttemptSpec {
    let attempt = spec.attempt + 1;
    // A panic on the untouched initial attempt is assumed transient:
    // rerun bit-identically rather than perturbing the point.
    if matches!(fault, TaskFault::Panic { .. }) && spec.action == RecoveryAction::Initial {
        return AttemptSpec {
            attempt,
            action: RecoveryAction::RerunSame,
            ..*spec
        };
    }
    let seed = split_seed(
        master_seed,
        (spec.task as u64).wrapping_mul(u64::from(attempt)),
    );
    if attempt == policy.max_attempts() && policy.solver_fallback {
        AttemptSpec {
            task: spec.task,
            attempt,
            seed,
            action: RecoveryAction::SolverFallback,
            theta_scale: spec.theta_scale,
            fallback: true,
        }
    } else {
        AttemptSpec {
            task: spec.task,
            attempt,
            seed,
            action: RecoveryAction::ReseedTightened,
            theta_scale: spec.theta_scale * policy.tighten_factor,
            fallback: false,
        }
    }
}

/// Result of one task's full attempt ladder.
struct TaskRun<T> {
    status: PointStatus,
    attempts: Vec<AttemptRecord>,
    item: Option<T>,
    health: HealthReport,
    fault: Option<TaskFault>,
}

/// Runs one task through the attempt ladder, catching panics at the
/// attempt boundary so a retry can follow one.
fn run_with_retry<T, F>(
    task: usize,
    master_seed: u64,
    policy: &RetryPolicy,
    run_attempt: &F,
) -> TaskRun<T>
where
    F: Fn(&AttemptSpec) -> Result<(T, HealthReport), CoreError> + Sync,
{
    let mut spec = initial_spec(master_seed, task);
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    loop {
        let result = match catch_unwind(AssertUnwindSafe(|| run_attempt(&spec))) {
            Ok(Ok(success)) => Ok(success),
            Ok(Err(e)) => Err(TaskFault::Error(e)),
            Err(payload) => Err(TaskFault::Panic {
                message: panic_message(payload.as_ref()),
            }),
        };
        match result {
            Ok((item, health)) => {
                attempts.push(AttemptRecord {
                    attempt: spec.attempt,
                    seed: spec.seed,
                    action: spec.action,
                    fault: None,
                });
                let status = if spec.attempt == 1 {
                    PointStatus::Ok
                } else {
                    PointStatus::Recovered {
                        attempts: spec.attempt,
                    }
                };
                return TaskRun {
                    status,
                    attempts,
                    item: Some(item),
                    health,
                    fault: None,
                };
            }
            Err(fault) => {
                attempts.push(AttemptRecord {
                    attempt: spec.attempt,
                    seed: spec.seed,
                    action: spec.action,
                    fault: Some(fault.to_string()),
                });
                if !fault.is_retryable() || spec.attempt >= policy.max_attempts() {
                    return TaskRun {
                        status: PointStatus::Faulted,
                        attempts,
                        item: None,
                        health: HealthReport::empty(),
                        fault: Some(fault),
                    };
                }
                spec = next_spec(master_seed, &spec, &fault, policy);
            }
        }
    }
}

/// The generic batch driver: fans the attempt ladders out over the
/// deterministic work queue, journals completions, folds the report in
/// task order.
#[allow(clippy::too_many_arguments)]
fn run_batch<T, F>(
    tasks: usize,
    master_seed: u64,
    policy: &RetryPolicy,
    par: ParOpts,
    journal: Option<&Journal<T>>,
    restored: &HashMap<usize, JournalEntry<T>>,
    cancel: Option<&CancelToken>,
    run_attempt: F,
) -> Result<BatchReport<T>, CoreError>
where
    T: JournalItem + BatchItem + Clone + Send + Sync,
    F: Fn(&AttemptSpec) -> Result<(T, HealthReport), CoreError> + Sync,
{
    let journal_errors: Mutex<HashMap<usize, String>> = Mutex::new(HashMap::new());
    let runs = run_tasks(tasks, par, |i| {
        // Journal-restored points are salvaged even under cancellation
        // — they cost nothing and keep the partial report maximal.
        if let Some(entry) = restored.get(&i) {
            return Ok(TaskRun {
                status: PointStatus::Skipped,
                attempts: entry.attempts.clone(),
                item: Some(entry.item.clone()),
                health: HealthReport::empty(),
                fault: None,
            });
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Ok(TaskRun {
                status: PointStatus::Cancelled,
                attempts: Vec::new(),
                item: None,
                health: HealthReport::empty(),
                fault: None,
            });
        }
        let run = run_with_retry(i, master_seed, policy, &run_attempt);
        if let (Some(journal), Some(item)) = (journal, &run.item) {
            // A failed append (ENOSPC, short write) never aborts the
            // batch: the computed value is salvaged in memory and the
            // failure recorded on the point. The journal refuses all
            // further appends itself (a record written after a torn
            // one would be unreachable on resume), so later points
            // collect the same structured failure.
            if let Err(e) = journal.append(&JournalEntry {
                task: i,
                status: run.status,
                attempts: run.attempts.clone(),
                item: item.clone(),
            }) {
                journal_errors
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(i, e.to_string());
            }
        }
        Ok(run)
    })?;
    let mut journal_errors = journal_errors
        .lock()
        .unwrap_or_else(PoisonError::into_inner);

    let mut counts = BatchCounts::default();
    let mut outcomes = OutcomeCounts::default();
    let mut health = HealthReport::empty();
    let mut retries = 0u64;
    let mut points = Vec::with_capacity(runs.len());
    for (task, run) in runs.into_iter().enumerate() {
        counts.note(run.status);
        retries += run.attempts.len().saturating_sub(1) as u64;
        if let Some(item) = &run.item {
            outcomes.note(&item.outcome());
        }
        health.absorb(&run.health);
        points.push(PointReport {
            task,
            status: run.status,
            attempts: run.attempts,
            item: run.item,
            fault: run.fault,
            journal_error: journal_errors.remove(&task),
        });
    }
    Ok(BatchReport {
        points,
        counts,
        outcomes,
        health,
        retries,
        discarded_tail_bytes: journal.map_or(0, Journal::discarded_tail_bytes),
        discarded_tail_reason: journal
            .and_then(|j| j.discarded_tail_reason().map(ToOwned::to_owned)),
    })
}

/// An opened (optional) journal plus its restored entries by task.
type OpenedJournal<T> = (Option<Journal<T>>, HashMap<usize, JournalEntry<T>>);

/// Opens the journal named by `opts` (if any) and indexes its restored
/// entries by task, last write winning.
fn open_journal<T: JournalItem>(
    opts: &BatchOpts,
    header: &JournalHeader,
) -> Result<OpenedJournal<T>, CoreError> {
    let Some(path) = &opts.journal else {
        return Ok((None, HashMap::new()));
    };
    let mut journal = if opts.resume {
        Journal::resume(path, header)?
    } else {
        Journal::create(path, header)?
    };
    let mut restored = HashMap::new();
    for entry in journal.take_restored() {
        restored.insert(entry.task, entry);
    }
    Ok((Some(journal), restored))
}

fn fingerprint_config(w: &mut Writer, config: &SimConfig) {
    w.f64(config.temperature);
    match config.solver {
        SolverSpec::NonAdaptive => {
            w.u32(0);
            w.f64(0.0);
            w.u64(0);
        }
        SolverSpec::Adaptive {
            threshold,
            refresh_interval,
        } => {
            w.u32(1);
            w.f64(threshold);
            w.u64(refresh_interval);
        }
        SolverSpec::AdaptiveDense {
            threshold,
            refresh_interval,
        } => {
            w.u32(2);
            w.f64(threshold);
            w.u64(refresh_interval);
        }
    }
    w.u32(u32::from(config.cotunneling));
    match &config.superconducting {
        None => w.u32(0),
        Some(p) => {
            w.u32(1);
            w.f64(p.gap0);
            w.f64(p.tc);
            match p.broadening {
                None => w.u32(0),
                Some(b) => {
                    w.u32(1);
                    w.f64(b);
                }
            }
        }
    }
    match config.audit_interval {
        None => w.u32(0),
        Some(n) => {
            w.u32(1);
            w.u64(n);
        }
    }
    w.f64(config.drift_tolerance);
    match config.supervisor.wall_clock_budget {
        None => w.u32(0),
        Some(b) => {
            w.u32(1);
            w.f64(b);
        }
    }
    match config.supervisor.max_events {
        None => w.u32(0),
        Some(n) => {
            w.u32(1);
            w.u64(n);
        }
    }
    w.u32(u32::from(config.supervisor.blockade_is_outcome));
}

fn fingerprint_policy(w: &mut Writer, policy: &RetryPolicy) {
    w.u32(policy.max_retries);
    w.f64(policy.tighten_factor);
    w.u32(u32::from(policy.solver_fallback));
}

fn sweep_fingerprint(
    config: &SimConfig,
    junction: JunctionId,
    controls: &[f64],
    warmup: u64,
    events: u64,
    policy: &RetryPolicy,
) -> u64 {
    let mut w = Writer::new();
    fingerprint_config(&mut w, config);
    w.u64(junction.index() as u64);
    w.u64(warmup);
    w.u64(events);
    w.u64(controls.len() as u64);
    for &c in controls {
        w.f64(c);
    }
    fingerprint_policy(&mut w, policy);
    fnv1a64(&w.buf)
}

/// Resilient I–V sweep: the computation of
/// [`crate::par::par_sweep`] with per-point retry, salvage, and
/// optional journaling (see the module docs for the recovery ladder).
///
/// `setup(sim, control, spec)` applies the control value; the
/// [`AttemptSpec`] identifies which attempt of which point is being set
/// up (fault-injection tests arm their plans through it; ordinary
/// callers ignore it).
///
/// Fault-free behavior is bit-identical to [`crate::par::par_sweep`]
/// and [`crate::engine::sweep`] at any thread count.
///
/// # Errors
///
/// Per-point faults do **not** error — they surface as
/// [`PointStatus::Faulted`] in the report. Errors are batch-level
/// only: invalid configuration surfacing on every attempt path,
/// journal I/O ([`CoreError::JournalIo`]), a journal from a different
/// batch ([`CoreError::JournalMismatch`]), or an unreadable journal
/// header ([`CoreError::JournalCorrupt`]).
#[allow(clippy::too_many_arguments)]
pub fn batch_sweep<F>(
    circuit: &Circuit,
    config: &SimConfig,
    junction: JunctionId,
    controls: &[f64],
    warmup: u64,
    events: u64,
    opts: &BatchOpts,
    setup: F,
) -> Result<BatchReport<SweepPoint>, CoreError>
where
    F: Fn(&mut Simulation<'_>, f64, &AttemptSpec) -> Result<(), CoreError> + Sync,
{
    let config = &effective_config(config, opts);
    let header = JournalHeader {
        master_seed: config.seed,
        tasks: controls.len() as u64,
        fingerprint: sweep_fingerprint(config, junction, controls, warmup, events, &opts.retry),
        kind: SweepPoint::KIND,
    };
    let (journal, restored) = open_journal::<SweepPoint>(opts, &header)?;
    #[cfg(feature = "fault-inject")]
    if let (Some(plan), Some(j)) = (&opts.fault_plan, journal.as_ref()) {
        plan.arm_journal(j);
    }
    run_batch(
        controls.len(),
        config.seed,
        &opts.retry,
        opts.par,
        journal.as_ref(),
        &restored,
        opts.cancel.as_ref(),
        |spec| {
            let cfg = attempt_config(config, spec);
            let mut apply = |sim: &mut Simulation<'_>, v: f64| {
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &opts.fault_plan {
                    plan.arm(sim, spec);
                }
                setup(sim, v, spec)
            };
            run_point_seeded(
                circuit,
                cfg,
                junction,
                controls[spec.task],
                warmup,
                events,
                &mut apply,
            )
        },
    )
}

/// The journalable summary of one ensemble replica. The full
/// [`crate::engine::Record`] (probe traces, per-junction counts) stays
/// in memory only for the plain [`crate::par::Ensemble`] driver; the
/// batch layer keeps the part every consumer of ensemble statistics
/// uses, small enough to journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSummary {
    /// Time-averaged current (A) through the recorded junction.
    pub current: f64,
    /// Simulated duration (s).
    pub duration: f64,
    /// Tunnel events measured (after warmup).
    pub events: u64,
    /// Why the replica stopped.
    pub outcome: RunOutcome,
}

impl JournalItem for ReplicaSummary {
    const KIND: u32 = 2;

    fn encode(&self, w: &mut Writer) {
        w.f64(self.current);
        w.f64(self.duration);
        w.u64(self.events);
        crate::journal::encode_outcome(w, &self.outcome);
    }

    fn decode(r: &mut crate::checkpoint::Reader<'_>) -> Result<Self, CoreError> {
        Ok(ReplicaSummary {
            current: r.f64("replica current")?,
            duration: r.f64("replica duration")?,
            events: r.u64("replica events")?,
            outcome: crate::journal::decode_outcome(r)?,
        })
    }
}

impl BatchItem for ReplicaSummary {
    fn outcome(&self) -> RunOutcome {
        self.outcome
    }
}

/// Replica statistics of a batch ensemble, folded in replica order
/// over the points that carry a value (faulted replicas are excluded —
/// and reported in the [`BatchCounts`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleStats {
    /// Mean time-averaged current (A).
    pub mean_current: f64,
    /// Population standard deviation of replica currents (A).
    pub std_current: f64,
    /// Total tunnel events across replicas.
    pub total_events: u64,
    /// Replicas contributing to the statistics.
    pub measured: usize,
}

impl EnsembleStats {
    /// Standard error of the ensemble mean current: `σ/√n` over the
    /// measured replicas. This is the statistical error bar a
    /// cross-engine comparison of [`EnsembleStats::mean_current`]
    /// should tolerate (`semsim validate` builds its per-point
    /// tolerances from it); 0 when nothing was measured.
    #[must_use]
    pub fn sem_current(&self) -> f64 {
        if self.measured == 0 {
            0.0
        } else {
            self.std_current / (self.measured as f64).sqrt()
        }
    }
}

impl BatchReport<ReplicaSummary> {
    /// Computes replica statistics — identical to
    /// [`crate::par::EnsembleReport`]'s when no replica faulted.
    #[must_use]
    pub fn ensemble_stats(&self) -> EnsembleStats {
        let currents: Vec<f64> = self
            .points
            .iter()
            .filter_map(|p| p.item.as_ref().map(|s| s.current))
            .collect();
        let total_events = self
            .points
            .iter()
            .filter_map(|p| p.item.as_ref().map(|s| s.events))
            .sum();
        let n = currents.len().max(1) as f64;
        let mean = currents.iter().sum::<f64>() / n;
        let var = currents
            .iter()
            .map(|c| (c - mean) * (c - mean))
            .sum::<f64>()
            / n;
        EnsembleStats {
            mean_current: mean,
            std_current: var.sqrt(),
            total_events,
            measured: currents.len(),
        }
    }
}

fn ensemble_fingerprint(
    config: &SimConfig,
    junction: JunctionId,
    warmup: u64,
    length: RunLength,
    policy: &RetryPolicy,
) -> u64 {
    let mut w = Writer::new();
    fingerprint_config(&mut w, config);
    w.u64(junction.index() as u64);
    w.u64(warmup);
    match length {
        RunLength::Events(n) => {
            w.u32(0);
            w.u64(n);
        }
        RunLength::Time(t) => {
            w.u32(1);
            w.f64(t);
        }
    }
    fingerprint_policy(&mut w, policy);
    fnv1a64(&w.buf)
}

/// Resilient independent-replica ensemble: the computation of
/// [`crate::par::par_ensemble`] with per-replica retry, salvage, and
/// optional journaling. Replica `r` runs with
/// `split_seed(config.seed, r)` and blockade-as-outcome, exactly like
/// [`crate::par::Ensemble`]; `setup(sim, replica, spec)` runs before
/// warmup.
///
/// # Errors
///
/// As [`batch_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn batch_ensemble<F>(
    circuit: &Circuit,
    config: &SimConfig,
    junction: JunctionId,
    replicas: usize,
    warmup: u64,
    length: RunLength,
    opts: &BatchOpts,
    setup: F,
) -> Result<BatchReport<ReplicaSummary>, CoreError>
where
    F: Fn(&mut Simulation<'_>, usize, &AttemptSpec) -> Result<(), CoreError> + Sync,
{
    let config = &effective_config(config, opts);
    let header = JournalHeader {
        master_seed: config.seed,
        tasks: replicas as u64,
        fingerprint: ensemble_fingerprint(config, junction, warmup, length, &opts.retry),
        kind: ReplicaSummary::KIND,
    };
    let (journal, restored) = open_journal::<ReplicaSummary>(opts, &header)?;
    #[cfg(feature = "fault-inject")]
    if let (Some(plan), Some(j)) = (&opts.fault_plan, journal.as_ref()) {
        plan.arm_journal(j);
    }
    run_batch(
        replicas,
        config.seed,
        &opts.retry,
        opts.par,
        journal.as_ref(),
        &restored,
        opts.cancel.as_ref(),
        |spec| {
            let mut cfg = attempt_config(config, spec);
            cfg.supervisor = Supervisor {
                blockade_is_outcome: true,
                ..cfg.supervisor
            };
            let mut sim = Simulation::new(circuit, cfg)?;
            #[cfg(feature = "fault-inject")]
            if let Some(plan) = &opts.fault_plan {
                plan.arm(&mut sim, spec);
            }
            setup(&mut sim, spec.task, spec)?;
            if warmup > 0 {
                sim.run(RunLength::Events(warmup))?;
            }
            let record = sim.run(length)?;
            let summary = ReplicaSummary {
                current: record.current(junction),
                duration: record.duration,
                events: record.events,
                outcome: record.outcome,
            };
            Ok((summary, sim.health_report()))
        },
    )
}

/// Batch-level fault scripting (testing only; requires the
/// `fault-inject` cargo feature): injects engine-level
/// [`crate::health::FaultPlan`]s into chosen tasks' attempts, via the
/// [`AttemptSpec`] the batch drivers hand to `setup`.
///
/// Transient faults (`panic_at`, `poison_rate`) fire only on the
/// initial attempt, so the retry must succeed — proving recovery.
/// Persistent faults (`persistent_poison`) fire on every attempt that
/// is not the solver fallback, so only the fallback can succeed —
/// proving the degradation ladder reaches it.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchFaultPlan {
    panics: Vec<(usize, u64)>,
    poisons: Vec<(usize, u64, usize)>,
    persistent_poisons: Vec<(usize, u64, usize)>,
    journal_full: Option<(u64, usize)>,
}

#[cfg(feature = "fault-inject")]
impl BatchFaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics inside `task`'s initial attempt once `at_event` events
    /// have executed.
    #[must_use]
    pub fn panic_at(mut self, task: usize, at_event: u64) -> Self {
        self.panics.push((task, at_event));
        self
    }

    /// Poisons a forward rate of `junction` in `task`'s initial
    /// attempt once `at_event` events have executed.
    #[must_use]
    pub fn poison_rate(mut self, task: usize, at_event: u64, junction: usize) -> Self {
        self.poisons.push((task, at_event, junction));
        self
    }

    /// Poisons a forward rate of `junction` in **every** non-fallback
    /// attempt of `task`, so only [`RecoveryAction::SolverFallback`]
    /// can rescue the point.
    #[must_use]
    pub fn persistent_poison(mut self, task: usize, at_event: u64, junction: usize) -> Self {
        self.persistent_poisons.push((task, at_event, junction));
        self
    }

    /// Scripts a journal disk-full fault: the first `after_appends`
    /// appends succeed, then every later append tears its record at
    /// `torn_bytes` bytes and fails like ENOSPC. The batch must
    /// salvage the affected points in memory and finish.
    #[must_use]
    pub fn journal_full_after(mut self, after_appends: u64, torn_bytes: usize) -> Self {
        self.journal_full = Some((after_appends, torn_bytes));
        self
    }

    /// Arms the scripted journal fault (if any) on an opened journal.
    /// The batch drivers call this right after opening.
    pub fn arm_journal<T: JournalItem>(&self, journal: &Journal<T>) {
        if let Some((after_appends, torn_bytes)) = self.journal_full {
            journal.arm_write_failure(after_appends, torn_bytes);
        }
    }

    /// Arms the faults this plan scripts for `spec` on a fresh
    /// simulation. Call from a batch driver's `setup` closure.
    pub fn arm(&self, sim: &mut Simulation<'_>, spec: &AttemptSpec) {
        let mut plan = crate::health::FaultPlan::new();
        let mut any = false;
        if spec.action == RecoveryAction::Initial {
            for &(task, at_event) in &self.panics {
                if task == spec.task {
                    plan = plan.panic_at(at_event);
                    any = true;
                }
            }
            for &(task, at_event, junction) in &self.poisons {
                if task == spec.task {
                    plan = plan.poison_rate(at_event, junction);
                    any = true;
                }
            }
        }
        for &(task, at_event, junction) in &self.persistent_poisons {
            if task == spec.task && !spec.fallback {
                plan = plan.poison_rate(at_event, junction);
                any = true;
            }
        }
        if any {
            sim.inject_faults(plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::FaultStage;

    fn point(v: f64) -> SweepPoint {
        SweepPoint {
            control: v,
            current: v * 2.0,
            outcome: RunOutcome::Completed,
            events: 10,
        }
    }

    fn numerical_fault() -> CoreError {
        CoreError::NumericalFault {
            stage: FaultStage::TunnelRate,
            junction: Some(0),
            value: f64::NAN,
        }
    }

    #[test]
    fn attempt_one_is_the_plain_split_seed() {
        for task in [0usize, 1, 7, 1000] {
            let spec = initial_spec(99, task);
            assert_eq!(spec.seed, split_seed(99, task as u64));
            assert_eq!(spec.action, RecoveryAction::Initial);
            assert_eq!(spec.theta_scale, 1.0);
            assert!(!spec.fallback);
        }
    }

    #[test]
    fn ladder_panics_rerun_then_reseed_then_fall_back() {
        let policy = RetryPolicy::default(); // 1 + 2 retries
        let spec1 = initial_spec(7, 5);
        let panic_fault = TaskFault::Panic {
            message: "x".into(),
        };
        let spec2 = next_spec(7, &spec1, &panic_fault, &policy);
        assert_eq!(spec2.action, RecoveryAction::RerunSame);
        assert_eq!(spec2.seed, spec1.seed, "rerun keeps the seed");
        assert_eq!(spec2.theta_scale, 1.0);
        // A second panic is no longer treated as transient.
        let spec3 = next_spec(7, &spec2, &panic_fault, &policy);
        assert_eq!(spec3.action, RecoveryAction::SolverFallback);
        assert_eq!(spec3.seed, split_seed(7, 5 * 3));
        assert!(spec3.fallback);

        // Numerical faults reseed+tighten immediately.
        let nf = TaskFault::Error(numerical_fault());
        let s2 = next_spec(7, &spec1, &nf, &policy);
        assert_eq!(s2.action, RecoveryAction::ReseedTightened);
        assert_eq!(s2.seed, split_seed(7, 5 * 2));
        assert_eq!(s2.theta_scale, 0.5);
        let s3 = next_spec(7, &s2, &nf, &policy);
        assert_eq!(s3.action, RecoveryAction::SolverFallback);
    }

    #[test]
    fn no_fallback_policy_keeps_tightening() {
        let policy = RetryPolicy {
            solver_fallback: false,
            ..RetryPolicy::default()
        };
        let nf = TaskFault::Error(numerical_fault());
        let s1 = initial_spec(1, 2);
        let s2 = next_spec(1, &s1, &nf, &policy);
        let s3 = next_spec(1, &s2, &nf, &policy);
        assert_eq!(s3.action, RecoveryAction::ReseedTightened);
        assert_eq!(s3.theta_scale, 0.25);
        assert!(!s3.fallback);
    }

    #[test]
    fn retry_ladder_recovers_and_logs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let policy = RetryPolicy::default();
        let calls = AtomicUsize::new(0);
        let run = run_with_retry::<SweepPoint, _>(3, 11, &policy, &|spec| {
            calls.fetch_add(1, Ordering::Relaxed);
            if spec.attempt < 3 {
                Err(numerical_fault())
            } else {
                Ok((point(1.0), HealthReport::empty()))
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(run.status, PointStatus::Recovered { attempts: 3 });
        assert_eq!(run.attempts.len(), 3);
        assert!(run.attempts[0].fault.is_some());
        assert!(run.attempts[1].fault.is_some());
        assert!(run.attempts[2].fault.is_none());
        assert_eq!(run.attempts[2].action, RecoveryAction::SolverFallback);
        assert!(run.item.is_some());
    }

    #[test]
    fn non_retryable_error_faults_immediately() {
        let policy = RetryPolicy::default();
        let run = run_with_retry::<SweepPoint, _>(0, 1, &policy, &|_| {
            Err(CoreError::UnknownLead { lead: 9 })
        });
        assert_eq!(run.status, PointStatus::Faulted);
        assert_eq!(run.attempts.len(), 1, "no retry for config errors");
        assert_eq!(
            run.fault,
            Some(TaskFault::Error(CoreError::UnknownLead { lead: 9 }))
        );
    }

    #[test]
    fn panic_in_attempt_is_caught_and_retried() {
        let policy = RetryPolicy::default();
        let run = run_with_retry::<SweepPoint, _>(2, 5, &policy, &|spec| {
            if spec.attempt == 1 {
                panic!("transient crash");
            }
            assert_eq!(spec.action, RecoveryAction::RerunSame);
            assert_eq!(spec.seed, split_seed(5, 2));
            Ok((point(2.0), HealthReport::empty()))
        });
        assert_eq!(run.status, PointStatus::Recovered { attempts: 2 });
        assert_eq!(
            run.attempts[0].fault.as_deref(),
            Some("panic: transient crash")
        );
    }

    #[test]
    fn exhausted_ladder_reports_terminal_fault() {
        let policy = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let run = run_with_retry::<SweepPoint, _>(0, 0, &policy, &|_| Err(numerical_fault()));
        assert_eq!(run.status, PointStatus::Faulted);
        assert_eq!(run.attempts.len(), 2);
        assert!(matches!(
            run.fault,
            Some(TaskFault::Error(CoreError::NumericalFault { .. }))
        ));
    }

    #[test]
    fn fingerprints_are_sensitive_to_inputs() {
        let cfg = SimConfig::new(4.2).with_seed(3);
        let j = JunctionId(0);
        let policy = RetryPolicy::default();
        let base = sweep_fingerprint(&cfg, j, &[0.1, 0.2], 10, 100, &policy);
        assert_eq!(
            base,
            sweep_fingerprint(&cfg, j, &[0.1, 0.2], 10, 100, &policy),
            "fingerprint is deterministic"
        );
        assert_ne!(
            base,
            sweep_fingerprint(&cfg, j, &[0.1, 0.3], 10, 100, &policy),
            "controls matter"
        );
        assert_ne!(
            base,
            sweep_fingerprint(&cfg, j, &[0.1, 0.2], 10, 200, &policy),
            "events matter"
        );
        let cfg2 = SimConfig::new(4.2)
            .with_seed(3)
            .with_solver(SolverSpec::Adaptive {
                threshold: 0.05,
                refresh_interval: 500,
            });
        assert_ne!(
            base,
            sweep_fingerprint(&cfg2, j, &[0.1, 0.2], 10, 100, &policy),
            "solver matters"
        );
        // The seed is carried in the journal header itself, not the
        // fingerprint.
        let cfg3 = SimConfig::new(4.2).with_seed(4);
        assert_eq!(
            base,
            sweep_fingerprint(&cfg3, j, &[0.1, 0.2], 10, 100, &policy)
        );
    }

    #[test]
    fn attempt_config_applies_the_ladder() {
        let adaptive = SimConfig::new(1.0).with_solver(SolverSpec::Adaptive {
            threshold: 0.2,
            refresh_interval: 100,
        });
        let tightened = attempt_config(
            &adaptive,
            &AttemptSpec {
                task: 1,
                attempt: 2,
                seed: 42,
                action: RecoveryAction::ReseedTightened,
                theta_scale: 0.5,
                fallback: false,
            },
        );
        assert_eq!(tightened.seed, 42);
        assert_eq!(
            tightened.solver,
            SolverSpec::Adaptive {
                threshold: 0.1,
                refresh_interval: 100
            }
        );
        let fell_back = attempt_config(
            &adaptive,
            &AttemptSpec {
                task: 1,
                attempt: 3,
                seed: 7,
                action: RecoveryAction::SolverFallback,
                theta_scale: 0.5,
                fallback: true,
            },
        );
        assert_eq!(fell_back.solver, SolverSpec::NonAdaptive);
        // Attempt 1 only swaps the seed in.
        let initial = attempt_config(&adaptive, &initial_spec(0, 4));
        assert_eq!(initial.solver, adaptive.solver);
    }
}
