//! SEMSIM core: adaptive multi-scale Monte Carlo simulation of
//! single-electron devices.
//!
//! This crate reproduces the simulator of *"Adaptive Simulation for
//! Single-Electron Devices"* (Allec, Knobel, Shang — DATE 2008):
//! orthodox-theory Monte Carlo simulation of single-electron circuits,
//! with second-order inelastic cotunneling, superconducting
//! quasi-particle and Cooper-pair tunneling, and the paper's **adaptive
//! solver** (Algorithm 1) that recomputes only the tunnel rates whose
//! inputs changed significantly after each event.
//!
//! # Architecture
//!
//! * [`circuit`] — circuit topology (leads, islands, tunnel junctions,
//!   capacitors) and the precomputed inverse capacitance matrix.
//! * [`backend`] — compute backends for the solver hot loop: scalar
//!   reference kernels and the SIMD-friendly chunked SoA kernels, with
//!   a per-kernel bit-identity (or documented ULP) contract.
//! * [`energy`] — free-energy changes ΔW for tunnel events (paper Eq. 2).
//! * [`rates`] — the orthodox tunnel rate (Eq. 1) in numerically stable
//!   form.
//! * [`cotunnel`] — second-order inelastic cotunneling.
//! * [`superconduct`] — BCS quasi-particle rates (Eq. 3–4), Δ(T), and
//!   resonance-broadened Cooper-pair tunneling.
//! * [`master`] — the paper's third method: a bounded-window
//!   master-equation solver (device-level, noise-free reference).
//! * [`solver`] — the non-adaptive (conventional MC) and adaptive
//!   solvers.
//! * [`engine`] — the Monte Carlo event loop (Eq. 5), stimuli, recording
//!   and sweeps.
//! * [`health`] — numerical health guards, drift audits with graceful
//!   degradation, and the run supervisor (outcome taxonomy).
//! * [`checkpoint`] — versioned binary snapshots for
//!   checkpoint/resume of long runs.
//! * [`par`] — deterministic parallel drivers (sweeps, 2-D maps, MC
//!   ensembles) with counter-based seed splitting: bit-identical
//!   results for any thread count, panics isolated per task.
//! * [`batch`] — resilient batch execution on top of [`par`]: per-point
//!   retry with graceful degradation (reseed, θ-tightening, solver
//!   fallback), partial-result salvage ([`batch::BatchReport`]), and
//!   journaled crash-safe resume.
//! * [`journal`] — the append-only `SEMSIMJL` journal format behind
//!   `--journal`/`--resume` (shares the checkpoint codec).
//! * [`resource`] — the pre-admission memory/cost estimator behind
//!   `--max-memory` and serve's 413 admission guard.
//!
//! # Quickstart
//!
//! ```
//! use semsim_core::circuit::CircuitBuilder;
//! use semsim_core::engine::{RunLength, SimConfig, Simulation};
//!
//! # fn main() -> Result<(), semsim_core::CoreError> {
//! // A symmetric SET: source—[junction]—island—[junction]—drain, gate.
//! let mut b = CircuitBuilder::new();
//! let src = b.add_lead(10e-3);
//! let drn = b.add_lead(-10e-3);
//! let gate = b.add_lead(0.0);
//! let island = b.add_island();
//! let j1 = b.add_junction(src, island, 1e6, 1e-18)?;
//! let _j2 = b.add_junction(island, drn, 1e6, 1e-18)?;
//! b.add_capacitor(gate, island, 3e-18)?;
//! let circuit = b.build()?;
//!
//! let config = SimConfig::new(5.0).with_seed(7);
//! let mut sim = Simulation::new(&circuit, config)?;
//! let record = sim.run(RunLength::Events(20_000))?;
//! let current = record.current(j1);
//! assert!(current.abs() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod batch;
pub mod checkpoint;
pub mod circuit;
pub mod constants;
pub mod cotunnel;
pub mod energy;
pub mod engine;
pub mod events;
pub mod fenwick;
pub mod health;
pub mod journal;
pub mod master;
pub mod par;
pub mod rates;
pub mod resource;
pub mod rng;
pub mod solver;
pub mod superconduct;
pub mod trace;

mod error;

pub use error::CoreError;
