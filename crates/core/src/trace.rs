//! Simulation observability: voltage probes, event logs, and JQP/DJQP
//! cycle detection (paper Fig. 2).

use std::collections::VecDeque;

use crate::circuit::{JunctionId, NodeId};
use crate::events::Event;

/// A time-stamped sample of a node potential.
pub type Sample = (f64, f64);

/// A voltage probe attached to a node, sampled every `every` events and
/// at every stimulus application.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// The probed node.
    pub node: NodeId,
    /// Sampling period in events.
    pub every: u64,
    pub(crate) samples: Vec<Sample>,
}

impl Probe {
    /// Creates a probe on `node` sampling every `every` events (0 is
    /// treated as 1).
    pub fn new(node: NodeId, every: u64) -> Self {
        Probe {
            node,
            every: every.max(1),
            samples: Vec::new(),
        }
    }

    /// The collected `(time, volts)` samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    pub(crate) fn push(&mut self, t: f64, v: f64) {
        // The engine samples both every-N-events and at every stimulus
        // application, so two pushes can land on the same timestamp.
        // Keep only the last one: it carries the post-stimulus
        // potential, and a duplicated timestamp would inflate the
        // `hold` run-length in `crossing_time`.
        if let Some(last) = self.samples.last_mut() {
            if last.0 == t {
                *last = (t, v);
                return;
            }
        }
        self.samples.push((t, v));
    }

    /// First time ≥ `t_from` at which the probed voltage crosses
    /// `level`, requiring the crossing to hold for `hold` consecutive
    /// samples (Monte Carlo traces are noisy). `rising` selects the
    /// crossing direction. Returns `None` if never observed.
    pub fn crossing_time(&self, t_from: f64, level: f64, rising: bool, hold: usize) -> Option<f64> {
        let hold = hold.max(1);
        let mut run = 0usize;
        let mut first_t = None;
        for &(t, v) in &self.samples {
            if t < t_from {
                continue;
            }
            let crossed = if rising { v >= level } else { v <= level };
            if crossed {
                if run == 0 {
                    first_t = Some(t);
                }
                run += 1;
                if run >= hold {
                    return first_t;
                }
            } else {
                run = 0;
                first_t = None;
            }
        }
        None
    }
}

/// A bounded log of `(time, event)` records, kept in a ring buffer so
/// that pushing past capacity evicts the oldest entry in O(1) instead
/// of shifting the whole backlog.
#[derive(Debug, Clone)]
pub struct EventLog {
    capacity: usize,
    entries: VecDeque<(f64, Event)>,
}

impl EventLog {
    /// Creates a log that keeps at most `capacity` most-recent entries.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            entries: VecDeque::with_capacity(capacity.max(1)),
        }
    }

    /// Records an event, evicting the oldest entry once full.
    pub fn push(&mut self, t: f64, e: Event) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((t, e));
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(f64, Event)> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counts Josephson-quasi-particle cycles (paper Fig. 2): a Cooper
    /// pair through one junction followed by two quasi-particle events
    /// through the *other* junction.
    pub fn count_jqp_cycles(&self) -> usize {
        let mut n = 0;
        for i in 0..self.entries.len().saturating_sub(2) {
            if let (
                (_, Event::CooperPair { junction: ja, .. }),
                (_, Event::Tunnel { junction: jb1, .. }),
                (_, Event::Tunnel { junction: jb2, .. }),
            ) = (&self.entries[i], &self.entries[i + 1], &self.entries[i + 2])
            {
                if jb1 == jb2 && ja != jb1 {
                    n += 1;
                }
            }
        }
        n
    }

    /// Counts double-JQP cycles (paper Fig. 2): Cooper pair through `A`,
    /// quasi-particle through `B`, Cooper pair through `B`,
    /// quasi-particle through `A`.
    pub fn count_djqp_cycles(&self) -> usize {
        let mut n = 0;
        for i in 0..self.entries.len().saturating_sub(3) {
            if let (
                (_, Event::CooperPair { junction: ja, .. }),
                (_, Event::Tunnel { junction: jb, .. }),
                (_, Event::CooperPair { junction: jb2, .. }),
                (_, Event::Tunnel { junction: ja2, .. }),
            ) = (
                &self.entries[i],
                &self.entries[i + 1],
                &self.entries[i + 2],
                &self.entries[i + 3],
            ) {
                if ja == ja2 && jb == jb2 && ja != jb {
                    n += 1;
                }
            }
        }
        n
    }

    /// Fraction of entries that are Cooper-pair events.
    pub fn cooper_pair_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let cp = self
            .entries
            .iter()
            .filter(|(_, e)| matches!(e, Event::CooperPair { .. }))
            .count();
        cp as f64 / self.entries.len() as f64
    }
}

/// Helper to build the synthetic events used in tests and benches.
#[doc(hidden)]
pub fn tunnel_event(j: usize, from: usize, to: usize) -> Event {
    Event::Tunnel {
        junction: JunctionId(j),
        from: NodeId(from),
        to: NodeId(to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(j: usize) -> Event {
        Event::CooperPair {
            junction: JunctionId(j),
            from: NodeId(0),
            to: NodeId(1),
        }
    }
    fn qp(j: usize) -> Event {
        tunnel_event(j, 1, 0)
    }

    #[test]
    fn probe_crossing_with_hold() {
        let mut p = Probe::new(NodeId(0), 1);
        for (i, v) in [0.0, 0.1, 0.6, 0.2, 0.7, 0.8, 0.9].iter().enumerate() {
            p.push(i as f64, *v);
        }
        // Single-sample blip at t=2 is rejected with hold=2; the real
        // crossing starts at t=4.
        assert_eq!(p.crossing_time(0.0, 0.5, true, 2), Some(4.0));
        assert_eq!(p.crossing_time(0.0, 0.5, true, 1), Some(2.0));
        assert_eq!(p.crossing_time(0.0, 2.0, true, 1), None);
    }

    #[test]
    fn probe_falling_crossing() {
        let mut p = Probe::new(NodeId(0), 1);
        for (i, v) in [1.0, 0.9, 0.4, 0.3].iter().enumerate() {
            p.push(i as f64, *v);
        }
        assert_eq!(p.crossing_time(0.0, 0.5, false, 2), Some(2.0));
    }

    #[test]
    fn log_capacity_evicts_oldest() {
        let mut log = EventLog::new(2);
        log.push(0.0, qp(0));
        log.push(1.0, qp(1));
        log.push(2.0, qp(2));
        assert_eq!(log.len(), 2);
        let times: Vec<f64> = log.entries().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn log_push_is_constant_time_at_large_capacity() {
        // Regression: `push` used `Vec::remove(0)`, making every push
        // past capacity O(capacity). At capacity 10⁵ the loop below did
        // ~10¹⁰ element moves; the ring buffer does 2·10⁵ O(1) ops and
        // finishes instantly even in debug builds.
        const CAP: usize = 100_000;
        let mut log = EventLog::new(CAP);
        let start = std::time::Instant::now();
        for i in 0..2 * CAP {
            log.push(i as f64, qp(i % 3));
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "push at capacity is not O(1) amortized"
        );
        // Rotation logic: exactly the newest CAP entries, oldest first.
        assert_eq!(log.len(), CAP);
        let mut expect = CAP as f64;
        for &(t, _) in log.entries() {
            assert_eq!(t, expect);
            expect += 1.0;
        }
    }

    #[test]
    fn probe_dedups_equal_time_samples() {
        // Regression: an every-N-events sample and a stimulus sample
        // landing on the same timestamp were both recorded, so a
        // single-sample blip could satisfy `hold = 2` by itself.
        let mut p = Probe::new(NodeId(0), 1);
        p.push(0.0, 0.0);
        p.push(1.0, 0.9); // event sample: blip above level...
        p.push(1.0, 0.9); // ...stimulus sample at the same instant
        p.push(2.0, 0.1);
        assert_eq!(p.samples().len(), 3);
        assert_eq!(p.crossing_time(0.0, 0.5, true, 2), None);
    }

    #[test]
    fn probe_equal_time_dedup_keeps_last_value() {
        // The stimulus sample is pushed after the lead change, so the
        // later value is the physically current one.
        let mut p = Probe::new(NodeId(0), 1);
        p.push(0.0, 0.2);
        p.push(0.0, 0.8);
        assert_eq!(p.samples(), &[(0.0, 0.8)]);
    }

    #[test]
    fn jqp_cycle_detection() {
        let mut log = EventLog::new(16);
        log.push(0.0, cp(0));
        log.push(1.0, qp(1));
        log.push(2.0, qp(1));
        log.push(3.0, cp(0));
        log.push(4.0, qp(1));
        log.push(5.0, qp(1));
        assert_eq!(log.count_jqp_cycles(), 2);
        assert_eq!(log.count_djqp_cycles(), 0);
        assert!((log.cooper_pair_fraction() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn djqp_cycle_detection() {
        let mut log = EventLog::new(16);
        log.push(0.0, cp(0));
        log.push(1.0, qp(1));
        log.push(2.0, cp(1));
        log.push(3.0, qp(0));
        assert_eq!(log.count_djqp_cycles(), 1);
    }

    #[test]
    fn same_junction_patterns_do_not_count() {
        let mut log = EventLog::new(16);
        log.push(0.0, cp(0));
        log.push(1.0, qp(0));
        log.push(2.0, qp(0));
        assert_eq!(log.count_jqp_cycles(), 0);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.cooper_pair_fraction(), 0.0);
        assert_eq!(log.count_jqp_cycles(), 0);
    }
}
