//! The master-equation (ME) approach — the third of the paper's three
//! simulation methods (§I).
//!
//! Instead of sampling tunnel events, the ME approach solves for the
//! stationary probability of every circuit charge configuration. Its
//! advantage is noise-free currents; its "major disadvantage" (the
//! paper's words) "is that the relevant states must be known before
//! simulation, which is not always possible for large circuits since
//! single-electron device circuits can potentially occupy an infinite
//! number of states". This module implements exactly that trade-off: it
//! enumerates all island occupation vectors within a caller-chosen
//! window around the electrostatic ground state, builds the transition
//! rate matrix from the same orthodox rates the Monte Carlo engine
//! uses, solves the stationary distribution with the dense LU, and
//! reports junction currents. State count grows as
//! `(2·window + 1)^islands`, so this is a *device-level* tool — which
//! is precisely why the paper builds a Monte Carlo simulator for the
//! circuit level.
//!
//! # Example
//!
//! ```
//! use semsim_core::circuit::CircuitBuilder;
//! use semsim_core::master::MasterEquation;
//!
//! # fn main() -> Result<(), semsim_core::CoreError> {
//! let mut b = CircuitBuilder::new();
//! let src = b.add_lead(20e-3);
//! let drn = b.add_lead(-20e-3);
//! let island = b.add_island();
//! let j1 = b.add_junction(src, island, 1e6, 1e-18)?;
//! b.add_junction(island, drn, 1e6, 1e-18)?;
//! let circuit = b.build()?;
//! let me = MasterEquation::new(&circuit, 5.0, 3)?;
//! let solution = me.stationary()?;
//! assert!(solution.junction_current(j1) > 0.0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use semsim_linalg::Matrix;

use crate::circuit::{Circuit, JunctionId};
use crate::constants::{thermal_energy, E_CHARGE};
use crate::energy::{delta_w, CircuitState};
use crate::rates::orthodox_rate;
use crate::CoreError;

/// Hard cap on the enumerated state space; beyond this the ME approach
/// is infeasible and the caller should use Monte Carlo — the paper's
/// central argument.
pub const MAX_STATES: usize = 200_000;

/// A stationary master-equation solver over a bounded window of island
/// occupations.
#[derive(Debug)]
pub struct MasterEquation<'c> {
    circuit: &'c Circuit,
    kt: f64,
    /// Enumerated occupation vectors.
    states: Vec<Vec<i64>>,
    /// Occupation vector → state index.
    index: HashMap<Vec<i64>, usize>,
}

/// The stationary solution: state probabilities plus the machinery to
/// read currents out of them.
#[derive(Debug)]
pub struct StationarySolution<'c> {
    circuit: &'c Circuit,
    kt: f64,
    states: Vec<Vec<i64>>,
    probabilities: Vec<f64>,
}

impl<'c> MasterEquation<'c> {
    /// Enumerates all occupation vectors within `±window` electrons of
    /// the zero-excess state on every island, at `temperature` kelvin.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the temperature is invalid or
    ///   the state space would exceed [`MAX_STATES`] — the infeasibility
    ///   the paper describes for large circuits.
    pub fn new(circuit: &'c Circuit, temperature: f64, window: i64) -> Result<Self, CoreError> {
        if !(temperature >= 0.0) || !temperature.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: "temperature",
                value: temperature,
            });
        }
        if window < 0 {
            return Err(CoreError::InvalidConfig {
                what: "occupation window",
                value: window as f64,
            });
        }
        let n = circuit.num_islands();
        let per_island = (2 * window + 1) as usize;
        // Overflow-safe state count check.
        let mut count: usize = 1;
        for _ in 0..n {
            count = count.saturating_mul(per_island);
            if count > MAX_STATES {
                return Err(CoreError::InvalidConfig {
                    what: "master-equation state space (use Monte Carlo)",
                    value: count as f64,
                });
            }
        }

        let mut states = Vec::with_capacity(count);
        let mut current = vec![-window; n];
        loop {
            states.push(current.clone());
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == n {
                    // Wrapped all digits: enumeration complete.
                    let index = states
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (s.clone(), i))
                        .collect();
                    return Ok(MasterEquation {
                        circuit,
                        kt: thermal_energy(temperature),
                        states,
                        index,
                    });
                }
                current[k] += 1;
                if current[k] <= window {
                    break;
                }
                current[k] = -window;
                k += 1;
            }
            if n == 0 {
                // A circuit with no islands has exactly one state.
                let index = states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), i))
                    .collect();
                return Ok(MasterEquation {
                    circuit,
                    kt: thermal_energy(temperature),
                    states,
                    index,
                });
            }
        }
    }

    /// Number of enumerated states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    fn state_for(&self, occupation: &[i64]) -> CircuitState {
        let mut s = CircuitState::new(self.circuit);
        for (island, &n) in occupation.iter().enumerate() {
            if n != 0 {
                let node = self.circuit.island_node(island);
                // Source the electrons from ground: only the island
                // count matters for the energetics.
                s.apply_transfer(self.circuit, crate::circuit::NodeId::GROUND, node, n);
            }
        }
        s.recompute_potentials(self.circuit);
        s
    }

    /// Solves the stationary distribution `M·p = 0, Σp = 1`.
    ///
    /// Transitions leaving the enumerated window are dropped — the
    /// window must be chosen large enough that their stationary weight
    /// is negligible (increase it if [`StationarySolution::
    /// boundary_weight`] is not small).
    ///
    /// # Errors
    ///
    /// Propagates a singular linear system (disconnected state space at
    /// `T = 0` deep in blockade); a tiny uniform regularization keeps
    /// physical cases solvable.
    pub fn stationary(&self) -> Result<StationarySolution<'c>, CoreError> {
        let n = self.states.len();
        let mut m = Matrix::zeros(n, n);
        let mut max_rate = 0.0_f64;

        for (si, occ) in self.states.iter().enumerate() {
            let state = self.state_for(occ);
            for jid in self.circuit.junction_ids() {
                let j = self.circuit.junction(jid);
                for (from, to) in [(j.node_a, j.node_b), (j.node_b, j.node_a)] {
                    let dw = delta_w(self.circuit, &state, from, to, 1);
                    let rate = orthodox_rate(dw, self.kt, j.resistance);
                    if rate <= 0.0 {
                        continue;
                    }
                    max_rate = max_rate.max(rate);
                    if let Some(&sj) = self.successor(occ, from, to) {
                        m.add_to(sj, si, rate);
                        m.add_to(si, si, -rate);
                    }
                }
            }
        }
        // Regularize against exactly-disconnected blocks (frozen
        // blockade at T = 0): a vanishing uniform hop keeps the chain
        // irreducible without moving physical probabilities.
        let eps = max_rate.max(1.0) * 1e-12;
        for si in 0..n {
            for sj in 0..n {
                if si != sj {
                    m.add_to(sj, si, eps / n as f64);
                    m.add_to(si, si, -eps / n as f64);
                }
            }
        }
        // Replace the last balance row with the normalization Σp = 1.
        for sj in 0..n {
            m.set(n - 1, sj, 1.0);
        }
        let mut rhs = vec![0.0; n];
        rhs[n - 1] = 1.0;
        let p = m.solve(&rhs).map_err(CoreError::FloatingIsland)?;
        Ok(StationarySolution {
            circuit: self.circuit,
            kt: self.kt,
            states: self.states.clone(),
            probabilities: p.into_iter().map(|x| x.max(0.0)).collect(),
        })
    }

    /// Index of the state reached from `occ` by one electron `from → to`
    /// (None if it leaves the window).
    fn successor(
        &self,
        occ: &[i64],
        from: crate::circuit::NodeId,
        to: crate::circuit::NodeId,
    ) -> Option<&usize> {
        let mut next = occ.to_vec();
        if let Some(i) = self.circuit.island_index(from) {
            next[i] -= 1;
        }
        if let Some(i) = self.circuit.island_index(to) {
            next[i] += 1;
        }
        self.index.get(&next)
    }
}

impl StationarySolution<'_> {
    /// Probability of the occupation vector `occ` (0 if outside the
    /// window).
    pub fn probability(&self, occ: &[i64]) -> f64 {
        self.states
            .iter()
            .position(|s| s == occ)
            .map_or(0.0, |i| self.probabilities[i])
    }

    /// Total probability on the boundary of the occupation window — a
    /// convergence diagnostic: enlarge the window until this is small.
    pub fn boundary_weight(&self) -> f64 {
        let window = self
            .states
            .iter()
            .flat_map(|s| s.iter().map(|v| v.abs()))
            .max()
            .unwrap_or(0);
        self.states
            .iter()
            .zip(&self.probabilities)
            .filter(|(s, _)| s.iter().any(|v| v.abs() == window))
            .map(|(_, &p)| p)
            .sum()
    }

    /// Stationary conventional current (A) through `junction` in the
    /// `node_a → node_b` direction — same sign convention as
    /// [`crate::engine::Record::current`].
    pub fn junction_current(&self, junction: JunctionId) -> f64 {
        let j = self.circuit.junction(junction);
        let mut electron_flow = 0.0; // electrons a→b per second
        for (occ, &p) in self.states.iter().zip(&self.probabilities) {
            if p == 0.0 {
                continue;
            }
            let mut s = CircuitState::new(self.circuit);
            for (island, &n) in occ.iter().enumerate() {
                if n != 0 {
                    let node = self.circuit.island_node(island);
                    s.apply_transfer(self.circuit, crate::circuit::NodeId::GROUND, node, n);
                }
            }
            s.recompute_potentials(self.circuit);
            let fw = orthodox_rate(
                delta_w(self.circuit, &s, j.node_a, j.node_b, 1),
                self.kt,
                j.resistance,
            );
            let bw = orthodox_rate(
                delta_w(self.circuit, &s, j.node_b, j.node_a, 1),
                self.kt,
                j.resistance,
            );
            electron_flow += p * (fw - bw);
        }
        -E_CHARGE * electron_flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::engine::{RunLength, SimConfig, Simulation};

    fn paper_set(vs: f64, vd: f64, vg: f64) -> (Circuit, JunctionId) {
        let mut b = CircuitBuilder::new();
        let src = b.add_lead(vs);
        let drn = b.add_lead(vd);
        let gate = b.add_lead(vg);
        let island = b.add_island();
        let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
        b.add_junction(island, drn, 1e6, 1e-18).unwrap();
        b.add_capacitor(gate, island, 3e-18).unwrap();
        (b.build().unwrap(), j1)
    }

    #[test]
    fn state_enumeration_counts() {
        let (c, _) = paper_set(0.0, 0.0, 0.0);
        let me = MasterEquation::new(&c, 5.0, 3).unwrap();
        assert_eq!(me.num_states(), 7); // one island, −3..=3
    }

    #[test]
    fn probabilities_normalize() {
        let (c, _) = paper_set(20e-3, -20e-3, 0.0);
        let me = MasterEquation::new(&c, 5.0, 3).unwrap();
        let sol = me.stationary().unwrap();
        let total: f64 = sol.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn blockade_concentrates_on_ground_state() {
        let (c, _) = paper_set(2e-3, -2e-3, 0.0);
        let me = MasterEquation::new(&c, 0.1, 3).unwrap();
        let sol = me.stationary().unwrap();
        assert!(sol.probability(&[0]) > 0.999);
        assert!(sol.boundary_weight() < 1e-6);
    }

    #[test]
    fn matches_monte_carlo_current() {
        // The paper's three methods must agree at the device level; the
        // ME current is the noise-free reference.
        let (c, j1) = paper_set(20e-3, -20e-3, 10e-3);
        let me = MasterEquation::new(&c, 5.0, 4).unwrap();
        let i_me = me.stationary().unwrap().junction_current(j1);

        let mut sim = Simulation::new(&c, SimConfig::new(5.0).with_seed(4)).unwrap();
        let i_mc = sim.run(RunLength::Events(60_000)).unwrap().current(j1);

        let rel = (i_me - i_mc).abs() / i_me.abs();
        assert!(rel < 0.05, "ME {i_me} vs MC {i_mc} ({rel:.3})");
    }

    #[test]
    fn current_continuity_between_junctions() {
        let (c, j1) = paper_set(25e-3, -25e-3, 5e-3);
        let me = MasterEquation::new(&c, 5.0, 4).unwrap();
        let sol = me.stationary().unwrap();
        let i1 = sol.junction_current(j1);
        let j2 = c.junction_ids().nth(1).unwrap();
        let i2 = sol.junction_current(j2);
        assert!((i1 - i2).abs() < 1e-6 * i1.abs(), "{i1} vs {i2}");
    }

    #[test]
    fn two_island_pump_is_enumerable() {
        // lead—i1—i2—ground chain: 2 islands, window 2 → 25 states.
        let mut b = CircuitBuilder::new();
        let l = b.add_lead(10e-3);
        let i1 = b.add_island();
        let i2 = b.add_island();
        let ja = b.add_junction(l, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 1e6, 1e-18).unwrap();
        b.add_junction(i2, crate::circuit::NodeId::GROUND, 1e6, 1e-18)
            .unwrap();
        let c = b.build().unwrap();
        let me = MasterEquation::new(&c, 2.0, 2).unwrap();
        assert_eq!(me.num_states(), 25);
        let sol = me.stationary().unwrap();
        assert!(sol.junction_current(ja).is_finite());
    }

    #[test]
    fn state_space_explosion_is_reported() {
        // 12 islands × window 3 → 7^12 ≈ 1.4e10 states: the paper's
        // "infinite number of states" infeasibility, surfaced as an
        // error telling the user to use Monte Carlo.
        let mut b = CircuitBuilder::new();
        let l = b.add_lead(1e-3);
        let mut prev = l;
        for _ in 0..12 {
            let i = b.add_island();
            b.add_junction(prev, i, 1e6, 1e-18).unwrap();
            prev = i;
        }
        b.add_junction(prev, crate::circuit::NodeId::GROUND, 1e6, 1e-18)
            .unwrap();
        let c = b.build().unwrap();
        let err = MasterEquation::new(&c, 1.0, 3).unwrap_err();
        assert!(err.to_string().contains("Monte Carlo"));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (c, _) = paper_set(0.0, 0.0, 0.0);
        assert!(MasterEquation::new(&c, f64::NAN, 2).is_err());
        assert!(MasterEquation::new(&c, 1.0, -1).is_err());
    }
}
