//! Compute backends: the hot-loop kernels of the adaptive solver
//! behind a trait, with a scalar reference implementation and a
//! SIMD-friendly chunked implementation working on flat
//! structure-of-arrays buffers ([`crate::circuit::JunctionSoA`]).
//!
//! ## Contract
//!
//! Every kernel that feeds a simulation trajectory — [`Backend::matvec`],
//! [`Backend::test_factors`], [`Backend::delta_w_all`],
//! [`Backend::tunnel_rates`], [`Backend::fenwick_rebuild`] — is
//! **bit-identical** across backends: for the same inputs the chunked
//! path produces exactly the bytes the scalar path produces, junction
//! for junction, because
//!
//! * the transposed matrices ([`Circuit::transposed_inverse_capacitance`],
//!   [`Circuit::transposed_lead_response`]) are bitwise copies of the
//!   row-major originals, so a gather from a transposed column reads
//!   the same bits as the strided row-major read;
//! * per-lane arithmetic replicates the scalar expressions operand for
//!   operand (the [`JunctionSoA`] charging coefficients are
//!   precomputed with `delta_w`'s exact operand order);
//! * chunking never reassociates: a chunk is a loop-blocking of
//!   independent per-junction computations, and sums that feed
//!   trajectories (matvec rows, Fenwick folds) keep the sequential
//!   fold order of the scalar path.
//!
//! The one deliberately reassociated kernel is [`Backend::dot`]: the
//! chunked implementation accumulates in `width` independent lanes and
//! folds the lanes at the end. Its contract is ULP-bounded, not
//! bitwise: for inputs of length `n` the result differs from the
//! sequential fold by at most `n · ε · Σ|aᵢ·bᵢ|` (standard pairwise-
//! style error bound, checked by test). It is therefore **never** used
//! on a trajectory path — only for diagnostics and reductions whose
//! consumers tolerate rounding (see `docs/performance.md`).
//!
//! ## Error ordering
//!
//! On the non-error path the batched kernels are bit-identical. On
//! *error* paths (non-finite ΔW or rate, which terminate the
//! simulation) the batched rewrite computes pure float lanes for
//! junctions past the failing one before the screen runs; the
//! surfaced error — first failing junction in ascending order, same
//! fault stage — is identical, but dead scratch state may differ.

use semsim_linalg::Matrix;

use crate::circuit::{Circuit, JunctionId, JunctionSoA, NodeId};
use crate::constants::E_CHARGE;
use crate::energy::{lead_step_delta, potential_delta};
use crate::fenwick::FenwickTree;
use crate::solver::TunnelModel;

/// A replay-log entry with its node references pre-resolved to flat
/// indices — the SoA form the adaptive solver's lazy potential refresh
/// hands to [`Backend::replay_fold`]. Resolving once at log-push time
/// removes the per-(island × entry) node-kind lookups the historical
/// replay loop paid.
#[derive(Debug, Clone, Copy)]
pub struct ReplayEntry {
    /// Source island of a transfer ([`JunctionSoA::NONE`] for a lead
    /// endpoint, or for a lead step).
    pub from: u32,
    /// Destination island of a transfer ([`JunctionSoA::NONE`] for a
    /// lead endpoint, or for a lead step).
    pub to: u32,
    /// Stepped lead index; [`JunctionSoA::NONE`] marks a transfer.
    pub lead: u32,
    /// `count·e` (C) for a transfer — pre-multiplied in the scalar
    /// path's exact order — or `dv` (V) for a lead step.
    pub coef: f64,
}

impl ReplayEntry {
    /// Resolves a disturbance against the circuit's node table once,
    /// at log-push time. The transfer coefficient pre-multiplies
    /// `count as f64 * E_CHARGE` — the exact first factor of
    /// [`crate::energy::potential_delta`]'s product.
    pub fn resolve(circuit: &Circuit, d: Disturbance) -> Self {
        let idx = |n: NodeId| -> u32 {
            circuit
                .island_index(n)
                .map_or(JunctionSoA::NONE, |i| i as u32)
        };
        match d {
            Disturbance::Transfer { from, to, count } => ReplayEntry {
                from: idx(from),
                to: idx(to),
                lead: JunctionSoA::NONE,
                coef: count as f64 * E_CHARGE,
            },
            Disturbance::Step { lead, dv } => ReplayEntry {
                from: JunctionSoA::NONE,
                to: JunctionSoA::NONE,
                lead: lead as u32,
                coef: dv,
            },
        }
    }

    /// Exact potential delta this entry causes on the island whose
    /// `C⁻¹` row is `cinv_row` and lead-response row is `lead_row` —
    /// operand for operand the expression of
    /// [`crate::energy::potential_delta`] /
    /// [`crate::energy::lead_step_delta`].
    #[inline(always)]
    pub fn delta(&self, cinv_row: &[f64], lead_row: &[f64]) -> f64 {
        if self.lead != JunctionSoA::NONE {
            return lead_row[self.lead as usize] * self.coef;
        }
        let xf = if self.from != JunctionSoA::NONE {
            cinv_row[self.from as usize]
        } else {
            0.0
        };
        let xt = if self.to != JunctionSoA::NONE {
            cinv_row[self.to as usize]
        } else {
            0.0
        };
        self.coef * ((0.0 + xf) - xt)
    }
}

/// A state disturbance, as seen by the per-event testing kernel.
/// Mirrors the adaptive solver's replay-log entry.
#[derive(Debug, Clone, Copy)]
pub enum Disturbance {
    /// `count` electrons moved from `from` to `to`.
    Transfer {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Electrons moved (2 for a Cooper pair).
        count: i64,
    },
    /// Lead `lead` stepped by `dv` volts.
    Step {
        /// Lead index.
        lead: usize,
        /// Voltage step (V).
        dv: f64,
    },
}

/// Backend selection, carried by `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// Per-item reference kernels — the historical scalar path.
    #[default]
    Scalar,
    /// Fixed-width chunked kernels over SoA buffers.
    Chunked {
        /// Chunk width (lanes); must be ≥ 1.
        width: usize,
    },
}

impl BackendSpec {
    /// Default lane count of the chunked backend.
    pub const DEFAULT_CHUNK_WIDTH: usize = 8;

    /// The chunked backend at its default width.
    pub fn chunked() -> Self {
        BackendSpec::Chunked {
            width: Self::DEFAULT_CHUNK_WIDTH,
        }
    }

    /// Parses a CLI backend string: `scalar`, `chunked`, or
    /// `chunked:<width>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(BackendSpec::Scalar),
            "chunked" => Ok(Self::chunked()),
            _ => match s.strip_prefix("chunked:") {
                Some(w) => match w.parse::<usize>() {
                    Ok(width) if width >= 1 => Ok(BackendSpec::Chunked { width }),
                    _ => Err(format!("invalid chunk width '{w}' (need an integer ≥ 1)")),
                },
                None => Err(format!(
                    "unknown backend '{s}' (expected scalar, chunked, or chunked:<width>)"
                )),
            },
        }
    }

    /// Human-readable name (`scalar` / `chunked:<width>`).
    pub fn label(&self) -> String {
        match self {
            BackendSpec::Scalar => "scalar".to_string(),
            BackendSpec::Chunked { width } => format!("chunked:{width}"),
        }
    }

    /// Instantiates the backend.
    pub fn instantiate(&self) -> Box<dyn Backend> {
        match *self {
            BackendSpec::Scalar => Box::new(ScalarBackend),
            BackendSpec::Chunked { width } => Box::new(ChunkedBackend::new(width)),
        }
    }
}

/// The compute-backend trait: every kernel of the adaptive hot loop
/// that is worth batching. See the module docs for the bit-identity /
/// ULP contract per kernel.
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Backend name for logs and bench records.
    fn name(&self) -> &'static str;

    /// Dense matvec `out = m·x` (clears `out` first). Bit-identical
    /// across backends: each element is the sequential left fold of
    /// `semsim_linalg::dot`.
    fn matvec(&self, m: &Matrix, x: &[f64], out: &mut Vec<f64>);

    /// Per-event testing kernel (Algorithm 1 lines 3–5) over the
    /// disturbance's dependency neighbourhood `tested` (ascending).
    ///
    /// For each tested junction computes the updated testing factor
    /// `b = b₀ + e·(δφ_a − δφ_b)`; junctions crossing the gate
    /// `|b| ≥ θ·min(|ΔW'_fw|, |ΔW'_bw|)` are appended to `flagged`
    /// (ascending) with `b₀` left untouched for the caller's rate
    /// recompute to reset; unflagged junctions get `b₀ ← b`.
    /// Bit-identical across backends.
    #[allow(clippy::too_many_arguments)]
    fn test_factors(
        &self,
        circuit: &Circuit,
        entry: Disturbance,
        tested: &[JunctionId],
        threshold: f64,
        dw_fw: &[f64],
        dw_bw: &[f64],
        b0: &mut [f64],
        flagged: &mut Vec<JunctionId>,
    );

    /// Batched ΔW kernel: forward and backward single-electron
    /// free-energy changes of every junction from the SoA buffers and
    /// the current potentials. Bit-identical to
    /// [`crate::energy::delta_w`] per junction.
    fn delta_w_all(
        &self,
        circuit: &Circuit,
        phi: &[f64],
        lead_voltages: &[f64],
        dw_fw: &mut [f64],
        dw_bw: &mut [f64],
    );

    /// Batched directed-rate kernel: `out[i] = Γ(dw[i], resistance[i])`
    /// (appends to `out` after clearing). Bit-identical per lane to
    /// `SolverContext::directed_rate`.
    fn tunnel_rates(
        &self,
        model: &TunnelModel,
        kt: f64,
        dw: &[f64],
        resistance: &[f64],
        out: &mut Vec<f64>,
    );

    /// Sequential fold of a replay-log window into one island's cached
    /// potential: returns `phi` after adding each entry's exact delta
    /// in log order. `cinv_row` is the island's dense `C⁻¹` row,
    /// `lead_row` its lead-response row. Bit-identical across
    /// backends: per-entry deltas are independent pure products
    /// ([`ReplayEntry::delta`]) and the accumulation keeps strict log
    /// order, so batching the products cannot reassociate the fold.
    fn replay_fold(
        &self,
        cinv_row: &[f64],
        lead_row: &[f64],
        entries: &[ReplayEntry],
        phi: f64,
    ) -> f64;

    /// Rebuilds a **zeroed** Fenwick tree to hold `weights` in slots
    /// `0..weights.len()`. Bit-identical to setting the slots one at a
    /// time in ascending order from the zero state (the canonical
    /// order `rewrite_all_rates` uses); only valid from zero — see
    /// [`FenwickTree::rebuild_from_zero`].
    fn fenwick_rebuild(&self, tree: &mut FenwickTree, weights: &[f64]);

    /// Dot product. **The one ULP-bounded kernel**: chunked backends
    /// may reassociate into independent accumulator lanes, so the
    /// result can differ from the sequential fold within
    /// `n·ε·Σ|aᵢ·bᵢ|`. Not used on trajectory paths.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64;
}

/// Potential change of one junction terminal for a transfer, from the
/// transposed-`C⁻¹` columns of the event's endpoints. Replicates
/// [`potential_delta`] operand for operand.
#[inline(always)]
fn transfer_lane(ke: f64, island: u32, colf: Option<&[f64]>, colt: Option<&[f64]>) -> f64 {
    if island == JunctionSoA::NONE {
        return 0.0;
    }
    let k = island as usize;
    let mut d = 0.0;
    if let Some(cf) = colf {
        d += cf[k];
    }
    if let Some(ct) = colt {
        d -= ct[k];
    }
    ke * d
}

/// Potential change of one junction terminal for a lead step, from the
/// transposed lead-response row. Replicates the scalar node delta.
#[inline(always)]
fn step_lane(island: u32, terminal_lead: u32, lead: u32, dv: f64, lr: &[f64]) -> f64 {
    if island != JunctionSoA::NONE {
        lr[island as usize] * dv
    } else if terminal_lead == lead {
        dv
    } else {
        0.0
    }
}

/// Terminal potential from the SoA index pair: cached island potential
/// for islands, instantaneous voltage for leads.
#[inline(always)]
fn lane_potential(island: u32, lead: u32, phi: &[f64], lead_voltages: &[f64]) -> f64 {
    if island != JunctionSoA::NONE {
        phi[island as usize]
    } else {
        lead_voltages[lead as usize]
    }
}

/// Forward/backward ΔW of one junction from SoA lanes — the exact
/// expression of [`crate::energy::delta_w`] with `count = 1`.
#[inline(always)]
fn delta_w_lane(soa: &JunctionSoA, idx: usize, phi: &[f64], lead_voltages: &[f64]) -> (f64, f64) {
    let pa = lane_potential(soa.a_island[idx], soa.a_lead[idx], phi, lead_voltages);
    let pb = lane_potential(soa.b_island[idx], soa.b_lead[idx], phi, lead_voltages);
    let fw = E_CHARGE * (pa - pb) + 0.5 * E_CHARGE * E_CHARGE * soa.charging_fw[idx];
    let bw = E_CHARGE * (pb - pa) + 0.5 * E_CHARGE * E_CHARGE * soa.charging_bw[idx];
    (fw, bw)
}

/// Directed rate of one junction — the exact per-model expression of
/// `SolverContext::directed_rate`.
#[inline(always)]
fn rate_lane(model: &TunnelModel, kt: f64, dw: f64, resistance: f64) -> f64 {
    match model {
        TunnelModel::Normal => crate::rates::orthodox_rate(dw, kt, resistance),
        TunnelModel::Quasiparticle(table) => table.rate(dw, resistance),
    }
}

/// The reference backend: straightforward per-item loops — the
/// historical scalar hot path, kept as the oracle the chunked kernels
/// are asserted bit-identical against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matvec(&self, m: &Matrix, x: &[f64], out: &mut Vec<f64>) {
        m.mul_vec_into(x, out)
            .expect("matvec dimensions fixed at circuit build");
    }

    fn test_factors(
        &self,
        circuit: &Circuit,
        entry: Disturbance,
        tested: &[JunctionId],
        threshold: f64,
        dw_fw: &[f64],
        dw_bw: &[f64],
        b0: &mut [f64],
        flagged: &mut Vec<JunctionId>,
    ) {
        // Node deltas via the same `potential_delta`/`lead_step_delta`
        // calls the historical `test_junction` made.
        let node_delta = |node: NodeId| -> f64 {
            match entry {
                Disturbance::Transfer { from, to, count } => match circuit.island_index(node) {
                    Some(k) => potential_delta(circuit, k, from, to, count),
                    None => 0.0,
                },
                Disturbance::Step { lead, dv } => match circuit.island_index(node) {
                    Some(k) => lead_step_delta(circuit, k, lead, dv),
                    None => {
                        if circuit.lead_index(node) == Some(lead) {
                            dv
                        } else {
                            0.0
                        }
                    }
                },
            }
        };
        for &j in tested {
            let junction = circuit.junction(j);
            let dp_a = node_delta(junction.node_a);
            let dp_b = node_delta(junction.node_b);
            let idx = j.index();
            let b = b0[idx] + E_CHARGE * (dp_a - dp_b);
            let gate = threshold * dw_fw[idx].abs().min(dw_bw[idx].abs());
            if b.abs() >= gate {
                flagged.push(j);
            } else {
                b0[idx] = b;
            }
        }
    }

    fn delta_w_all(
        &self,
        circuit: &Circuit,
        phi: &[f64],
        lead_voltages: &[f64],
        dw_fw: &mut [f64],
        dw_bw: &mut [f64],
    ) {
        let soa = circuit.junction_soa();
        for idx in 0..circuit.num_junctions() {
            let (fw, bw) = delta_w_lane(soa, idx, phi, lead_voltages);
            dw_fw[idx] = fw;
            dw_bw[idx] = bw;
        }
    }

    fn tunnel_rates(
        &self,
        model: &TunnelModel,
        kt: f64,
        dw: &[f64],
        resistance: &[f64],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            dw.iter()
                .zip(resistance)
                .map(|(&w, &r)| rate_lane(model, kt, w, r)),
        );
    }

    fn replay_fold(
        &self,
        cinv_row: &[f64],
        lead_row: &[f64],
        entries: &[ReplayEntry],
        phi: f64,
    ) -> f64 {
        let mut phi = phi;
        for e in entries {
            phi += e.delta(cinv_row, lead_row);
        }
        phi
    }

    fn fenwick_rebuild(&self, tree: &mut FenwickTree, weights: &[f64]) {
        for (slot, &w) in weights.iter().enumerate() {
            tree.set(slot, w);
        }
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        semsim_linalg::dot(a, b)
    }
}

/// The chunked backend: fixed-width lanes over the SoA buffers, with
/// per-event gathers against the transposed (column-contiguous)
/// matrices. Bit-identical to [`ScalarBackend`] on every trajectory
/// kernel; [`Backend::dot`] is ULP-bounded (lane reassociation).
#[derive(Debug, Clone, Copy)]
pub struct ChunkedBackend {
    width: usize,
}

impl ChunkedBackend {
    /// Largest accumulator-lane count [`Backend::dot`] uses; widths
    /// above this still chunk the junction kernels at full width.
    pub const MAX_DOT_LANES: usize = 8;

    /// Stack-buffer cap for [`Backend::replay_fold`] delta lanes;
    /// wider configurations fold in blocks of this size.
    pub const MAX_REPLAY_LANES: usize = 64;

    /// Gather count below which [`Backend::replay_fold`] skips the
    /// row prefetch (a short window touches too little of the row for
    /// streaming it in to pay off).
    pub const PREFETCH_MIN_GATHERS: usize = 64;

    /// A chunked backend with `width` lanes (clamped to ≥ 1).
    pub fn new(width: usize) -> Self {
        ChunkedBackend {
            width: width.max(1),
        }
    }

    /// The configured chunk width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Backend for ChunkedBackend {
    fn name(&self) -> &'static str {
        "chunked"
    }

    fn matvec(&self, m: &Matrix, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(m.cols(), x.len(), "matvec dimension mismatch");
        out.clear();
        out.reserve(m.rows());
        // Row-blocked: each block of `width` rows reuses the cached x
        // while per-row sums keep the scalar fold order (bit-identity).
        let data = m.as_slice();
        if m.cols() == 0 {
            // Degenerate island-free circuit: every row sum is empty.
            out.resize(m.rows(), 0.0);
            return;
        }
        for rows in data.chunks(m.cols() * self.width) {
            for row in rows.chunks_exact(m.cols()) {
                out.push(semsim_linalg::dot(row, x));
            }
        }
    }

    fn test_factors(
        &self,
        circuit: &Circuit,
        entry: Disturbance,
        tested: &[JunctionId],
        threshold: f64,
        dw_fw: &[f64],
        dw_bw: &[f64],
        b0: &mut [f64],
        flagged: &mut Vec<JunctionId>,
    ) {
        let soa = circuit.junction_soa();
        match entry {
            Disturbance::Transfer { from, to, count } => {
                let cinv_t = circuit.transposed_inverse_capacitance();
                // Resolve the two event columns once; every lane then
                // gathers from these L1-resident slices instead of
                // striding across the row-major C⁻¹.
                let colf = circuit.island_index(from).map(|f| cinv_t.row(f));
                let colt = circuit.island_index(to).map(|t| cinv_t.row(t));
                let ke = count as f64 * E_CHARGE;
                for chunk in tested.chunks(self.width) {
                    for &j in chunk {
                        let idx = j.index();
                        let dp_a = transfer_lane(ke, soa.a_island[idx], colf, colt);
                        let dp_b = transfer_lane(ke, soa.b_island[idx], colf, colt);
                        let b = b0[idx] + E_CHARGE * (dp_a - dp_b);
                        let gate = threshold * dw_fw[idx].abs().min(dw_bw[idx].abs());
                        if b.abs() >= gate {
                            flagged.push(j);
                        } else {
                            b0[idx] = b;
                        }
                    }
                }
            }
            Disturbance::Step { lead, dv } => {
                let lr = circuit.transposed_lead_response().row(lead);
                let lead32 = lead as u32;
                for chunk in tested.chunks(self.width) {
                    for &j in chunk {
                        let idx = j.index();
                        let dp_a = step_lane(soa.a_island[idx], soa.a_lead[idx], lead32, dv, lr);
                        let dp_b = step_lane(soa.b_island[idx], soa.b_lead[idx], lead32, dv, lr);
                        let b = b0[idx] + E_CHARGE * (dp_a - dp_b);
                        let gate = threshold * dw_fw[idx].abs().min(dw_bw[idx].abs());
                        if b.abs() >= gate {
                            flagged.push(j);
                        } else {
                            b0[idx] = b;
                        }
                    }
                }
            }
        }
    }

    fn delta_w_all(
        &self,
        circuit: &Circuit,
        phi: &[f64],
        lead_voltages: &[f64],
        dw_fw: &mut [f64],
        dw_bw: &mut [f64],
    ) {
        let soa = circuit.junction_soa();
        let nj = circuit.num_junctions();
        let mut start = 0;
        while start < nj {
            let end = (start + self.width).min(nj);
            for idx in start..end {
                let (fw, bw) = delta_w_lane(soa, idx, phi, lead_voltages);
                dw_fw[idx] = fw;
                dw_bw[idx] = bw;
            }
            start = end;
        }
    }

    fn tunnel_rates(
        &self,
        model: &TunnelModel,
        kt: f64,
        dw: &[f64],
        resistance: &[f64],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(dw.len());
        match model {
            TunnelModel::Normal => {
                for (ws, rs) in dw.chunks(self.width).zip(resistance.chunks(self.width)) {
                    crate::rates::orthodox_rates(ws, rs, kt, out);
                }
            }
            TunnelModel::Quasiparticle(table) => {
                for (ws, rs) in dw.chunks(self.width).zip(resistance.chunks(self.width)) {
                    table.rates_batch(ws, rs, out);
                }
            }
        }
    }

    fn replay_fold(
        &self,
        cinv_row: &[f64],
        lead_row: &[f64],
        entries: &[ReplayEntry],
        phi: f64,
    ) -> f64 {
        // The replay window gathers at scattered columns of one `C⁻¹`
        // row that has usually fallen out of cache since the island was
        // last refreshed. Stream the whole row in ahead of the gathers:
        // sequential prefetch beats hundreds of dependent random misses
        // when the window is long enough to touch most of the row.
        #[cfg(target_arch = "x86_64")]
        if entries.len() * 2 >= Self::PREFETCH_MIN_GATHERS {
            const LINE: usize = 64 / std::mem::size_of::<f64>();
            for chunk in cinv_row.chunks(LINE) {
                // SAFETY: prefetch has no memory effects; the pointer
                // is in-bounds of the row slice.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        chunk.as_ptr() as *const i8,
                        std::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
        // Per-entry deltas are independent products: compute a chunk of
        // lanes, then fold the lanes in strict log order — the same
        // values added in the same sequence as the scalar reference.
        let lanes = self.width.min(Self::MAX_REPLAY_LANES);
        let mut buf = [0.0f64; Self::MAX_REPLAY_LANES];
        let mut phi = phi;
        for chunk in entries.chunks(lanes.max(1)) {
            for (slot, e) in buf.iter_mut().zip(chunk) {
                *slot = e.delta(cinv_row, lead_row);
            }
            for &d in buf.iter().take(chunk.len()) {
                phi += d;
            }
        }
        phi
    }

    fn fenwick_rebuild(&self, tree: &mut FenwickTree, weights: &[f64]) {
        tree.rebuild_from_zero(weights);
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        let lanes = self.width.min(Self::MAX_DOT_LANES);
        if lanes <= 1 {
            return semsim_linalg::dot(a, b);
        }
        let mut acc = [0.0f64; Self::MAX_DOT_LANES];
        let mut chunks_a = a.chunks_exact(lanes);
        let mut chunks_b = b.chunks_exact(lanes);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            for k in 0..lanes {
                acc[k] += ca[k] * cb[k];
            }
        }
        let mut tail = semsim_linalg::dot(chunks_a.remainder(), chunks_b.remainder());
        for &lane in acc.iter().take(lanes) {
            tail += lane;
        }
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::constants::K_B;

    /// Three coupled islands with a gate — enough structure for every
    /// kernel to exercise island and lead terminals.
    fn rig() -> (Circuit, NodeId, NodeId) {
        let mut b = CircuitBuilder::new();
        let vdd = b.add_lead(8e-3);
        let gate = b.add_lead(1e-3);
        let i1 = b.add_island();
        let i2 = b.add_island_with_charge(0.2);
        let i3 = b.add_island();
        b.add_junction(vdd, i1, 1e6, 1e-18).unwrap();
        b.add_junction(i1, i2, 2e6, 1.5e-18).unwrap();
        b.add_junction(i2, i3, 1e6, 1e-18).unwrap();
        b.add_junction(i3, NodeId::GROUND, 3e6, 2e-18).unwrap();
        b.add_capacitor(gate, i2, 3e-18).unwrap();
        b.add_capacitor(i1, i3, 0.5e-18).unwrap();
        (b.build().unwrap(), i1, i2)
    }

    fn widths() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 8, 64]
    }

    #[test]
    fn matvec_is_bit_identical_across_backends() {
        let (c, _, _) = rig();
        let m = c.inverse_capacitance();
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 + 0.5) * 1e-19).collect();
        let mut reference = Vec::new();
        ScalarBackend.matvec(m, &x, &mut reference);
        for w in widths() {
            let mut out = vec![42.0];
            ChunkedBackend::new(w).matvec(m, &x, &mut out);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "width {w}");
            }
        }
    }

    #[test]
    fn test_factors_bit_identical_for_transfers_and_steps() {
        let (c, i1, i2) = rig();
        let tested: Vec<JunctionId> = c.junction_ids().collect();
        let dw_fw: Vec<f64> = (0..tested.len())
            .map(|i| 1e-22 * (i as f64 + 1.0))
            .collect();
        let dw_bw: Vec<f64> = (0..tested.len())
            .map(|i| -0.7e-22 * (i as f64 + 1.0))
            .collect();
        let entries = [
            Disturbance::Transfer {
                from: i1,
                to: i2,
                count: 1,
            },
            Disturbance::Transfer {
                from: NodeId::GROUND,
                to: i2,
                count: 2,
            },
            Disturbance::Step { lead: 1, dv: 3e-3 },
            Disturbance::Step { lead: 2, dv: -2e-3 },
        ];
        for entry in entries {
            // Threshold small enough that some junctions flag and some
            // accumulate — both branches exercised.
            let threshold = 0.4;
            let mut b0_ref: Vec<f64> = (0..tested.len()).map(|i| 1e-24 * i as f64).collect();
            let mut flagged_ref = Vec::new();
            ScalarBackend.test_factors(
                &c,
                entry,
                &tested,
                threshold,
                &dw_fw,
                &dw_bw,
                &mut b0_ref,
                &mut flagged_ref,
            );
            for w in widths() {
                let mut b0: Vec<f64> = (0..tested.len()).map(|i| 1e-24 * i as f64).collect();
                let mut flagged = Vec::new();
                ChunkedBackend::new(w).test_factors(
                    &c,
                    entry,
                    &tested,
                    threshold,
                    &dw_fw,
                    &dw_bw,
                    &mut b0,
                    &mut flagged,
                );
                assert_eq!(flagged, flagged_ref, "width {w}, entry {entry:?}");
                for (a, b) in b0.iter().zip(&b0_ref) {
                    assert_eq!(a.to_bits(), b.to_bits(), "width {w}, entry {entry:?}");
                }
            }
        }
    }

    #[test]
    fn delta_w_all_matches_scalar_delta_w_bitwise() {
        let (c, _, _) = rig();
        let mut state = crate::energy::CircuitState::new(&c);
        state.recompute_potentials(&c);
        let nj = c.num_junctions();
        let phi = state.island_potentials().to_vec();
        let volts = state.lead_voltages().to_vec();
        // Oracle: the scalar energy entry point.
        let expect: Vec<(f64, f64)> = c
            .junctions()
            .iter()
            .map(|j| {
                (
                    crate::energy::delta_w(&c, &state, j.node_a, j.node_b, 1),
                    crate::energy::delta_w(&c, &state, j.node_b, j.node_a, 1),
                )
            })
            .collect();
        for w in widths() {
            let (mut fw, mut bw) = (vec![0.0; nj], vec![0.0; nj]);
            ChunkedBackend::new(w).delta_w_all(&c, &phi, &volts, &mut fw, &mut bw);
            let (mut sfw, mut sbw) = (vec![0.0; nj], vec![0.0; nj]);
            ScalarBackend.delta_w_all(&c, &phi, &volts, &mut sfw, &mut sbw);
            for idx in 0..nj {
                assert_eq!(fw[idx].to_bits(), expect[idx].0.to_bits(), "width {w}");
                assert_eq!(bw[idx].to_bits(), expect[idx].1.to_bits(), "width {w}");
                assert_eq!(sfw[idx].to_bits(), expect[idx].0.to_bits());
                assert_eq!(sbw[idx].to_bits(), expect[idx].1.to_bits());
            }
        }
    }

    #[test]
    fn tunnel_rates_bit_identical_including_tails() {
        let kt = K_B * 4.2;
        let dw: Vec<f64> = (0..13).map(|i| (i as f64 - 6.0) * 3e-23).collect();
        let rs: Vec<f64> = (0..13).map(|i| 1e6 + 1e5 * i as f64).collect();
        let mut reference = Vec::new();
        ScalarBackend.tunnel_rates(&TunnelModel::Normal, kt, &dw, &rs, &mut reference);
        for w in widths() {
            let mut out = Vec::new();
            ChunkedBackend::new(w).tunnel_rates(&TunnelModel::Normal, kt, &dw, &rs, &mut out);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "width {w}");
            }
        }
    }

    #[test]
    fn replay_fold_bit_identical_across_widths() {
        let (c, i1, i2) = rig();
        // A log mixing transfers (island↔island, lead↔island,
        // lead↔lead, multi-electron) and lead steps, long enough for
        // non-divisor widths to leave tails and to cross the chunked
        // prefetch threshold.
        let mut entries = Vec::new();
        for k in 0..67 {
            let d = match k % 5 {
                0 => Disturbance::Transfer {
                    from: i1,
                    to: i2,
                    count: 1,
                },
                1 => Disturbance::Transfer {
                    from: NodeId::GROUND,
                    to: i1,
                    count: 2,
                },
                2 => Disturbance::Transfer {
                    from: i2,
                    to: NodeId::GROUND,
                    count: -1,
                },
                3 => Disturbance::Step {
                    lead: 1,
                    dv: 1e-4 * (k as f64 - 30.0),
                },
                _ => Disturbance::Transfer {
                    from: NodeId::GROUND,
                    to: NodeId(1),
                    count: 1,
                },
            };
            entries.push(ReplayEntry::resolve(&c, d));
        }
        for island in 0..c.num_islands() {
            let cinv_row = c.inverse_capacitance().row(island);
            let lead_row = c.lead_response().row(island);
            // Oracle: the historical per-entry sequential loop over the
            // scalar energy kernels.
            let mut expect = 1e-5 * (island as f64 + 1.0);
            for (k, e) in entries.iter().enumerate() {
                let d = match k % 5 {
                    0 => potential_delta(&c, island, i1, i2, 1),
                    1 => potential_delta(&c, island, NodeId::GROUND, i1, 2),
                    2 => potential_delta(&c, island, i2, NodeId::GROUND, -1),
                    3 => lead_step_delta(&c, island, 1, 1e-4 * (k as f64 - 30.0)),
                    _ => potential_delta(&c, island, NodeId::GROUND, NodeId(1), 1),
                };
                assert_eq!(
                    e.delta(cinv_row, lead_row).to_bits(),
                    d.to_bits(),
                    "entry {k} island {island}"
                );
                expect += d;
            }
            let phi0 = 1e-5 * (island as f64 + 1.0);
            let scalar = ScalarBackend.replay_fold(cinv_row, lead_row, &entries, phi0);
            assert_eq!(scalar.to_bits(), expect.to_bits(), "island {island}");
            for w in widths() {
                let chunked =
                    ChunkedBackend::new(w).replay_fold(cinv_row, lead_row, &entries, phi0);
                assert_eq!(
                    chunked.to_bits(),
                    expect.to_bits(),
                    "width {w} island {island}"
                );
            }
        }
    }

    #[test]
    fn fenwick_rebuild_bit_identical_to_sequential_sets() {
        let ws: Vec<f64> = (0..11).map(|i| (i % 4) as f64 * 0.75).collect();
        let mut reference = FenwickTree::new(16);
        ScalarBackend.fenwick_rebuild(&mut reference, &ws);
        let mut chunked = FenwickTree::new(16);
        ChunkedBackend::new(4).fenwick_rebuild(&mut chunked, &ws);
        for slot in 0..16 {
            assert_eq!(chunked.get(slot).to_bits(), reference.get(slot).to_bits());
        }
        for i in 0..16 {
            assert_eq!(
                chunked.prefix_sum(i).to_bits(),
                reference.prefix_sum(i).to_bits()
            );
        }
        assert_eq!(chunked.total().to_bits(), reference.total().to_bits());
    }

    #[test]
    fn dot_is_ulp_bounded_not_necessarily_bitwise() {
        // The documented contract: |chunked − sequential| ≤ n·ε·Σ|aᵢbᵢ|.
        let n = 1003;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) * 1e-3)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 53 % 89) as f64 - 44.0) * 1e-2)
            .collect();
        let reference = semsim_linalg::dot(&a, &b);
        let abs_sum: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = n as f64 * f64::EPSILON * abs_sum;
        for w in widths() {
            let d = ChunkedBackend::new(w).dot(&a, &b);
            assert!(
                (d - reference).abs() <= bound,
                "width {w}: {d} vs {reference} (bound {bound:e})"
            );
        }
        assert_eq!(ScalarBackend.dot(&a, &b).to_bits(), reference.to_bits());
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(BackendSpec::parse("scalar").unwrap(), BackendSpec::Scalar);
        assert_eq!(
            BackendSpec::parse("chunked").unwrap(),
            BackendSpec::Chunked {
                width: BackendSpec::DEFAULT_CHUNK_WIDTH
            }
        );
        assert_eq!(
            BackendSpec::parse("chunked:3").unwrap(),
            BackendSpec::Chunked { width: 3 }
        );
        assert!(BackendSpec::parse("chunked:0").is_err());
        assert!(BackendSpec::parse("simd").is_err());
        assert_eq!(BackendSpec::Chunked { width: 3 }.label(), "chunked:3");
        assert_eq!(BackendSpec::default().label(), "scalar");
        assert_eq!(BackendSpec::Scalar.instantiate().name(), "scalar");
        assert_eq!(BackendSpec::chunked().instantiate().name(), "chunked");
    }
}
