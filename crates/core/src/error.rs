use std::error::Error;
use std::fmt;

use semsim_linalg::LinalgError;

use crate::health::FaultStage;

/// Errors produced by the SEMSIM core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A node id referenced a node that does not exist.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// A junction id referenced a junction that does not exist.
    UnknownJunction {
        /// The offending junction index.
        junction: usize,
    },
    /// A lead id referenced a lead that does not exist.
    UnknownLead {
        /// The offending lead index.
        lead: usize,
    },
    /// A component value was non-positive or non-finite.
    InvalidComponent {
        /// Description of the offending component parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Both endpoints of a two-terminal element were the same node.
    SelfLoop {
        /// The node connected to itself.
        node: usize,
    },
    /// The circuit has no tunnel junctions, so no dynamics exist.
    NoJunctions,
    /// The island capacitance matrix was singular — an island is not
    /// capacitively tied (even indirectly) to any lead or other island.
    FloatingIsland(LinalgError),
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Description of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Every tunnel rate is zero and no stimulus is pending: the circuit
    /// is frozen in Coulomb blockade and simulated time cannot advance.
    BlockadeStall {
        /// Simulated time at which the stall occurred (s).
        time: f64,
    },
    /// A health guard caught a NaN/Inf/negative value at the point of
    /// production, before it could poison the rate table or a `Record`.
    NumericalFault {
        /// Pipeline stage that produced the value.
        stage: FaultStage,
        /// Index of the faulting junction (or island / cotunnel path,
        /// depending on `stage`), when one is identifiable.
        junction: Option<usize>,
        /// The rejected value.
        value: f64,
    },
    /// A checkpoint byte stream failed structural validation (bad magic,
    /// unsupported version, truncation, or checksum mismatch).
    CheckpointCorrupt {
        /// What failed to validate.
        what: &'static str,
    },
    /// A structurally valid checkpoint does not describe this
    /// simulation (different circuit shape or solver configuration).
    CheckpointMismatch {
        /// The mismatching quantity.
        what: &'static str,
        /// Value required by the running simulation.
        expected: u64,
        /// Value recorded in the checkpoint.
        found: u64,
    },
    /// A parallel task panicked. The panic was caught at the task
    /// boundary ([`crate::par`]), converted into this error, and the
    /// sibling tasks ran to completion — a panic never tears down the
    /// batch.
    TaskPanicked {
        /// Index of the panicking task.
        task: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A journal header failed structural validation (bad magic,
    /// unsupported version, truncation, or checksum mismatch). Corrupt
    /// *records* are not errors — the valid prefix is kept and the tail
    /// discarded (see [`crate::journal`]).
    JournalCorrupt {
        /// What failed to validate.
        what: &'static str,
    },
    /// A journal was written by a newer (or otherwise unknown) format
    /// revision. Distinct from [`CoreError::JournalCorrupt`] so callers
    /// can tell version skew ("upgrade the reader") from rot ("the file
    /// is damaged").
    JournalVersionSkew {
        /// Version recorded in the journal header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// A structurally valid journal describes a different batch (other
    /// seed, grid, run parameters, or payload kind) and cannot be
    /// resumed against this one.
    JournalMismatch {
        /// The mismatching quantity.
        what: &'static str,
        /// Value required by the running batch.
        expected: u64,
        /// Value recorded in the journal.
        found: u64,
    },
    /// An I/O failure while reading or writing a journal file.
    JournalIo {
        /// The formatted OS error, with the path.
        message: String,
    },
    /// An append to a journal failed mid-batch (disk full, short
    /// write, revoked handle). Distinct from [`CoreError::JournalIo`]
    /// — which covers open/read failures that abort before any work —
    /// because an append failure strikes *after* the point computed:
    /// the batch layer records it on the point and salvages the value
    /// in memory instead of aborting the sweep.
    JournalWriteFailed {
        /// The formatted OS error, with the path.
        message: String,
    },
    /// A circuit was refused before it ran because its estimated
    /// resource footprint exceeds the configured budget (CLI
    /// `--max-memory`, serve admission). Carries the estimator's
    /// breakdown so the caller can size the circuit.
    ResourceBudget {
        /// Estimated bytes the circuit needs (see
        /// [`crate::resource::ResourceEstimate`]).
        required: u64,
        /// The configured budget, bytes.
        limit: u64,
        /// Human-readable component breakdown (C⁻¹, neighborhood
        /// tables, journal buffer, …).
        breakdown: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownNode { node } => write!(f, "unknown node {node}"),
            CoreError::UnknownJunction { junction } => {
                write!(f, "unknown junction {junction}")
            }
            CoreError::UnknownLead { lead } => write!(f, "unknown lead {lead}"),
            CoreError::InvalidComponent { what, value } => {
                write!(f, "invalid component value: {what} = {value}")
            }
            CoreError::SelfLoop { node } => {
                write!(f, "element connects node {node} to itself")
            }
            CoreError::NoJunctions => write!(f, "circuit has no tunnel junctions"),
            CoreError::FloatingIsland(e) => {
                write!(f, "capacitance matrix is singular (floating island): {e}")
            }
            CoreError::InvalidConfig { what, value } => {
                write!(f, "invalid configuration: {what} = {value}")
            }
            CoreError::BlockadeStall { time } => {
                write!(
                    f,
                    "all tunnel rates are zero at t = {time:.3e} s (Coulomb blockade stall)"
                )
            }
            CoreError::NumericalFault {
                stage,
                junction,
                value,
            } => match junction {
                Some(j) => write!(f, "numerical fault in {stage} (index {j}): value {value}"),
                None => write!(f, "numerical fault in {stage}: value {value}"),
            },
            CoreError::CheckpointCorrupt { what } => {
                write!(f, "corrupt checkpoint: {what}")
            }
            CoreError::CheckpointMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "checkpoint does not match this simulation: {what} \
                     (simulation has {expected}, checkpoint has {found})"
                )
            }
            CoreError::TaskPanicked { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
            CoreError::JournalCorrupt { what } => {
                write!(f, "corrupt journal: {what}")
            }
            CoreError::JournalVersionSkew { found, supported } => {
                write!(
                    f,
                    "journal version skew: file is version {found}, \
                     this build reads up to version {supported}"
                )
            }
            CoreError::JournalMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "journal does not match this batch: {what} \
                     (batch has {expected}, journal has {found})"
                )
            }
            CoreError::JournalIo { message } => {
                write!(f, "journal I/O error: {message}")
            }
            CoreError::JournalWriteFailed { message } => {
                write!(f, "journal write failed: {message}")
            }
            CoreError::ResourceBudget {
                required,
                limit,
                breakdown,
            } => {
                write!(
                    f,
                    "resource budget exceeded: circuit needs an estimated \
                     {required} bytes but the limit is {limit} bytes ({breakdown})"
                )
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::FloatingIsland(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::FloatingIsland(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnknownNode { node: 3 }.to_string(),
            "unknown node 3"
        );
        assert_eq!(
            CoreError::NoJunctions.to_string(),
            "circuit has no tunnel junctions"
        );
        let e = CoreError::InvalidComponent {
            what: "junction resistance",
            value: -1.0,
        };
        assert_eq!(
            e.to_string(),
            "invalid component value: junction resistance = -1"
        );
    }

    #[test]
    fn robustness_display_messages() {
        let e = CoreError::NumericalFault {
            stage: FaultStage::TunnelRate,
            junction: Some(3),
            value: f64::NAN,
        };
        assert_eq!(
            e.to_string(),
            "numerical fault in tunnel rate evaluation (index 3): value NaN"
        );
        assert_eq!(
            CoreError::CheckpointCorrupt { what: "checksum" }.to_string(),
            "corrupt checkpoint: checksum"
        );
        let m = CoreError::CheckpointMismatch {
            what: "islands",
            expected: 2,
            found: 5,
        };
        assert_eq!(
            m.to_string(),
            "checkpoint does not match this simulation: islands \
             (simulation has 2, checkpoint has 5)"
        );
    }

    #[test]
    fn resource_display_messages() {
        let e = CoreError::ResourceBudget {
            required: 2048,
            limit: 1024,
            breakdown: "C and C⁻¹ 1.0 KiB".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "resource budget exceeded: circuit needs an estimated \
             2048 bytes but the limit is 1024 bytes (C and C⁻¹ 1.0 KiB)"
        );
        let w = CoreError::JournalWriteFailed {
            message: "sweep.jl: No space left on device (os error 28)".to_string(),
        };
        assert_eq!(
            w.to_string(),
            "journal write failed: sweep.jl: No space left on device (os error 28)"
        );
    }

    #[test]
    fn source_chains_linalg_error() {
        let e = CoreError::FloatingIsland(LinalgError::Singular { pivot: 0 });
        assert!(e.source().is_some());
        assert!(CoreError::NoJunctions.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
