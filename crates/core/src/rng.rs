//! Vendored pseudo-random number generator (no external dependencies).
//!
//! The Monte Carlo engine needs a fast, seedable, statistically sound
//! uniform generator — nothing more. This module vendors the
//! xoshiro256++ generator (Blackman & Vigna, 2019; public domain)
//! seeded through SplitMix64, so the whole workspace builds with no
//! registry access. The generator is *not* cryptographic, which is
//! irrelevant here: tunnel-event sampling only needs equidistribution
//! and a long period (2²⁵⁶ − 1).

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use semsim_core::rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(7);
/// let u = rng.f64();
/// assert!((0.0..1.0).contains(&u));
/// // Same seed, same stream.
/// assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step — used to expand a 64-bit seed into the 256-bit
/// xoshiro state (the seeding procedure recommended by the authors).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent per-task seed from a master seed and a task
/// index (counter-based seed *splitting*). Two SplitMix64 steps fully
/// mix `(master, task)` so that nearby task indices land in unrelated
/// regions of the seed space — the seeds then expand into disjoint
/// xoshiro streams. Used by the parallel drivers in
/// [`crate::par`] so every sweep point / ensemble replica draws from
/// its own reproducible stream no matter which thread executes it.
///
/// # Example
///
/// ```
/// use semsim_core::rng::split_seed;
///
/// // Deterministic, and distinct across task indices.
/// assert_eq!(split_seed(7, 3), split_seed(7, 3));
/// assert_ne!(split_seed(7, 3), split_seed(7, 4));
/// ```
#[must_use]
pub fn split_seed(master: u64, task: u64) -> u64 {
    // First absorb the master seed, then the task counter: each
    // absorption is one full SplitMix64 avalanche, so the result is a
    // high-quality hash of the pair (this is exactly how SplitMix-style
    // splittable generators derive child streams).
    let mut s = master;
    let a = splitmix64(&mut s);
    let mut s = a ^ task.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The raw 256-bit generator state, for checkpointing. Feed it back
    /// through [`Rng::from_state`] to resume the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`Rng::state`].
    /// The all-zero state is degenerate for xoshiro (it is a fixed
    /// point); it cannot be produced by `seed_from_u64` or reached from
    /// a valid state, so it is mapped to the seed-0 state rather than
    /// returning a stuck generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            Rng { s }
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of mantissa
    /// randomness.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform random boolean.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform integer in `[range.start, range.end)` via the
    /// multiply-shift reduction (negligible bias for the range sizes
    /// used here).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let n = range.end - range.start;
        assert!(n > 0, "gen_range over an empty range");
        let r = ((self.next_u64() as u128 * n as u128) >> 64) as usize;
        range.start + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform_ish() {
        let mut r = Rng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = Rng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut r = Rng::seed_from_u64(99);
        for _ in 0..1_000 {
            r.next_u64();
        }
        let snap = r.state();
        let tail: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let mut resumed = Rng::from_state(snap);
        let tail2: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, tail2);
        assert_eq!(r, resumed);
    }

    #[test]
    fn degenerate_zero_state_is_replaced() {
        let mut r = Rng::from_state([0; 4]);
        assert_eq!(r.next_u64(), Rng::seed_from_u64(0).next_u64());
    }

    #[test]
    fn split_seed_is_deterministic_and_spreads() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        // Distinct masters and distinct tasks both change the seed.
        assert_ne!(split_seed(42, 0), split_seed(43, 0));
        assert_ne!(split_seed(42, 0), split_seed(42, 1));
        // Sequential task indices must not produce sequential seeds
        // (the whole point over `master + task`).
        let d = split_seed(0, 1).wrapping_sub(split_seed(0, 0));
        assert!(d != 1 && d != u64::MAX);
        // No duplicates over a large counter range for a fixed master.
        let mut seen = std::collections::HashSet::new();
        for t in 0..100_000u64 {
            assert!(seen.insert(split_seed(7, t)), "split_seed collision at {t}");
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = Rng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| r.bool()).count();
        assert!((heads as i64 - 5_000).abs() < 300, "{heads}");
    }
}
