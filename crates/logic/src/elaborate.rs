//! Elaboration of a gate-level netlist into a single-electron circuit.
//!
//! Every gate becomes a CMOS-style complementary network of nSETs and
//! pSETs (paper Fig. 4b): NAND = parallel pull-up pSETs over a series
//! pull-down nSET chain, NOR the dual, INV one of each. Compound gates
//! are lowered first: `AND`/`OR` to NAND/NOR + INV, `BUF` to two
//! inverters, `XOR` to the standard four-NAND network, `XNOR` to XOR +
//! INV. Each logic signal becomes an island loaded by `C_L` — the large
//! "wire" capacitance that both defines the voltage-state logic levels
//! and isolates stages from each other (what makes the paper's adaptive
//! solver effective).

use std::collections::HashMap;

use semsim_core::circuit::{Circuit, CircuitBuilder, NodeId};
use semsim_netlist::{Gate, GateKind, LogicFile};

use crate::{LogicError, SetLogicParams};

/// An elaborated logic circuit, ready for Monte Carlo simulation.
#[derive(Debug)]
pub struct Elaborated {
    /// The single-electron circuit.
    pub circuit: Circuit,
    /// Lead index of the supply `V_dd`.
    pub vdd_lead: usize,
    /// Lead index of the pSET bias `V_p`.
    pub vp_lead: usize,
    /// Lead index per primary input, in netlist order.
    pub input_leads: HashMap<String, usize>,
    /// Circuit node of every logic signal (leads for primary inputs,
    /// load islands for gate outputs).
    pub signal_nodes: HashMap<String, NodeId>,
    /// Number of SETs instantiated.
    pub set_count: usize,
    /// The parameters the circuit was built with.
    pub params: SetLogicParams,
    /// Warning-severity findings from the structural checks (SC007
    /// unused gate outputs). Electrical warnings live on
    /// [`Circuit::check_warnings`].
    pub warnings: semsim_check::Diagnostics,
}

impl Elaborated {
    /// Number of tunnel junctions (2 per SET).
    pub fn junction_count(&self) -> usize {
        self.circuit.num_junctions()
    }

    /// Node of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::UnknownSignal`] for names not in the
    /// netlist.
    pub fn signal(&self, name: &str) -> Result<NodeId, LogicError> {
        self.signal_nodes
            .get(name)
            .copied()
            .ok_or_else(|| LogicError::UnknownSignal { name: name.into() })
    }

    /// Lead index of a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::UnknownSignal`] for non-input names.
    pub fn input_lead(&self, name: &str) -> Result<usize, LogicError> {
        self.input_leads
            .get(name)
            .copied()
            .ok_or_else(|| LogicError::UnknownSignal { name: name.into() })
    }
}

/// Lowers compound gates to the INV/NAND/NOR subset, introducing fresh
/// `$n` signals. Exposed so the analytical SPICE baseline maps exactly
/// the same transistor-level structure.
pub fn lower(logic: &LogicFile) -> Vec<Gate> {
    let mut out = Vec::new();
    let mut fresh = 0usize;
    let tmp = |fresh: &mut usize| {
        let name = format!("${fresh}");
        *fresh += 1;
        name
    };
    for g in &logic.gates {
        match g.kind {
            GateKind::Inv | GateKind::Nand | GateKind::Nor => out.push(g.clone()),
            GateKind::Buf => {
                let t = tmp(&mut fresh);
                out.push(Gate {
                    kind: GateKind::Inv,
                    output: t.clone(),
                    inputs: g.inputs.clone(),
                });
                out.push(Gate {
                    kind: GateKind::Inv,
                    output: g.output.clone(),
                    inputs: vec![t],
                });
            }
            GateKind::And | GateKind::Or => {
                let inner = if g.kind == GateKind::And {
                    GateKind::Nand
                } else {
                    GateKind::Nor
                };
                let t = tmp(&mut fresh);
                out.push(Gate {
                    kind: inner,
                    output: t.clone(),
                    inputs: g.inputs.clone(),
                });
                out.push(Gate {
                    kind: GateKind::Inv,
                    output: g.output.clone(),
                    inputs: vec![t],
                });
            }
            GateKind::Xor | GateKind::Xnor => {
                // Standard 4-NAND XOR.
                let (a, b) = (g.inputs[0].clone(), g.inputs[1].clone());
                let n1 = tmp(&mut fresh);
                let n2 = tmp(&mut fresh);
                let n3 = tmp(&mut fresh);
                out.push(Gate {
                    kind: GateKind::Nand,
                    output: n1.clone(),
                    inputs: vec![a.clone(), b.clone()],
                });
                out.push(Gate {
                    kind: GateKind::Nand,
                    output: n2.clone(),
                    inputs: vec![a, n1.clone()],
                });
                out.push(Gate {
                    kind: GateKind::Nand,
                    output: n3.clone(),
                    inputs: vec![b, n1],
                });
                let xor_out = if g.kind == GateKind::Xor {
                    g.output.clone()
                } else {
                    tmp(&mut fresh)
                };
                out.push(Gate {
                    kind: GateKind::Nand,
                    output: xor_out.clone(),
                    inputs: vec![n2, n3],
                });
                if g.kind == GateKind::Xnor {
                    out.push(Gate {
                        kind: GateKind::Inv,
                        output: g.output.clone(),
                        inputs: vec![xor_out],
                    });
                }
            }
        }
    }
    out
}

struct Builder<'p> {
    b: CircuitBuilder,
    params: &'p SetLogicParams,
    vdd: NodeId,
    vp: NodeId,
    vn: NodeId,
    sets: usize,
}

impl Builder<'_> {
    /// Adds an nSET between `drain` and `source`, gated by `input`,
    /// with the nSET bias gate.
    fn nset(&mut self, drain: NodeId, source: NodeId, input: NodeId) {
        let p = self.params;
        let island = self.b.add_island();
        self.b
            .add_junction(drain, island, p.junction_resistance, p.junction_capacitance)
            .expect("validated params");
        self.b
            .add_junction(
                island,
                source,
                p.junction_resistance,
                p.junction_capacitance,
            )
            .expect("validated params");
        self.b
            .add_capacitor(input, island, p.input_gate_capacitance)
            .expect("validated params");
        self.b
            .add_capacitor(self.vn, island, p.bias_gate_capacitance)
            .expect("validated params");
        self.sets += 1;
    }

    /// Adds a pSET between `drain` and `source`, gated by `input`, with
    /// the half-electron bias gate.
    fn pset(&mut self, drain: NodeId, source: NodeId, input: NodeId) {
        let p = self.params;
        let island = self.b.add_island();
        self.b
            .add_junction(drain, island, p.junction_resistance, p.junction_capacitance)
            .expect("validated params");
        self.b
            .add_junction(
                island,
                source,
                p.junction_resistance,
                p.junction_capacitance,
            )
            .expect("validated params");
        self.b
            .add_capacitor(input, island, p.input_gate_capacitance)
            .expect("validated params");
        self.b
            .add_capacitor(self.vp, island, p.bias_gate_capacitance)
            .expect("validated params");
        self.sets += 1;
    }

    /// Creates a logic node: an island loaded by `C_L` to ground.
    fn logic_node(&mut self) -> NodeId {
        let n = self.b.add_island();
        self.b
            .add_capacitor(n, NodeId::GROUND, self.params.load_capacitance)
            .expect("validated params");
        n
    }

    /// Builds one lowered gate driving `out` from `ins`.
    fn gate(&mut self, kind: GateKind, out: NodeId, ins: &[NodeId]) {
        match kind {
            GateKind::Inv => {
                self.pset(self.vdd, out, ins[0]);
                self.nset(out, NodeId::GROUND, ins[0]);
            }
            GateKind::Nand => {
                // Parallel pull-up pSETs.
                for &i in ins {
                    self.pset(self.vdd, out, i);
                }
                // Series pull-down nSET chain.
                let mut top = out;
                for (k, &i) in ins.iter().enumerate() {
                    let bottom = if k + 1 == ins.len() {
                        NodeId::GROUND
                    } else {
                        // Internal stack node: a bare island (its
                        // junction capacitances define C_Σ).
                        self.b.add_island()
                    };
                    self.nset(top, bottom, i);
                    top = bottom;
                }
            }
            GateKind::Nor => {
                // Series pull-up pSET chain.
                let mut top = self.vdd;
                for (k, &i) in ins.iter().enumerate() {
                    let bottom = if k + 1 == ins.len() {
                        out
                    } else {
                        self.b.add_island()
                    };
                    self.pset(top, bottom, i);
                    top = bottom;
                }
                // Parallel pull-down nSETs.
                for &i in ins {
                    self.nset(out, NodeId::GROUND, i);
                }
            }
            _ => unreachable!("lowered netlist contains only INV/NAND/NOR"),
        }
    }
}

/// Elaborates `logic` into a single-electron circuit using `params`.
///
/// # Errors
///
/// Returns [`LogicError::BadParams`] if the parameters fail
/// [`SetLogicParams::validate`], or a wrapped [`semsim_core::CoreError`]
/// if circuit construction fails.
pub fn elaborate(logic: &LogicFile, params: &SetLogicParams) -> Result<Elaborated, LogicError> {
    params.validate()?;
    let gates = lower(logic);

    let mut builder = Builder {
        b: CircuitBuilder::new(),
        params,
        vdd: NodeId::GROUND, // placeholder, set below
        vp: NodeId::GROUND,
        vn: NodeId::GROUND,
        sets: 0,
    };
    builder.vdd = builder.b.add_lead(params.vdd);
    builder.vp = builder.b.add_lead(params.vp);
    builder.vn = builder.b.add_lead(params.vn);
    let vdd_lead = 1;
    let vp_lead = 2;

    let mut signal_nodes: HashMap<String, NodeId> = HashMap::new();
    let mut input_leads: HashMap<String, usize> = HashMap::new();
    for (k, name) in logic.inputs.iter().enumerate() {
        let lead = builder.b.add_lead(0.0);
        signal_nodes.insert(name.clone(), lead);
        input_leads.insert(name.clone(), 4 + k);
    }
    // Create every gate-output logic node up front (gates are in
    // topological order but fan-in can reference later-declared loads).
    for g in &gates {
        let node = builder.logic_node();
        signal_nodes.insert(g.output.clone(), node);
    }
    for g in &gates {
        let out = signal_nodes[&g.output];
        let ins: Vec<NodeId> = g.inputs.iter().map(|s| signal_nodes[s]).collect();
        builder.gate(g.kind, out, &ins);
    }

    let set_count = builder.sets;
    let circuit = builder.b.build().map_err(LogicError::from)?;
    let warnings = logic_warnings(logic);
    Ok(Elaborated {
        circuit,
        vdd_lead,
        vp_lead,
        input_leads,
        signal_nodes,
        set_count,
        params: *params,
        warnings,
    })
}

/// Run the structural checker over an already-validated logic netlist.
///
/// Validation rules out hard errors (cycles, undriven signals), so only
/// warning-severity findings — unused gate outputs (SC007) — survive.
fn logic_warnings(logic: &LogicFile) -> semsim_check::Diagnostics {
    let mut model = semsim_check::LogicModel::new();
    for name in &logic.inputs {
        model.add_input(name.clone());
    }
    for name in &logic.outputs {
        model.add_output(name.clone());
    }
    for g in &logic.gates {
        model.add_gate(g.output.clone(), g.inputs.iter().cloned());
    }
    let diags = semsim_check::check_logic(&model);
    debug_assert!(
        !diags.has_errors(),
        "validated logic netlist produced checker errors"
    );
    let mut warnings = semsim_check::Diagnostics::new();
    for d in diags {
        if d.severity == semsim_check::Severity::Warning {
            warnings.push(d);
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use semsim_netlist::gate_set_count;

    fn parse(s: &str) -> LogicFile {
        LogicFile::parse(s).unwrap()
    }

    #[test]
    fn inverter_structure() {
        let e = elaborate(
            &parse("input a\noutput y\ninv y a\n"),
            &SetLogicParams::default(),
        )
        .unwrap();
        assert_eq!(e.set_count, 2);
        assert_eq!(e.junction_count(), 4);
        // Islands: 2 SET islands + 1 logic node.
        assert_eq!(e.circuit.num_islands(), 3);
        // Leads: ground, vdd, vp, vn, input a.
        assert_eq!(e.circuit.num_leads(), 5);
        assert!(e.signal("y").is_ok());
        assert!(e.signal("zz").is_err());
        assert_eq!(e.input_lead("a").unwrap(), 4);
    }

    #[test]
    fn nand2_structure() {
        let e = elaborate(
            &parse("input a b\noutput y\nnand y a b\n"),
            &SetLogicParams::default(),
        )
        .unwrap();
        assert_eq!(e.set_count, 4);
        assert_eq!(e.junction_count(), 8);
        // 4 SET islands + 1 stack node + 1 logic node.
        assert_eq!(e.circuit.num_islands(), 6);
    }

    #[test]
    fn set_counts_match_netlist_prediction() {
        for src in [
            "input a\noutput y\ninv y a\n",
            "input a b\noutput y\nnand y a b\n",
            "input a b\noutput y\nnor y a b\n",
            "input a b\noutput y\nand y a b\n",
            "input a b\noutput y\nor y a b\n",
            "input a b\noutput y\nxor y a b\n",
            "input a b\noutput y\nxnor y a b\n",
            "input a\noutput y\nbuf y a\n",
            "input a b c\noutput y\nnand y a b c\n",
        ] {
            let logic = parse(src);
            let predicted: usize = logic.gates.iter().map(gate_set_count).sum();
            let e = elaborate(&logic, &SetLogicParams::default()).unwrap();
            assert_eq!(e.set_count, predicted, "{src}");
            assert_eq!(e.junction_count(), 2 * predicted, "{src}");
        }
    }

    #[test]
    fn full_adder_is_the_paper_benchmark_size() {
        let fa = parse(
            "input a b cin\noutput sum cout\nxor t1 a b\nxor sum t1 cin\n\
             and t2 a b\nand t3 t1 cin\nor cout t2 t3\n",
        );
        let e = elaborate(&fa, &SetLogicParams::default()).unwrap();
        assert_eq!(e.junction_count(), 100, "paper: Full-Adder (100)");
    }

    #[test]
    fn bad_params_rejected() {
        let p = SetLogicParams {
            vdd: 1.0,
            ..SetLogicParams::default()
        };
        assert!(elaborate(&parse("input a\noutput y\ninv y a\n"), &p).is_err());
    }
}
