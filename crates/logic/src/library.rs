//! A library of *functional* combinational circuits — real, truth-table
//! verified netlist generators for the circuit families the paper's
//! benchmarks name (adders, decoders, multiplexers, parity generators,
//! priority encoders).
//!
//! The Fig. 6/7 benchmark set uses size-calibrated synthetic stand-ins
//! (see [`crate::Benchmark`]); this module is the complementary half: a
//! downstream user building actual SET logic starts from these
//! generators, every one of which is exhaustively verified against its
//! Boolean specification.

use semsim_netlist::{Gate, GateKind, LogicFile};

fn gate(kind: GateKind, output: impl Into<String>, inputs: &[&str]) -> Gate {
    Gate {
        kind,
        output: output.into(),
        inputs: inputs
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
    }
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..` and `cout`. Built from the same full-adder cell as the
/// paper's "Full-Adder (100)" benchmark (50 SETs per bit).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(bits: usize) -> LogicFile {
    assert!(bits > 0, "adder needs at least one bit");
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gates = Vec::new();
    for k in 0..bits {
        inputs.push(format!("a{k}"));
        inputs.push(format!("b{k}"));
        outputs.push(format!("s{k}"));
    }
    inputs.push("cin".into());
    outputs.push("cout".into());

    let mut carry = "cin".to_string();
    for k in 0..bits {
        let (a, b) = (format!("a{k}"), format!("b{k}"));
        let t1 = format!("fa{k}_x");
        let t2 = format!("fa{k}_g");
        let t3 = format!("fa{k}_p");
        let c_out = if k + 1 == bits {
            "cout".to_string()
        } else {
            format!("c{}", k + 1)
        };
        gates.push(gate(GateKind::Xor, &t1, &[&a, &b]));
        gates.push(gate(GateKind::Xor, format!("s{k}"), &[&t1, &carry]));
        gates.push(gate(GateKind::And, &t2, &[&a, &b]));
        gates.push(gate(GateKind::And, &t3, &[&t1, &carry]));
        gates.push(gate(GateKind::Or, &c_out, &[&t2, &t3]));
        carry = c_out;
    }
    LogicFile::from_parts(inputs, outputs, gates).expect("generator emits valid netlists")
}

/// An `n`-to-`2^n` line decoder with active-high outputs `y0..` (the
/// 74LS138/74154 family, without the enable pins): `y_k` is high iff
/// the input word equals `k`.
///
/// # Panics
///
/// Panics unless `1 ≤ n ≤ 6`.
pub fn decoder(n: usize) -> LogicFile {
    assert!((1..=6).contains(&n), "decoder supports 1..=6 select bits");
    let inputs: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let mut gates = Vec::new();
    // Complements.
    for i in 0..n {
        gates.push(gate(GateKind::Inv, format!("na{i}"), &[&format!("a{i}")]));
    }
    let mut outputs = Vec::new();
    for k in 0..(1usize << n) {
        let out = format!("y{k}");
        let terms: Vec<String> = (0..n)
            .map(|i| {
                if k & (1 << i) != 0 {
                    format!("a{i}")
                } else {
                    format!("na{i}")
                }
            })
            .collect();
        if n == 1 {
            gates.push(gate(GateKind::Buf, &out, &[&terms[0]]));
        } else {
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            gates.push(gate(GateKind::And, &out, &refs));
        }
        outputs.push(out);
    }
    LogicFile::from_parts(inputs, outputs, gates).expect("generator emits valid netlists")
}

/// A `2^n`-to-1 multiplexer (the 74LS153 family): data inputs `d0..`,
/// select inputs `s0..`, output `y`.
///
/// # Panics
///
/// Panics unless `1 ≤ n ≤ 4`.
pub fn multiplexer(select_bits: usize) -> LogicFile {
    assert!(
        (1..=4).contains(&select_bits),
        "multiplexer supports 1..=4 select bits"
    );
    let n = select_bits;
    let mut inputs: Vec<String> = (0..(1 << n)).map(|i| format!("d{i}")).collect();
    inputs.extend((0..n).map(|i| format!("s{i}")));
    let mut gates = Vec::new();
    for i in 0..n {
        gates.push(gate(GateKind::Inv, format!("ns{i}"), &[&format!("s{i}")]));
    }
    let mut term_names = Vec::new();
    for k in 0..(1usize << n) {
        let mut terms = vec![format!("d{k}")];
        for i in 0..n {
            terms.push(if k & (1 << i) != 0 {
                format!("s{i}")
            } else {
                format!("ns{i}")
            });
        }
        let t = format!("t{k}");
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        gates.push(gate(GateKind::And, &t, &refs));
        term_names.push(t);
    }
    // OR-reduce the product terms pairwise (fan-in limit of 8 respected
    // for every supported width, but a tree keeps depth logarithmic).
    let mut layer = term_names;
    let mut fresh = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0].clone());
            } else {
                let out = format!("or{fresh}");
                fresh += 1;
                gates.push(gate(GateKind::Or, &out, &[&pair[0], &pair[1]]));
                next.push(out);
            }
        }
        layer = next;
    }
    gates.push(gate(GateKind::Buf, "y", &[&layer[0]]));
    LogicFile::from_parts(inputs, vec!["y".into()], gates).expect("generator emits valid netlists")
}

/// A `width`-bit odd-parity generator (the 74LS280 family): output
/// `odd` is high iff an odd number of inputs are high. Built as an XOR
/// tree.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn parity_tree(width: usize) -> LogicFile {
    assert!(width >= 2, "parity needs at least two inputs");
    let inputs: Vec<String> = (0..width).map(|i| format!("i{i}")).collect();
    let mut gates = Vec::new();
    let mut layer = inputs.clone();
    let mut fresh = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0].clone());
            } else {
                let out = format!("x{fresh}");
                fresh += 1;
                gates.push(gate(GateKind::Xor, &out, &[&pair[0], &pair[1]]));
                next.push(out);
            }
        }
        layer = next;
    }
    gates.push(gate(GateKind::Buf, "odd", &[&layer[0]]));
    LogicFile::from_parts(inputs, vec!["odd".into()], gates)
        .expect("generator emits valid netlists")
}

/// A `width`-line priority encoder (the 74148 family, active-high,
/// without enables): outputs the binary index of the highest-numbered
/// asserted input on `q0..`, plus `valid` (any input asserted).
///
/// # Panics
///
/// Panics unless `2 ≤ width ≤ 8`.
pub fn priority_encoder(width: usize) -> LogicFile {
    assert!(
        (2..=8).contains(&width),
        "priority encoder supports 2..=8 lines"
    );
    let inputs: Vec<String> = (0..width).map(|i| format!("i{i}")).collect();
    let mut gates = Vec::new();

    // highest[k] = i_k AND none of i_{k+1..} (one-hot of the winner).
    for k in 0..width {
        let mut terms = vec![format!("i{k}")];
        for j in (k + 1)..width {
            let ninv = format!("no{j}_{k}");
            gates.push(gate(GateKind::Inv, &ninv, &[&format!("i{j}")]));
            terms.push(ninv);
        }
        let h = format!("h{k}");
        if terms.len() == 1 {
            gates.push(gate(GateKind::Buf, &h, &[&terms[0]]));
        } else {
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            gates.push(gate(GateKind::And, &h, &refs));
        }
    }

    // Each output bit ORs the one-hot lines whose index has that bit.
    let out_bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let mut outputs = Vec::new();
    for bit in 0..out_bits {
        let contributors: Vec<String> = (0..width)
            .filter(|k| k & (1 << bit) != 0)
            .map(|k| format!("h{k}"))
            .collect();
        let q = format!("q{bit}");
        match contributors.len() {
            0 => unreachable!("every bit has a contributor for width ≥ 2"),
            1 => gates.push(gate(GateKind::Buf, &q, &[&contributors[0]])),
            _ => {
                let refs: Vec<&str> = contributors.iter().map(String::as_str).collect();
                gates.push(gate(GateKind::Or, &q, &refs));
            }
        }
        outputs.push(q);
    }
    // valid = OR of all inputs (tree for fan-in discipline).
    let mut layer: Vec<String> = inputs.clone();
    let mut fresh = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0].clone());
            } else {
                let out = format!("v{fresh}");
                fresh += 1;
                gates.push(gate(GateKind::Or, &out, &[&pair[0], &pair[1]]));
                next.push(out);
            }
        }
        layer = next;
    }
    gates.push(gate(GateKind::Buf, "valid", &[&layer[0]]));
    outputs.push("valid".into());

    LogicFile::from_parts(inputs, outputs, gates).expect("generator emits valid netlists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(value: usize, n: usize) -> Vec<bool> {
        (0..n).map(|i| value & (1 << i) != 0).collect()
    }

    #[test]
    fn ripple_carry_adder_exhaustive_3bit() {
        let adder = ripple_carry_adder(3);
        for a in 0..8usize {
            for b in 0..8usize {
                for cin in 0..2usize {
                    // Input order: a0 b0 a1 b1 a2 b2 cin.
                    let mut v = Vec::new();
                    for k in 0..3 {
                        v.push(a & (1 << k) != 0);
                        v.push(b & (1 << k) != 0);
                    }
                    v.push(cin != 0);
                    let env = adder.evaluate(&v);
                    let want = a + b + cin;
                    for k in 0..3 {
                        assert_eq!(env[&format!("s{k}")], want & (1 << k) != 0, "{a}+{b}+{cin}");
                    }
                    assert_eq!(env["cout"], want >= 8, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn adder_set_cost_scales_with_bits() {
        // One full-adder cell = 50 SETs, the paper's benchmark size.
        assert_eq!(ripple_carry_adder(1).set_count(), 50);
        assert_eq!(ripple_carry_adder(4).set_count(), 200);
    }

    #[test]
    fn decoder_exhaustive() {
        for n in 1..=4usize {
            let d = decoder(n);
            for word in 0..(1usize << n) {
                let env = d.evaluate(&bits(word, n));
                for k in 0..(1usize << n) {
                    assert_eq!(env[&format!("y{k}")], k == word, "n={n} word={word} k={k}");
                }
            }
        }
    }

    #[test]
    fn decoder_3_to_8_is_74ls138_shaped() {
        let d = decoder(3);
        assert_eq!(d.inputs.len(), 3);
        assert_eq!(d.outputs.len(), 8);
    }

    #[test]
    fn multiplexer_exhaustive_2bit() {
        let m = multiplexer(2);
        // Inputs: d0..d3 then s0 s1.
        for data in 0..16usize {
            for sel in 0..4usize {
                let mut v = bits(data, 4);
                v.extend(bits(sel, 2));
                let env = m.evaluate(&v);
                assert_eq!(env["y"], data & (1 << sel) != 0, "data={data} sel={sel}");
            }
        }
    }

    #[test]
    fn parity_exhaustive_9bit() {
        // 9 bits — the 74LS280's width.
        let p = parity_tree(9);
        for word in 0..512usize {
            let env = p.evaluate(&bits(word, 9));
            assert_eq!(env["odd"], word.count_ones() % 2 == 1, "word={word}");
        }
    }

    #[test]
    fn priority_encoder_exhaustive_8line() {
        let e = priority_encoder(8);
        for word in 0..256usize {
            let env = e.evaluate(&bits(word, 8));
            if word == 0 {
                assert!(!env["valid"]);
            } else {
                assert!(env["valid"]);
                // Highest set bit of the 8-line input word.
                let winner = usize::BITS as usize - 1 - word.leading_zeros() as usize;
                for bit in 0..3 {
                    assert_eq!(
                        env[&format!("q{bit}")],
                        winner & (1 << bit) != 0,
                        "word={word:#010b} winner={winner}"
                    );
                }
            }
        }
    }

    #[test]
    fn generators_reject_bad_sizes() {
        assert!(std::panic::catch_unwind(|| decoder(0)).is_err());
        assert!(std::panic::catch_unwind(|| decoder(7)).is_err());
        assert!(std::panic::catch_unwind(|| multiplexer(5)).is_err());
        assert!(std::panic::catch_unwind(|| parity_tree(1)).is_err());
        assert!(std::panic::catch_unwind(|| priority_encoder(1)).is_err());
        assert!(std::panic::catch_unwind(|| ripple_carry_adder(0)).is_err());
    }

    #[test]
    fn library_circuits_elaborate_to_set_logic() {
        // Every generator must survive the full elaboration path.
        let params = crate::SetLogicParams::default();
        for logic in [
            ripple_carry_adder(2),
            decoder(2),
            multiplexer(1),
            parity_tree(4),
            priority_encoder(4),
        ] {
            let elab = crate::elaborate(&logic, &params).expect("elaborates");
            assert_eq!(elab.junction_count(), 2 * elab.set_count);
        }
    }
}
