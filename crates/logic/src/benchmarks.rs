//! The 15 logic benchmarks of the paper's evaluation (Figs. 6–7).
//!
//! The paper used ISCAS '85/'89 circuits and 74-series parts converted
//! to nSET/pSET logic, ranging from 76 junctions (38 SETs) to 6988
//! junctions (3494 SETs). The original netlists are not distributable,
//! so this module ships:
//!
//! * a hand-written **full adder** — exactly the paper's
//!   "Full-Adder (100)" under the CMOS-style SET counting; and
//! * a deterministic **synthetic netlist generator** that produces
//!   random NAND/NOR/INV DAGs with *exactly* the junction count of each
//!   remaining benchmark.
//!
//! The adaptive solver's behaviour depends on circuit size and stage
//! isolation, not on the specific Boolean function, so the synthetic
//! stand-ins preserve the shape of the paper's Figs. 6–7 (see
//! DESIGN.md, substitution 1).

use semsim_core::rng::Rng;
use semsim_netlist::{Gate, GateKind, LogicFile};

/// One of the paper's 15 benchmarks, ordered smallest to largest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// "2-to-10 decoder (76)".
    Decoder2To10,
    /// "Full-Adder (100)" — real functional netlist.
    FullAdder,
    /// "74LS138 (168)" — 3-to-8 decoder.
    Ls138,
    /// "74LS153 (224)" — dual 4-input multiplexer.
    Ls153,
    /// "s27a (264)" — ISCAS '89 s27 (combinational core).
    S27a,
    /// "74148 (336)" — 8-to-3 priority encoder.
    Ls148,
    /// "74154 (360)" — 4-to-16 decoder.
    Ls154,
    /// "74LS47 (448)" — BCD to 7-segment decoder.
    Ls47,
    /// "74LS280 (484)" — 9-bit parity generator.
    Ls280,
    /// "54LS181 (944)" — 4-bit ALU.
    Ls181,
    /// "s208-1 (1344)" — ISCAS '89 s208.1 (combinational core).
    S208,
    /// "c432 (2072)" — ISCAS '85 27-channel interrupt controller.
    C432,
    /// "c1355 (4616)" — ISCAS '85 32-bit SEC circuit.
    C1355,
    /// "c499 (5608)" — ISCAS '85 32-bit SEC circuit (expanded form).
    C499,
    /// "c1908 (6988)" — ISCAS '85 16-bit SEC/DED circuit.
    C1908,
}

impl Benchmark {
    /// All 15 benchmarks, smallest first (the paper's Fig. 6 x-axis
    /// reversed).
    pub fn all() -> [Benchmark; 15] {
        use Benchmark::*;
        [
            Decoder2To10,
            FullAdder,
            Ls138,
            Ls153,
            S27a,
            Ls148,
            Ls154,
            Ls47,
            Ls280,
            Ls181,
            S208,
            C432,
            C1355,
            C499,
            C1908,
        ]
    }

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Decoder2To10 => "2-to-10 decoder",
            Benchmark::FullAdder => "Full-Adder",
            Benchmark::Ls138 => "74LS138",
            Benchmark::Ls153 => "74LS153",
            Benchmark::S27a => "s27a",
            Benchmark::Ls148 => "74148",
            Benchmark::Ls154 => "74154",
            Benchmark::Ls47 => "74LS47",
            Benchmark::Ls280 => "74LS280",
            Benchmark::Ls181 => "54LS181",
            Benchmark::S208 => "s208-1",
            Benchmark::C432 => "c432",
            Benchmark::C1355 => "c1355",
            Benchmark::C499 => "c499",
            Benchmark::C1908 => "c1908",
        }
    }

    /// The junction count reported in the paper (2 per SET).
    pub fn target_junctions(&self) -> usize {
        match self {
            Benchmark::Decoder2To10 => 76,
            Benchmark::FullAdder => 100,
            Benchmark::Ls138 => 168,
            Benchmark::Ls153 => 224,
            Benchmark::S27a => 264,
            Benchmark::Ls148 => 336,
            Benchmark::Ls154 => 360,
            Benchmark::Ls47 => 448,
            Benchmark::Ls280 => 484,
            Benchmark::Ls181 => 944,
            Benchmark::S208 => 1344,
            Benchmark::C432 => 2072,
            Benchmark::C1355 => 4616,
            Benchmark::C499 => 5608,
            Benchmark::C1908 => 6988,
        }
    }

    /// Number of primary inputs used for the netlist.
    fn input_count(&self) -> usize {
        match self {
            Benchmark::Decoder2To10 => 4,
            Benchmark::FullAdder => 3,
            Benchmark::Ls138 => 6,
            Benchmark::Ls153 => 10,
            Benchmark::S27a => 4,
            Benchmark::Ls148 => 8,
            Benchmark::Ls154 => 6,
            Benchmark::Ls47 => 7,
            Benchmark::Ls280 => 9,
            Benchmark::Ls181 => 14,
            Benchmark::S208 => 10,
            Benchmark::C432 => 36,
            Benchmark::C1355 => 41,
            Benchmark::C499 => 41,
            Benchmark::C1908 => 33,
        }
    }

    /// Builds the gate-level netlist, sized to exactly
    /// [`Benchmark::target_junctions`].
    ///
    /// Every synthetic benchmark embeds an 8-inverter **delay line**
    /// (output `delay_out`, driven from input `i0`, 16 of the SET
    /// budget): voltage-state SET logic degrades levels through deep
    /// random NAND/NOR DAGs, so the paper's propagation-delay
    /// measurements (Figs. 6–7) are taken on this canonical path while
    /// the surrounding DAG supplies the benchmark's size and switching
    /// activity (see DESIGN.md, substitution 1). The seed retries until
    /// at least one DAG output is also sensitizable.
    pub fn logic(&self) -> LogicFile {
        match self {
            Benchmark::FullAdder => full_adder(),
            _ => {
                let base = self.target_junctions() as u64;
                for attempt in 0..50 {
                    let logic = synthesize(
                        self.target_junctions() / 2 - 2 * DELAY_LINE_DEPTH,
                        self.input_count(),
                        base + attempt,
                    );
                    let controllable = logic
                        .outputs
                        .iter()
                        .any(|o| crate::find_sensitizing_vector(&logic, o, 0).is_some());
                    if controllable {
                        return with_delay_line(logic);
                    }
                }
                unreachable!("50 seeds without a controllable output");
            }
        }
    }

    /// Name of the canonical delay-measurement output (`delay_out` for
    /// the synthetic benchmarks, `cout` for the real full adder).
    pub fn delay_output(&self) -> &'static str {
        match self {
            Benchmark::FullAdder => "cout",
            _ => "delay_out",
        }
    }
}

/// Inverters in the embedded delay line (2 SETs each).
pub const DELAY_LINE_DEPTH: usize = 8;

/// Appends the canonical delay line to a synthesized netlist: `i0 →
/// d0 → … → d7 = delay_out`.
fn with_delay_line(logic: LogicFile) -> LogicFile {
    let mut gates = logic.gates.clone();
    let mut prev = "i0".to_string();
    for k in 0..DELAY_LINE_DEPTH {
        let out = if k + 1 == DELAY_LINE_DEPTH {
            "delay_out".to_string()
        } else {
            format!("d{k}")
        };
        gates.push(Gate {
            kind: GateKind::Inv,
            output: out.clone(),
            inputs: vec![prev],
        });
        prev = out;
    }
    let mut outputs = logic.outputs.clone();
    outputs.push("delay_out".to_string());
    LogicFile::from_parts(logic.inputs.clone(), outputs, gates)
        .expect("delay line preserves validity")
}

fn full_adder() -> LogicFile {
    LogicFile::parse(
        "input a b cin\noutput sum cout\n\
         xor t1 a b\nxor sum t1 cin\n\
         and t2 a b\nand t3 t1 cin\nor cout t2 t3\n",
    )
    .expect("static netlist is valid")
}

/// Deterministically synthesizes a random combinational NAND/NOR/INV
/// DAG with exactly `target_sets` SETs (`2·target_sets` junctions)
/// over `inputs` primary inputs.
///
/// The generator favours recent signals as gate inputs, producing deep,
/// staged logic like real benchmark circuits (important: the adaptive
/// solver's win comes from stage isolation). Signals left unconsumed
/// become primary outputs.
///
/// # Panics
///
/// Panics if `target_sets` is odd or `< 2` (INV/NAND/NOR cost 2 or 4
/// SETs, so only even totals are reachable), or if `inputs == 0`.
pub fn synthesize(target_sets: usize, inputs: usize, seed: u64) -> LogicFile {
    assert!(target_sets >= 2, "need at least one inverter (2 SETs)");
    assert!(
        target_sets.is_multiple_of(2),
        "SET totals are even (2 per INV, 4 per NAND/NOR)"
    );
    assert!(inputs > 0, "need at least one primary input");
    let mut rng = Rng::seed_from_u64(seed);
    let input_names: Vec<String> = (0..inputs).map(|i| format!("i{i}")).collect();
    let mut signals: Vec<String> = input_names.clone();
    let mut gates: Vec<Gate> = Vec::new();
    let mut consumed: Vec<bool> = vec![false; signals.len()];
    let mut remaining = target_sets;
    let mut next_id = 0usize;

    // Pick an existing signal index, biased toward the most recent
    // quarter so the DAG grows deep rather than wide. `avoid` excludes
    // a just-picked index so 2-input gates never see the same signal
    // twice (NAND(x,x) is just an inverter and NOR chains over repeated
    // signals collapse into constants).
    let pick = |avoid: Option<usize>,
                signals: &Vec<String>,
                consumed: &mut Vec<bool>,
                rng: &mut Rng|
     -> usize {
        let n = signals.len();
        loop {
            let idx = if n > 4 && rng.gen_bool(0.7) {
                n - 1 - rng.gen_range(0..n / 4)
            } else {
                rng.gen_range(0..n)
            };
            if Some(idx) != avoid || n == 1 {
                consumed[idx] = true;
                return idx;
            }
        }
    };

    while remaining > 0 {
        // NAND2/NOR2 cost 4 SETs, INV costs 2. Keep parity reachable.
        let use_pair = remaining >= 4 && (remaining == 4 || rng.gen_bool(0.8));
        let output = format!("n{next_id}");
        next_id += 1;
        let gate = if use_pair {
            let kind = if rng.gen_bool(0.5) {
                GateKind::Nand
            } else {
                GateKind::Nor
            };
            let a = pick(None, &signals, &mut consumed, &mut rng);
            let b = pick(Some(a), &signals, &mut consumed, &mut rng);
            remaining -= 4;
            Gate {
                kind,
                output: output.clone(),
                inputs: vec![signals[a].clone(), signals[b].clone()],
            }
        } else {
            let a = pick(None, &signals, &mut consumed, &mut rng);
            remaining -= 2;
            Gate {
                kind: GateKind::Inv,
                output: output.clone(),
                inputs: vec![signals[a].clone()],
            }
        };
        gates.push(gate);
        signals.push(output);
        consumed.push(false);
    }

    // Outputs: every signal nothing consumed (skip primary inputs).
    let mut outputs: Vec<String> = signals
        .iter()
        .zip(&consumed)
        .skip(inputs)
        .filter(|(_, &c)| !c)
        .map(|(s, _)| s.clone())
        .collect();
    if outputs.is_empty() {
        outputs.push(signals.last().expect("at least one gate").clone());
    }

    LogicFile::from_parts(input_names, outputs, gates).expect("generator emits valid netlists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use semsim_netlist::gate_set_count;

    #[test]
    fn every_benchmark_hits_its_paper_junction_count() {
        for b in Benchmark::all() {
            let logic = b.logic();
            let sets: usize = logic.gates.iter().map(gate_set_count).sum();
            assert_eq!(
                2 * sets,
                b.target_junctions(),
                "{}: {} junctions, paper says {}",
                b.name(),
                2 * sets,
                b.target_junctions()
            );
        }
    }

    #[test]
    fn benchmarks_are_ordered_by_size() {
        let all = Benchmark::all();
        for w in all.windows(2) {
            assert!(w[0].target_junctions() < w[1].target_junctions());
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(100, 5, 42);
        let b = synthesize(100, 5, 42);
        assert_eq!(a, b);
        let c = synthesize(100, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn synthesis_exact_counts_various() {
        for target in [2, 4, 6, 20, 38, 472, 1036] {
            let logic = synthesize(target, 4, 7);
            let sets: usize = logic.gates.iter().map(gate_set_count).sum();
            assert_eq!(sets, target, "target {target}");
        }
    }

    #[test]
    fn synthesized_netlists_have_outputs_and_depth() {
        let logic = synthesize(472, 14, 9);
        assert!(!logic.outputs.is_empty());
        // Depth: at least one gate consumes another gate's output.
        let consumes_internal = logic
            .gates
            .iter()
            .any(|g| g.inputs.iter().any(|i| i.starts_with('n')));
        assert!(consumes_internal);
    }

    #[test]
    fn synthesized_netlists_evaluate() {
        let logic = synthesize(38, 4, 76);
        let env = logic.evaluate(&[true, false, true, false]);
        for o in &logic.outputs {
            assert!(env.contains_key(o.as_str()));
        }
    }

    #[test]
    fn full_adder_is_functional() {
        let logic = Benchmark::FullAdder.logic();
        let env = logic.evaluate(&[true, true, true]);
        assert!(env["sum"] && env["cout"]);
    }
}
