use std::error::Error;
use std::fmt;

use semsim_core::CoreError;
use semsim_netlist::ParseError;

/// Errors from logic elaboration and measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicError {
    /// The gate parameters violate an operating condition.
    BadParams {
        /// Which condition failed.
        what: String,
    },
    /// A referenced signal does not exist in the netlist.
    UnknownSignal {
        /// The missing signal name.
        name: String,
    },
    /// No input vector sensitizes the requested output.
    NoSensitizingVector {
        /// The output that could not be toggled.
        output: String,
    },
    /// The output never crossed the logic threshold within the
    /// measurement window.
    NoTransition {
        /// The output being watched.
        output: String,
        /// The measurement window (s).
        window: f64,
    },
    /// An underlying simulator error.
    Core(CoreError),
    /// An underlying netlist error.
    Parse(ParseError),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::BadParams { what } => write!(f, "invalid logic parameters: {what}"),
            LogicError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            LogicError::NoSensitizingVector { output } => {
                write!(f, "no input vector toggles output `{output}`")
            }
            LogicError::NoTransition { output, window } => {
                write!(f, "output `{output}` did not switch within {window:.3e} s")
            }
            LogicError::Core(e) => write!(f, "simulation error: {e}"),
            LogicError::Parse(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for LogicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogicError::Core(e) => Some(e),
            LogicError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<CoreError> for LogicError {
    fn from(e: CoreError) -> Self {
        LogicError::Core(e)
    }
}

#[doc(hidden)]
impl From<ParseError> for LogicError {
    fn from(e: ParseError) -> Self {
        LogicError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LogicError::UnknownSignal { name: "x".into() };
        assert_eq!(e.to_string(), "unknown signal `x`");
        assert!(e.source().is_none());
        let e = LogicError::Core(CoreError::NoJunctions);
        assert!(e.source().is_some());
        let e = LogicError::NoTransition {
            output: "y".into(),
            window: 1e-9,
        };
        assert!(e.to_string().contains("1.000e-9") || e.to_string().contains("1e-9"));
    }
}
