//! Single-electron logic for SEMSIM: nSET/pSET voltage-state gates
//! (paper Fig. 4b), elaboration of gate-level netlists into
//! single-electron circuits, the 15 evaluation benchmarks, and
//! propagation-delay measurement.
//!
//! ## The nSET/pSET scheme
//!
//! Both transistor types are ordinary SETs with a second, constant-bias
//! gate (exactly the paper's description). The *nSET* bias places the
//! island at a Coulomb conductance degeneracy when the input is high
//! and deep in blockade when it is low; the *pSET* bias does the
//! opposite, with an extra `C_Σ·V_dd` tracking term so the degeneracy
//! follows the output node as it charges toward `V_dd` (without it the
//! pull-up stalls partway — see `SetLogicParams`). Gates are then built
//! CMOS-style: series/parallel pull-up and pull-down networks with a
//! load capacitor per logic node.
//!
//! Blocking requires the supply to stay below the blockade threshold:
//! `V_dd < e/C_Σ`. The default [`SetLogicParams`] satisfy this with
//! margin; [`SetLogicParams::validate`] checks it.
//!
//! # Example
//!
//! ```
//! use semsim_netlist::LogicFile;
//! use semsim_logic::{elaborate, SetLogicParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let logic = LogicFile::parse("input a\noutput y\ninv y a\n")?;
//! let elab = elaborate(&logic, &SetLogicParams::default())?;
//! assert_eq!(elab.junction_count(), 4); // 2 SETs × 2 junctions
//! # Ok(())
//! # }
//! ```

mod benchmarks;
mod delay;
mod elaborate;
mod error;
pub mod library;
mod params;

pub use benchmarks::{synthesize, Benchmark};
pub use delay::{
    find_sensitizing_vector, measure_delay, measure_delay_avg, settle_outputs, DelayMeasurement,
};
pub use elaborate::{elaborate, lower, Elaborated};
pub use error::LogicError;
pub use params::SetLogicParams;
