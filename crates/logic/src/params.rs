use semsim_core::constants::E_CHARGE;

use crate::LogicError;

/// Device and supply parameters of the nSET/pSET logic family.
///
/// Both transistor types are ordinary SETs with a second, constant-bias
/// gate (the paper's description of nSETs/pSETs). The bias charges are
/// tuned so that:
///
/// * the **nSET** sits at a Coulomb-conductance degeneracy when its
///   input is at `V_dd` (`C_b·V_n + C_g·V_dd ≈ e/2`) and deep in
///   blockade at input 0;
/// * the **pSET** sits at a degeneracy *when the output has risen to
///   `V_dd`* — the extra `C_Σ·V_dd/e` term tracks the source-follower
///   shift of the island operating point as the output node charges —
///   and at an integer charge (blockade) when its input is high.
///
/// With the default values the inverter swings essentially rail-to-rail
/// (V_OH ≈ 9.6 mV of V_dd = 10 mV, V_OL ≈ 0) with a per-stage delay of
/// a few ns; these were verified by direct Monte Carlo transfer-curve
/// scans (see the tests in `delay.rs`).
///
/// # Example
///
/// ```
/// let p = semsim_logic::SetLogicParams::default();
/// assert!(p.validate().is_ok());
/// assert!(p.vdd < p.nset_blockade_threshold());
/// assert!(p.vdd < p.pset_blockade_threshold());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetLogicParams {
    /// Tunnel resistance of every junction (Ω).
    pub junction_resistance: f64,
    /// Capacitance of every junction (F). Kept small relative to `C_g`
    /// so drain/source swings barely detune the islands.
    pub junction_capacitance: f64,
    /// Input gate capacitance `C_g` (F).
    pub input_gate_capacitance: f64,
    /// Bias gate capacitance `C_b` (F), same for both types.
    pub bias_gate_capacitance: f64,
    /// Load capacitance per logic node (F) — the paper's `C_L`/`C_1`
    /// "large capacitance of the metal wire" that isolates stages.
    pub load_capacitance: f64,
    /// Supply voltage `V_dd` (V); logic low is 0 V.
    pub vdd: f64,
    /// pSET bias voltage `V_p` (V).
    pub vp: f64,
    /// nSET bias voltage `V_n` (V).
    pub vn: f64,
    /// Operating temperature (K).
    pub temperature: f64,
}

impl Default for SetLogicParams {
    fn default() -> Self {
        let vdd = 10e-3;
        let cj = 0.25e-18;
        let cg = 5e-18;
        let cb = 0.5e-18;
        let csig_p = 2.0 * cj + cg + cb;
        // pSET degeneracy tracks the rising output: q_bp = e/2 +
        // C_Σ·V_dd − 0.05e (the −0.05e keeps the blocked state snugly
        // at an integer; value from the Monte Carlo tuning scan).
        let qbp = 0.5 * E_CHARGE + csig_p * vdd - 0.05 * E_CHARGE;
        // nSET degeneracy at input high: q_bn = e/2 − C_g·V_dd.
        let qbn = 0.5 * E_CHARGE - cg * vdd;
        SetLogicParams {
            junction_resistance: 1e6,
            junction_capacitance: cj,
            input_gate_capacitance: cg,
            bias_gate_capacitance: cb,
            load_capacitance: 300e-18,
            vdd,
            vp: qbp / cb, // ≈ 264 mV
            vn: qbn / cb, // ≈ 60 mV
            temperature: 2.0,
        }
    }
}

impl SetLogicParams {
    /// Total island capacitance of either transistor type
    /// (`2C_j + C_g + C_b`; both carry a bias gate).
    pub fn island_sigma(&self) -> f64 {
        2.0 * self.junction_capacitance + self.input_gate_capacitance + self.bias_gate_capacitance
    }

    /// Blockade threshold `e/C_Σ` of an nSET (V).
    pub fn nset_blockade_threshold(&self) -> f64 {
        E_CHARGE / self.island_sigma()
    }

    /// Blockade threshold `e/C_Σ` of a pSET (V).
    pub fn pset_blockade_threshold(&self) -> f64 {
        E_CHARGE / self.island_sigma()
    }

    /// pSET bias charge `C_b·V_p` in units of `e`.
    pub fn pset_bias_charge(&self) -> f64 {
        self.bias_gate_capacitance * self.vp / E_CHARGE
    }

    /// nSET bias charge `C_b·V_n` in units of `e`.
    pub fn nset_bias_charge(&self) -> f64 {
        self.bias_gate_capacitance * self.vn / E_CHARGE
    }

    /// Checks the operating conditions of the logic family: positive
    /// finite components, supply below the blockade threshold, and both
    /// bias charges within ±0.1 e of their design values.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadParams`] naming the violated condition.
    pub fn validate(&self) -> Result<(), LogicError> {
        for (name, v) in [
            ("junction_resistance", self.junction_resistance),
            ("junction_capacitance", self.junction_capacitance),
            ("input_gate_capacitance", self.input_gate_capacitance),
            ("bias_gate_capacitance", self.bias_gate_capacitance),
            ("load_capacitance", self.load_capacitance),
            ("vdd", self.vdd),
            ("vp", self.vp),
            ("vn", self.vn),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(LogicError::BadParams {
                    what: format!("{name} must be positive and finite, got {v}"),
                });
            }
        }
        if self.temperature < 0.0 {
            return Err(LogicError::BadParams {
                what: format!("temperature must be ≥ 0, got {}", self.temperature),
            });
        }
        if self.vdd >= self.nset_blockade_threshold() {
            return Err(LogicError::BadParams {
                what: format!(
                    "V_dd = {} V is not below the blockade threshold {:.3e} V",
                    self.vdd,
                    self.nset_blockade_threshold()
                ),
            });
        }
        let qbp_design = 0.5 + (self.island_sigma() * self.vdd) / E_CHARGE - 0.05;
        let qbp = self.pset_bias_charge();
        if (qbp - qbp_design).abs() > 0.1 {
            return Err(LogicError::BadParams {
                what: format!("pSET bias charge {qbp:.3}e, design point {qbp_design:.3}e"),
            });
        }
        let qbn_design = 0.5 - self.input_gate_capacitance * self.vdd / E_CHARGE;
        let qbn = self.nset_bias_charge();
        if (qbn - qbn_design).abs() > 0.1 {
            return Err(LogicError::BadParams {
                what: format!("nSET bias charge {qbn:.3}e, design point {qbn_design:.3}e"),
            });
        }
        Ok(())
    }

    /// Characteristic per-stage switching time (s), calibrated against
    /// Monte Carlo inverter transients (the naive `2RC_L` underestimates
    /// because the final approach to the rails is thermally limited).
    ///
    /// The default `C_L = 300 aF` keeps the single-electron voltage
    /// granularity `e/C_L ≈ 0.5 mV` well below the gate switching
    /// threshold (~1.5 mV), so logic-low levels land reliably under the
    /// cliff — with 150 aF the ±1-electron scatter of a settled low
    /// reaches 2 mV and cascades corrupt (found the hard way).
    pub fn switching_time(&self) -> f64 {
        30.0 * self.junction_resistance * self.load_capacitance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SetLogicParams::default().validate().unwrap();
    }

    #[test]
    fn default_bias_charges_at_design_point() {
        let p = SetLogicParams::default();
        // Tuned values from the Monte Carlo scan.
        assert!(
            (p.pset_bias_charge() - 0.824).abs() < 0.01,
            "{}",
            p.pset_bias_charge()
        );
        assert!(
            (p.nset_bias_charge() - 0.188).abs() < 0.01,
            "{}",
            p.nset_bias_charge()
        );
    }

    #[test]
    fn blockade_margin_exists() {
        let p = SetLogicParams::default();
        assert!(p.nset_blockade_threshold() > p.vdd * 1.5);
        assert!(p.pset_blockade_threshold() > p.vdd * 1.5);
    }

    #[test]
    fn bad_params_rejected() {
        let p = SetLogicParams {
            vdd: 40e-3, // destroys the blockade margin
            ..SetLogicParams::default()
        };
        assert!(p.validate().is_err());

        let p = SetLogicParams {
            junction_capacitance: -1.0,
            ..SetLogicParams::default()
        };
        assert!(p.validate().is_err());

        let mut p = SetLogicParams::default();
        p.vp *= 2.0; // bias far off the design point
        assert!(p.validate().is_err());

        let mut p = SetLogicParams::default();
        p.vn *= 3.0;
        assert!(p.validate().is_err());

        let p = SetLogicParams {
            temperature: -0.1,
            ..SetLogicParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn switching_time_scale() {
        let p = SetLogicParams::default();
        // 30 × 1 MΩ × 300 aF = 9 ns, the measured per-stage scale.
        assert!((p.switching_time() - 9e-9).abs() < 1e-12);
    }
}
