//! Stimulus generation and propagation-delay measurement — the
//! methodology behind the paper's Figs. 6–7.
//!
//! A benchmark run settles the circuit under a sensitizing input
//! vector, steps one primary input, and measures the time for the
//! chosen output to cross `V_dd/2` (with a hold requirement to reject
//! single-electron noise).

use std::collections::HashMap;

use semsim_core::engine::{RunLength, SimConfig, Simulation};
use semsim_core::rng::Rng;
use semsim_netlist::LogicFile;

use crate::{Elaborated, LogicError};

/// Result of one propagation-delay measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayMeasurement {
    /// Measured propagation delay (s).
    pub delay: f64,
    /// The stepped primary input.
    pub input: String,
    /// The observed output.
    pub output: String,
    /// The base input vector (before the step).
    pub vector: Vec<bool>,
    /// Whether the output transition was rising.
    pub rising: bool,
    /// Tunnel events executed during the measurement window.
    pub events: u64,
}

/// Searches for an input vector and input index such that toggling that
/// input flips `output`. Deterministic in `seed`.
///
/// Tries all `2^n` vectors exhaustively for up to 12 inputs, random
/// sampling beyond that.
pub fn find_sensitizing_vector(
    logic: &LogicFile,
    output: &str,
    seed: u64,
) -> Option<(Vec<bool>, usize)> {
    let n = logic.inputs.len();
    if n == 0 {
        return None;
    }
    let check = |vector: &Vec<bool>| -> Option<usize> {
        let base = logic.evaluate(vector);
        let v0 = *base.get(output)?;
        for i in 0..n {
            let mut toggled = vector.clone();
            toggled[i] = !toggled[i];
            let v1 = logic.evaluate(&toggled)[output];
            if v1 != v0 {
                return Some(i);
            }
        }
        None
    };
    if n <= 12 {
        for bits in 0..(1u32 << n) {
            let vector: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            if let Some(i) = check(&vector) {
                return Some((vector, i));
            }
        }
        None
    } else {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..256 {
            let vector: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
            if let Some(i) = check(&vector) {
                return Some((vector, i));
            }
        }
        None
    }
}

/// Applies `vector` to the primary inputs and lets the circuit settle
/// for `settle` seconds, returning the measured output voltages (V).
///
/// # Errors
///
/// Propagates simulation errors; unknown outputs are impossible for a
/// validated netlist.
pub fn settle_outputs(
    elab: &Elaborated,
    logic: &LogicFile,
    config: &SimConfig,
    vector: &[bool],
    settle: f64,
) -> Result<HashMap<String, f64>, LogicError> {
    let mut sim = Simulation::new(&elab.circuit, config.clone())?;
    apply_vector(&mut sim, elab, logic, vector)?;
    sim.run(RunLength::Time(settle))?;
    let mut out = HashMap::new();
    for name in &logic.outputs {
        let node = elab.signal(name)?;
        out.insert(name.clone(), sim.node_potential(node)?);
    }
    Ok(out)
}

fn apply_vector(
    sim: &mut Simulation<'_>,
    elab: &Elaborated,
    logic: &LogicFile,
    vector: &[bool],
) -> Result<(), LogicError> {
    for (name, &bit) in logic.inputs.iter().zip(vector) {
        let lead = elab.input_lead(name)?;
        let v = if bit { elab.params.vdd } else { 0.0 };
        sim.set_lead_voltage(lead, v)?;
    }
    Ok(())
}

/// Measures the propagation delay from a step on a sensitizing input to
/// the 50 %-crossing of `output`.
///
/// The circuit settles for `settle_factor·τ` (τ = the family's
/// [`crate::SetLogicParams::switching_time`]), then the input steps and
/// the output is watched for `window_factor·τ`.
///
/// # Errors
///
/// * [`LogicError::NoSensitizingVector`] if the output is not
///   controllable from any single input toggle;
/// * [`LogicError::NoTransition`] if the output never crosses within
///   the window (e.g. a solver threshold so loose the circuit froze).
pub fn measure_delay(
    elab: &Elaborated,
    logic: &LogicFile,
    config: &SimConfig,
    output: &str,
    settle_factor: f64,
    window_factor: f64,
) -> Result<DelayMeasurement, LogicError> {
    let (vector, input_idx) =
        find_sensitizing_vector(logic, output, config.seed).ok_or_else(|| {
            LogicError::NoSensitizingVector {
                output: output.into(),
            }
        })?;
    let input = logic.inputs[input_idx].clone();
    let tau = elab.params.switching_time();

    let mut sim = Simulation::new(&elab.circuit, config.clone())?;
    apply_vector(&mut sim, elab, logic, &vector)?;
    sim.run(RunLength::Time(settle_factor * tau))?;

    // Expected transition direction from the Boolean model.
    let before = logic.evaluate(&vector)[output];
    let mut toggled = vector.clone();
    toggled[input_idx] = !toggled[input_idx];
    let after = logic.evaluate(&toggled)[output];
    debug_assert_ne!(before, after);
    let rising = after;

    // Attach the probe only now so the crossing search sees the
    // post-step trace.
    let node = elab.signal(output)?;
    let probe_idx = sim.add_probe(node, 1);
    let t0 = sim.time();
    let lead = elab.input_lead(&input)?;
    let v_new = if toggled[input_idx] {
        elab.params.vdd
    } else {
        0.0
    };
    sim.set_lead_voltage(lead, v_new)?;
    let events_before = sim.events();
    let record = sim.run(RunLength::Time(window_factor * tau))?;
    let events = sim.events() - events_before;

    let level = 0.5 * elab.params.vdd;
    let probe = &record.probes[probe_idx];
    let crossing =
        probe
            .crossing_time(t0, level, rising, 5)
            .ok_or_else(|| LogicError::NoTransition {
                output: output.into(),
                window: window_factor * tau,
            })?;
    Ok(DelayMeasurement {
        delay: crossing - t0,
        input,
        output: output.into(),
        vector,
        rising,
        events,
    })
}

/// Measures the propagation delay averaged over `transitions`
/// back-and-forth input toggles within one run — the per-run variance
/// of a single stochastic crossing shrinks by `√transitions`, which is
/// what makes the paper's few-percent delay-error comparison (Fig. 7)
/// resolvable above single-electron noise.
///
/// # Errors
///
/// As [`measure_delay`]; additionally fails with
/// [`LogicError::NoTransition`] if fewer than half the toggles produce
/// an observable crossing.
pub fn measure_delay_avg(
    elab: &Elaborated,
    logic: &LogicFile,
    config: &SimConfig,
    output: &str,
    settle_factor: f64,
    window_factor: f64,
    transitions: usize,
) -> Result<DelayMeasurement, LogicError> {
    let (vector, input_idx) =
        find_sensitizing_vector(logic, output, config.seed).ok_or_else(|| {
            LogicError::NoSensitizingVector {
                output: output.into(),
            }
        })?;
    let input = logic.inputs[input_idx].clone();
    let tau = elab.params.switching_time();
    let transitions = transitions.max(1);

    let mut sim = Simulation::new(&elab.circuit, config.clone())?;
    apply_vector(&mut sim, elab, logic, &vector)?;
    sim.run(RunLength::Time(settle_factor * tau))?;

    let node = elab.signal(output)?;
    let probe_idx = sim.add_probe(node, 1);
    let lead = elab.input_lead(&input)?;
    let level = 0.5 * elab.params.vdd;
    let base = logic.evaluate(&vector)[output];

    let mut delays = Vec::with_capacity(transitions);
    let mut events = 0;
    let mut current_bit = vector[input_idx];
    let mut last_rising = base;
    for _ in 0..transitions {
        current_bit = !current_bit;
        let rising = !last_rising;
        last_rising = rising;
        let t0 = sim.time();
        let v_new = if current_bit { elab.params.vdd } else { 0.0 };
        sim.set_lead_voltage(lead, v_new)?;
        let ev0 = sim.events();
        let record = sim.run(RunLength::Time(window_factor * tau))?;
        events += sim.events() - ev0;
        if let Some(t) = record.probes[probe_idx].crossing_time(t0, level, rising, 5) {
            delays.push(t - t0);
        }
    }
    if delays.len() * 2 < transitions {
        return Err(LogicError::NoTransition {
            output: output.into(),
            window: window_factor * tau,
        });
    }
    Ok(DelayMeasurement {
        delay: delays.iter().sum::<f64>() / delays.len() as f64,
        input,
        output: output.into(),
        vector,
        rising: !base,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{elaborate, SetLogicParams};

    fn inverter() -> (LogicFile, Elaborated) {
        let logic = LogicFile::parse("input a\noutput y\ninv y a\n").unwrap();
        let elab = elaborate(&logic, &SetLogicParams::default()).unwrap();
        (logic, elab)
    }

    #[test]
    fn sensitizing_vector_for_inverter() {
        let (logic, _) = inverter();
        let (vector, idx) = find_sensitizing_vector(&logic, "y", 0).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(vector.len(), 1);
    }

    #[test]
    fn sensitizing_vector_full_adder() {
        let logic = LogicFile::parse(
            "input a b cin\noutput sum cout\nxor t1 a b\nxor sum t1 cin\n\
             and t2 a b\nand t3 t1 cin\nor cout t2 t3\n",
        )
        .unwrap();
        for out in ["sum", "cout"] {
            let (vector, idx) = find_sensitizing_vector(&logic, out, 1).unwrap();
            let before = logic.evaluate(&vector)[out];
            let mut t = vector.clone();
            t[idx] = !t[idx];
            assert_ne!(logic.evaluate(&t)[out], before);
        }
    }

    #[test]
    fn constant_output_has_no_vector() {
        // y = a NAND a' is constant 1... simpler: output tied to input
        // of a 2-gate cancellation is hard to express; use a buffer of a
        // buffer and ask for a nonexistent output instead.
        let (logic, _) = inverter();
        assert!(find_sensitizing_vector(&logic, "nope", 0).is_none());
    }

    #[test]
    fn inverter_levels_are_complementary() {
        let (logic, elab) = inverter();
        let cfg = SimConfig::new(elab.params.temperature).with_seed(3);
        let tau = elab.params.switching_time();
        let low_in = settle_outputs(&elab, &logic, &cfg, &[false], 40.0 * tau).unwrap();
        let high_in = settle_outputs(&elab, &logic, &cfg, &[true], 40.0 * tau).unwrap();
        let vdd = elab.params.vdd;
        assert!(
            low_in["y"] > 0.7 * vdd,
            "output high was {:.2} mV of Vdd = {:.2} mV",
            low_in["y"] * 1e3,
            vdd * 1e3
        );
        assert!(
            high_in["y"] < 0.3 * vdd,
            "output low was {:.2} mV",
            high_in["y"] * 1e3
        );
    }

    #[test]
    fn inverter_delay_is_on_the_rc_scale() {
        let (logic, elab) = inverter();
        let cfg = SimConfig::new(elab.params.temperature).with_seed(7);
        let m = measure_delay(&elab, &logic, &cfg, "y", 40.0, 200.0).unwrap();
        let tau = elab.params.switching_time();
        assert!(m.delay > 0.0);
        assert!(
            m.delay < 50.0 * tau,
            "delay {:.3e} s ≫ switching scale {:.3e} s",
            m.delay,
            tau
        );
        assert!(m.events > 0);
    }

    #[test]
    fn nand_truth_table_in_silicon() {
        let logic = LogicFile::parse("input a b\noutput y\nnand y a b\n").unwrap();
        let elab = elaborate(&logic, &SetLogicParams::default()).unwrap();
        let cfg = SimConfig::new(elab.params.temperature).with_seed(11);
        let tau = elab.params.switching_time();
        let vdd = elab.params.vdd;
        for (a, b, want_high) in [
            (false, false, true),
            (true, false, true),
            (false, true, true),
            (true, true, false),
        ] {
            let out = settle_outputs(&elab, &logic, &cfg, &[a, b], 60.0 * tau).unwrap();
            let y = out["y"];
            if want_high {
                assert!(
                    y > 0.6 * vdd,
                    "NAND({a},{b}) = {:.2} mV, want high",
                    y * 1e3
                );
            } else {
                assert!(y < 0.4 * vdd, "NAND({a},{b}) = {:.2} mV, want low", y * 1e3);
            }
        }
    }
}
