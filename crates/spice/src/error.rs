use std::error::Error;
use std::fmt;

use semsim_linalg::LinalgError;

/// Errors from the analytical SPICE-style simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Newton iteration failed to converge even at the minimum step.
    NonConvergence {
        /// Simulated time at which convergence failed (s).
        time: f64,
    },
    /// A component value or parameter was invalid.
    InvalidComponent {
        /// Description of the offending parameter.
        what: String,
    },
    /// A node index was out of range.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// The linear solve inside Newton failed (singular Jacobian).
    Linear(LinalgError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NonConvergence { time } => {
                write!(f, "newton iteration did not converge at t = {time:.3e} s")
            }
            SpiceError::InvalidComponent { what } => write!(f, "invalid component: {what}"),
            SpiceError::UnknownNode { node } => write!(f, "unknown node {node}"),
            SpiceError::Linear(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Linear(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LinalgError> for SpiceError {
    fn from(e: LinalgError) -> Self {
        SpiceError::Linear(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SpiceError::NonConvergence { time: 1e-9 };
        assert!(e.to_string().contains("converge"));
        assert!(e.source().is_none());
        let e = SpiceError::Linear(LinalgError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }
}
