//! Maps nSET/pSET logic netlists onto the analytical SPICE baseline so
//! the paper's benchmarks run on both engines (Figs. 6–7).
//!
//! Gates are lowered by [`semsim_logic::lower`] to the same INV/NAND/NOR
//! transistor networks the Monte Carlo elaboration uses; each transistor
//! becomes one [`SetModel`] instance with the family's tuned bias
//! charge folded into `q_offset`.

use std::collections::HashMap;

use semsim_core::constants::E_CHARGE;
use semsim_logic::{find_sensitizing_vector, lower, SetLogicParams};
use semsim_netlist::{GateKind, LogicFile};

use crate::nodal::{NodalCircuit, Node, Transient};
use crate::{SetModel, SpiceError};

/// A logic netlist mapped onto the nodal simulator.
#[derive(Debug)]
pub struct MappedLogic {
    /// The nodal circuit.
    pub circuit: NodalCircuit,
    /// Supply node.
    pub vdd: Node,
    /// Source node per primary input.
    pub inputs: HashMap<String, Node>,
    /// Node per logic signal.
    pub signals: HashMap<String, Node>,
    /// The family parameters used.
    pub params: SetLogicParams,
}

fn base_model(params: &SetLogicParams, q_offset: f64) -> SetModel {
    SetModel {
        r1: params.junction_resistance,
        c1: params.junction_capacitance,
        r2: params.junction_resistance,
        c2: params.junction_capacitance,
        cg: params.input_gate_capacitance,
        c_extra: params.bias_gate_capacitance,
        q_offset,
        temperature: params.temperature,
    }
}

/// Builds the nodal circuit for `logic`.
///
/// # Errors
///
/// Propagates parameter validation (as [`SpiceError::InvalidComponent`])
/// and circuit construction errors.
pub fn map_logic(logic: &LogicFile, params: &SetLogicParams) -> Result<MappedLogic, SpiceError> {
    params
        .validate()
        .map_err(|e| SpiceError::InvalidComponent {
            what: e.to_string(),
        })?;
    let pset = base_model(params, params.pset_bias_charge() * E_CHARGE);
    let nset = base_model(params, params.nset_bias_charge() * E_CHARGE);

    let mut c = NodalCircuit::new();
    let vdd = c.add_node();
    c.set_source(vdd, params.vdd)?;

    let mut signals: HashMap<String, Node> = HashMap::new();
    let mut inputs: HashMap<String, Node> = HashMap::new();
    for name in &logic.inputs {
        let n = c.add_node();
        c.set_source(n, 0.0)?;
        signals.insert(name.clone(), n);
        inputs.insert(name.clone(), n);
    }

    let gates = lower(logic);
    for g in &gates {
        let out = c.add_node();
        c.add_capacitor(out, Node::GROUND, params.load_capacitance)?;
        signals.insert(g.output.clone(), out);
    }
    for g in &gates {
        let out = signals[&g.output];
        let ins: Vec<Node> = g.inputs.iter().map(|s| signals[s]).collect();
        match g.kind {
            GateKind::Inv => {
                c.add_set(pset, vdd, out, ins[0])?;
                c.add_set(nset, out, Node::GROUND, ins[0])?;
            }
            GateKind::Nand => {
                for &i in &ins {
                    c.add_set(pset, vdd, out, i)?;
                }
                let mut top = out;
                for (k, &i) in ins.iter().enumerate() {
                    let bottom = if k + 1 == ins.len() {
                        Node::GROUND
                    } else {
                        c.add_node()
                    };
                    c.add_set(nset, top, bottom, i)?;
                    top = bottom;
                }
            }
            GateKind::Nor => {
                let mut top = vdd;
                for (k, &i) in ins.iter().enumerate() {
                    let bottom = if k + 1 == ins.len() {
                        out
                    } else {
                        c.add_node()
                    };
                    c.add_set(pset, top, bottom, i)?;
                    top = bottom;
                }
                for &i in &ins {
                    c.add_set(nset, out, Node::GROUND, i)?;
                }
            }
            _ => unreachable!("lowered netlist contains only INV/NAND/NOR"),
        }
    }

    Ok(MappedLogic {
        circuit: c,
        vdd,
        inputs,
        signals,
        params: *params,
    })
}

impl MappedLogic {
    /// Applies a Boolean vector to the primary inputs of a running
    /// transient.
    ///
    /// # Errors
    ///
    /// Propagates source errors (cannot occur for a mapped circuit).
    pub fn apply_vector(
        &self,
        tr: &mut Transient<'_>,
        logic: &LogicFile,
        vector: &[bool],
    ) -> Result<(), SpiceError> {
        for (name, &bit) in logic.inputs.iter().zip(vector) {
            let v = if bit { self.params.vdd } else { 0.0 };
            tr.set_source(self.inputs[name], v)?;
        }
        Ok(())
    }
}

/// Result of an analytical-baseline delay measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiceDelay {
    /// Measured delay (s).
    pub delay: f64,
    /// Newton iterations spent (work metric).
    pub newton_iterations: u64,
    /// Time steps taken.
    pub steps: u64,
}

/// Measures the propagation delay of `output` with the analytical
/// engine: settle under a sensitizing vector, step the sensitizing
/// input, march until the output crosses `V_dd/2`.
///
/// Uses the same sensitizing-vector search as the Monte Carlo flow so
/// both engines measure the same transition.
///
/// # Errors
///
/// * [`SpiceError::InvalidComponent`] if no sensitizing vector exists;
/// * [`SpiceError::NonConvergence`] if Newton fails (the paper's SPICE
///   failure mode), or if the output never crosses within the window.
pub fn measure_delay(
    logic: &LogicFile,
    params: &SetLogicParams,
    output: &str,
    dt: f64,
    settle: f64,
    window: f64,
) -> Result<SpiceDelay, SpiceError> {
    let mapped = map_logic(logic, params)?;
    let (vector, input_idx) =
        find_sensitizing_vector(logic, output, 0).ok_or_else(|| SpiceError::InvalidComponent {
            what: format!("no sensitizing vector for output `{output}`"),
        })?;
    let out_node = *mapped
        .signals
        .get(output)
        .ok_or_else(|| SpiceError::InvalidComponent {
            what: format!("unknown output `{output}`"),
        })?;

    let mut tr = mapped.circuit.transient(dt)?;
    mapped.apply_vector(&mut tr, logic, &vector)?;
    tr.run_for(settle)?;

    let before = logic.evaluate(&vector)[output];
    let mut toggled = vector.clone();
    toggled[input_idx] = !toggled[input_idx];
    let rising = !before;

    let t0 = tr.time();
    mapped.apply_vector(&mut tr, logic, &toggled)?;
    let level = 0.5 * params.vdd;
    let mut elapsed = 0.0;
    while elapsed < window {
        tr.run_for(dt)?;
        elapsed = tr.time() - t0;
        let v = tr.voltage(out_node);
        let crossed = if rising { v >= level } else { v <= level };
        if crossed {
            return Ok(SpiceDelay {
                delay: elapsed,
                newton_iterations: tr.newton_iterations(),
                steps: tr.steps(),
            });
        }
    }
    Err(SpiceError::NonConvergence { time: tr.time() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SetLogicParams {
        SetLogicParams::default()
    }

    #[test]
    fn maps_inverter() {
        let logic = LogicFile::parse("input a\noutput y\ninv y a\n").unwrap();
        let m = map_logic(&logic, &params()).unwrap();
        assert_eq!(m.circuit.num_sets(), 2);
        assert!(m.signals.contains_key("y"));
        assert!(m.inputs.contains_key("a"));
    }

    #[test]
    fn inverter_delay_measured() {
        let logic = LogicFile::parse("input a\noutput y\ninv y a\n").unwrap();
        let d = measure_delay(&logic, &params(), "y", 5e-11, 40e-9, 100e-9).unwrap();
        assert!(d.delay > 0.0 && d.delay < 100e-9, "{d:?}");
        assert!(d.newton_iterations > 0);
    }

    #[test]
    fn nand_static_levels() {
        let logic = LogicFile::parse("input a b\noutput y\nnand y a b\n").unwrap();
        let m = map_logic(&logic, &params()).unwrap();
        let vdd = m.params.vdd;
        for (a, b, want_high) in [(false, false, true), (true, true, false)] {
            let mut tr = m.circuit.transient(5e-11).unwrap();
            m.apply_vector(&mut tr, &logic, &[a, b]).unwrap();
            tr.run_for(80e-9).unwrap();
            let y = tr.voltage(m.signals["y"]);
            if want_high {
                assert!(y > 0.6 * vdd, "NAND({a},{b}) = {:.2} mV", y * 1e3);
            } else {
                assert!(y < 0.4 * vdd, "NAND({a},{b}) = {:.2} mV", y * 1e3);
            }
        }
    }

    #[test]
    fn full_adder_maps_with_xor_lowering() {
        let logic = LogicFile::parse(
            "input a b cin\noutput sum cout\nxor t1 a b\nxor sum t1 cin\n\
             and t2 a b\nand t3 t1 cin\nor cout t2 t3\n",
        )
        .unwrap();
        let m = map_logic(&logic, &params()).unwrap();
        // 50 SETs — same count as the Monte Carlo elaboration.
        assert_eq!(m.circuit.num_sets(), 50);
    }

    #[test]
    fn unknown_output_rejected() {
        let logic = LogicFile::parse("input a\noutput y\ninv y a\n").unwrap();
        assert!(measure_delay(&logic, &params(), "zz", 5e-11, 1e-9, 1e-9).is_err());
    }
}
