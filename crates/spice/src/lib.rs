//! The analytical "SPICE" baseline of the paper's evaluation.
//!
//! The paper compares SEMSIM against an analytical SET model simulated
//! in SPICE (an extended Inokawa–Takahashi model with multiple gates).
//! This crate provides the equivalent baseline built from scratch:
//!
//! * [`SetModel`] — a compact, analytical steady-state model of a SET's
//!   drain current: the exact stationary solution of the sequential-
//!   tunneling master equation over a window of island charge states.
//!   Like Inokawa's model it is **first-order only**: no cotunneling
//!   and no inter-device charge coupling (devices interact solely
//!   through node voltages) — precisely the limitations the paper
//!   ascribes to the SPICE approach (§I).
//! * [`nodal`] — a small transient nodal simulator: Newton–Raphson with
//!   backward-Euler integration, supporting capacitors, DC sources and
//!   SET devices. Non-convergence is reported as an error, mirroring
//!   the SPICE failures the paper observed on three benchmarks.
//! * [`logic_map`] — maps the logic crate's nSET/pSET netlists onto the
//!   analytical model so the same benchmarks run on both engines.
//!
//! # Example
//!
//! ```
//! use semsim_spice::SetModel;
//!
//! // The paper's Fig. 1b SET at T = 5 K.
//! let set = SetModel::symmetric(1e6, 1e-18, 3e-18, 5.0);
//! let on = set.drain_current(0.02, -0.02, 0.04); // gate near e/2Cg
//! let off = set.drain_current(0.005, -0.005, 0.0);
//! assert!(on.abs() > 10.0 * off.abs());
//! ```

pub mod logic_map;
pub mod nodal;

mod error;
mod model;

pub use error::SpiceError;
pub use model::SetModel;
