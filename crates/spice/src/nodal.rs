//! Transient nodal simulator: backward Euler + Newton–Raphson.
//!
//! Unknowns are the voltages of non-source nodes. Each time step solves
//!
//! ```text
//! C·(V(t+Δt) − V(t))/Δt + I_dev(V(t+Δt)) = 0
//! ```
//!
//! by Newton iteration with the device Jacobian assembled from the SET
//! model's finite-difference conductances. On non-convergence the step
//! is halved; below a minimum step the run aborts with
//! [`SpiceError::NonConvergence`] — the analogue of the SPICE failures
//! the paper reports for three of its benchmarks.

use semsim_linalg::Matrix;

use crate::model::Terminal;
use crate::{SetModel, SpiceError};

/// A node handle in the nodal circuit. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node(pub(crate) usize);

impl Node {
    /// Ground (0 V reference).
    pub const GROUND: Node = Node(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One SET device instance.
#[derive(Debug, Clone, Copy)]
struct SetInstance {
    model: SetModel,
    source: Node,
    drain: Node,
    gate: Node,
}

/// A circuit for the nodal simulator.
///
/// # Example
///
/// ```
/// use semsim_spice::nodal::NodalCircuit;
/// use semsim_spice::SetModel;
///
/// # fn main() -> Result<(), semsim_spice::SpiceError> {
/// let mut c = NodalCircuit::new();
/// let vdd = c.add_node();
/// let out = c.add_node();
/// c.set_source(vdd, 10e-3)?;
/// c.add_capacitor(out, semsim_spice::nodal::Node::GROUND, 150e-18)?;
/// let set = SetModel::symmetric(1e6, 0.25e-18, 5e-18, 1.0);
/// c.add_set(set, vdd, out, semsim_spice::nodal::Node::GROUND)?;
/// let mut sim = c.transient(1e-10)?;
/// sim.run_for(5e-9)?;
/// assert!(sim.voltage(out) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodalCircuit {
    /// Number of nodes including ground.
    nodes: usize,
    /// `Some(v)` for source nodes.
    sources: Vec<Option<f64>>,
    capacitors: Vec<(Node, Node, f64)>,
    sets: Vec<SetInstance>,
}

impl NodalCircuit {
    /// An empty circuit containing only ground.
    pub fn new() -> Self {
        NodalCircuit {
            nodes: 1,
            sources: vec![Some(0.0)],
            capacitors: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// Adds a floating node.
    pub fn add_node(&mut self) -> Node {
        let n = Node(self.nodes);
        self.nodes += 1;
        self.sources.push(None);
        n
    }

    /// Number of nodes, including ground.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of SET devices.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Pins `node` to a DC source of `volts` (can be changed during a
    /// transient with [`Transient::set_source`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for an invalid node.
    pub fn set_source(&mut self, node: Node, volts: f64) -> Result<(), SpiceError> {
        self.check(node)?;
        self.sources[node.0] = Some(volts);
        Ok(())
    }

    /// Adds a linear capacitor.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive values.
    pub fn add_capacitor(&mut self, a: Node, b: Node, farads: f64) -> Result<(), SpiceError> {
        self.check(a)?;
        self.check(b)?;
        if !(farads > 0.0) || !farads.is_finite() {
            return Err(SpiceError::InvalidComponent {
                what: format!("capacitance {farads}"),
            });
        }
        self.capacitors.push((a, b, farads));
        Ok(())
    }

    /// Adds a SET device between `source`/`drain`, gated by `gate`.
    ///
    /// The model's junction and gate capacitances are automatically
    /// stamped as linear capacitors so the node dynamics see the same
    /// loading as the Monte Carlo circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for invalid nodes.
    pub fn add_set(
        &mut self,
        model: SetModel,
        source: Node,
        drain: Node,
        gate: Node,
    ) -> Result<(), SpiceError> {
        self.check(source)?;
        self.check(drain)?;
        self.check(gate)?;
        // The island is not a nodal unknown (the compact model hides
        // it); its capacitances load the terminals approximately by
        // stamping each terminal's junction capacitance to ground.
        self.capacitors.push((source, Node::GROUND, model.c1));
        self.capacitors.push((drain, Node::GROUND, model.c2));
        self.capacitors.push((gate, Node::GROUND, model.cg));
        self.sets.push(SetInstance {
            model,
            source,
            drain,
            gate,
        });
        Ok(())
    }

    fn check(&self, n: Node) -> Result<(), SpiceError> {
        if n.0 < self.nodes {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode { node: n.0 })
        }
    }

    /// Starts a transient analysis with the given base step (s).
    ///
    /// The initial state is every non-source node at 0 V.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidComponent`] for a non-positive step.
    pub fn transient(&self, dt: f64) -> Result<Transient<'_>, SpiceError> {
        if !(dt > 0.0) || !dt.is_finite() {
            return Err(SpiceError::InvalidComponent {
                what: format!("time step {dt}"),
            });
        }
        let voltages: Vec<f64> = self.sources.iter().map(|s| s.unwrap_or(0.0)).collect();
        Ok(Transient {
            circuit: self,
            sources: self.sources.clone(),
            voltages,
            dt,
            time: 0.0,
            newton_iterations: 0,
            steps: 0,
        })
    }
}

/// A running transient analysis.
#[derive(Debug, Clone)]
pub struct Transient<'c> {
    circuit: &'c NodalCircuit,
    sources: Vec<Option<f64>>,
    voltages: Vec<f64>,
    dt: f64,
    time: f64,
    newton_iterations: u64,
    steps: u64,
}

/// Newton convergence tolerance (V).
const NEWTON_TOL: f64 = 3e-8;
/// Maximum Newton iterations per step.
const NEWTON_MAX: usize = 60;
/// Step-halving floor, as a fraction of the base step.
const MIN_STEP_FRACTION: f64 = 1.0 / 1024.0;

impl Transient<'_> {
    /// Current simulated time (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Voltage of a node (V).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn voltage(&self, node: Node) -> f64 {
        self.voltages[node.0]
    }

    /// Total Newton iterations performed (work metric for Fig. 6).
    pub fn newton_iterations(&self) -> u64 {
        self.newton_iterations
    }

    /// Time steps completed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Changes a source voltage mid-run (input stimulus).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidComponent`] if the node is not a
    /// source.
    pub fn set_source(&mut self, node: Node, volts: f64) -> Result<(), SpiceError> {
        match self.sources.get_mut(node.0) {
            Some(Some(v)) => {
                *v = volts;
                self.voltages[node.0] = volts;
                Ok(())
            }
            _ => Err(SpiceError::InvalidComponent {
                what: format!("node {} is not a source", node.0),
            }),
        }
    }

    /// Advances the transient by `span` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NonConvergence`] if Newton fails even at
    /// the minimum sub-step, or [`SpiceError::Linear`] on a singular
    /// Jacobian.
    pub fn run_for(&mut self, span: f64) -> Result<(), SpiceError> {
        let t_end = self.time + span;
        while self.time < t_end - 1e-18 {
            let mut step = self.dt.min(t_end - self.time);
            loop {
                match self.try_step(step) {
                    Ok(v_new) => {
                        self.voltages = v_new;
                        self.time += step;
                        self.steps += 1;
                        break;
                    }
                    Err(SpiceError::NonConvergence { .. })
                        if step > self.dt * MIN_STEP_FRACTION =>
                    {
                        step *= 0.5;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// One backward-Euler step of size `step`; returns the new voltage
    /// vector without committing it.
    ///
    /// Uses a chord (modified Newton) iteration: the Jacobian is
    /// assembled and factorized once per step at the incoming state and
    /// reused, so later iterations only pay the residual evaluation —
    /// the standard trade for mildly nonlinear RC-style networks.
    fn try_step(&mut self, step: f64) -> Result<Vec<f64>, SpiceError> {
        let c = self.circuit;
        let unknowns: Vec<usize> = (0..c.nodes).filter(|&n| c.sources[n].is_none()).collect();
        let index_of: Vec<Option<usize>> = {
            let mut v = vec![None; c.nodes];
            for (k, &n) in unknowns.iter().enumerate() {
                v[n] = Some(k);
            }
            v
        };
        let nu = unknowns.len();
        if nu == 0 {
            return Ok(self.voltages.clone());
        }

        let mut v = self.voltages.clone();
        // Source nodes take their (possibly just-stepped) values.
        for (vn, src) in v.iter_mut().zip(&self.sources).take(c.nodes) {
            if let Some(val) = *src {
                *vn = val;
            }
        }
        let v_prev = self.voltages.clone();

        // --- Jacobian at the incoming state (chord iteration). ---
        let mut jac = Matrix::zeros(nu, nu);
        for &(a, b, cap) in &c.capacitors {
            if let Some(ka) = index_of[a.0] {
                jac.add_to(ka, ka, cap / step);
                if let Some(kb) = index_of[b.0] {
                    jac.add_to(ka, kb, -cap / step);
                }
            }
            if let Some(kb) = index_of[b.0] {
                jac.add_to(kb, kb, cap / step);
                if let Some(ka) = index_of[a.0] {
                    jac.add_to(kb, ka, -cap / step);
                }
            }
        }
        for set in &c.sets {
            let (vs, vd, vg) = (v[set.source.0], v[set.drain.0], v[set.gate.0]);
            if index_of[set.source.0].is_none() && index_of[set.drain.0].is_none() {
                continue;
            }
            let i0 = set.model.drain_current(vs, vd, vg);
            for (term, tnode) in [
                (Terminal::Source, set.source),
                (Terminal::Drain, set.drain),
                (Terminal::Gate, set.gate),
            ] {
                if let Some(kc) = index_of[tnode.0] {
                    let g = set.model.didv(vs, vd, vg, i0, term);
                    if let Some(ks) = index_of[set.source.0] {
                        jac.add_to(ks, kc, g);
                    }
                    if let Some(kd) = index_of[set.drain.0] {
                        jac.add_to(kd, kc, -g);
                    }
                }
            }
        }
        let lu = jac.lu()?;

        for _iter in 0..NEWTON_MAX {
            self.newton_iterations += 1;
            // Residual F(v) over the unknowns.
            let mut f = vec![0.0; nu];
            for &(a, b, cap) in &c.capacitors {
                let da = v[a.0] - v_prev[a.0];
                let db = v[b.0] - v_prev[b.0];
                let i = cap * (da - db) / step;
                if let Some(ka) = index_of[a.0] {
                    f[ka] += i;
                }
                if let Some(kb) = index_of[b.0] {
                    f[kb] -= i;
                }
            }
            for set in &c.sets {
                let (vs, vd, vg) = (v[set.source.0], v[set.drain.0], v[set.gate.0]);
                if index_of[set.source.0].is_none() && index_of[set.drain.0].is_none() {
                    continue;
                }
                let i = set.model.drain_current(vs, vd, vg);
                if let Some(ks) = index_of[set.source.0] {
                    f[ks] += i;
                }
                if let Some(kd) = index_of[set.drain.0] {
                    f[kd] -= i;
                }
            }

            // Solve J·Δ = −F with the per-step factors.
            let rhs: Vec<f64> = f.iter().map(|x| -x).collect();
            let delta = lu.solve(&rhs)?;
            let mut worst: f64 = 0.0;
            for (k, &n) in unknowns.iter().enumerate() {
                // Damped update: voltages move at most 2 mV per chord
                // iteration, which keeps the highly nonlinear SET model
                // inside the stale Jacobian's basin.
                let d = delta[k].clamp(-2e-3, 2e-3);
                v[n] += d;
                worst = worst.max(d.abs());
            }
            if worst < NEWTON_TOL {
                return Ok(v);
            }
        }
        Err(SpiceError::NonConvergence { time: self.time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tuned nSET/pSET models of the logic family, expressed for
    /// the compact model. Bias charges from `semsim-logic`.
    fn logic_models() -> (SetModel, SetModel, f64) {
        use semsim_core::constants::E_CHARGE;
        let vdd = 10e-3;
        let (cj, cg, cb) = (0.25e-18, 5e-18, 0.5e-18);
        let csig = 2.0 * cj + cg + cb;
        let qbp = 0.5 * E_CHARGE + csig * vdd - 0.05 * E_CHARGE;
        let qbn = 0.5 * E_CHARGE - cg * vdd;
        let base = SetModel {
            r1: 1e6,
            c1: cj,
            r2: 1e6,
            c2: cj,
            cg,
            c_extra: cb,
            q_offset: 0.0,
            temperature: 1.0,
        };
        let pset = SetModel {
            q_offset: qbp,
            ..base
        };
        let nset = SetModel {
            q_offset: qbn,
            ..base
        };
        (pset, nset, vdd)
    }

    #[test]
    fn rc_discharge_matches_analytic() {
        // A capacitor from a source through... no resistors exist, so
        // test the simplest SET-as-resistor case far above blockade.
        let mut c = NodalCircuit::new();
        let vin = c.add_node();
        let out = c.add_node();
        c.set_source(vin, 0.3).unwrap();
        c.add_capacitor(out, Node::GROUND, 1e-15).unwrap();
        // A SET far above blockade ≈ 2 MΩ resistor.
        let set = SetModel::symmetric(1e6, 1e-18, 1e-18, 10.0);
        c.add_set(set, vin, out, Node::GROUND).unwrap();
        let mut tr = c.transient(2e-11).unwrap();
        // τ = 2 MΩ · ~1 fF = 2 ns. After 5τ the output is ≈ V_in.
        tr.run_for(10e-9).unwrap();
        let v = tr.voltage(out);
        assert!(v > 0.25, "charged to {v}");
        assert!(tr.steps() > 0 && tr.newton_iterations() > 0);
    }

    #[test]
    fn inverter_statics_match_logic_family() {
        let (pset, nset, vdd) = logic_models();
        for (vin, want_high) in [(0.0, true), (vdd, false)] {
            let mut c = NodalCircuit::new();
            let vddn = c.add_node();
            let inn = c.add_node();
            let out = c.add_node();
            c.set_source(vddn, vdd).unwrap();
            c.set_source(inn, vin).unwrap();
            c.add_capacitor(out, Node::GROUND, 150e-18).unwrap();
            c.add_set(pset, vddn, out, inn).unwrap();
            c.add_set(nset, out, Node::GROUND, inn).unwrap();
            let mut tr = c.transient(5e-11).unwrap();
            tr.run_for(60e-9).unwrap();
            let v = tr.voltage(out);
            if want_high {
                assert!(v > 0.6 * vdd, "inverter(0) = {:.2} mV", v * 1e3);
            } else {
                assert!(v < 0.4 * vdd, "inverter(1) = {:.2} mV", v * 1e3);
            }
        }
    }

    #[test]
    fn source_step_mid_run() {
        let (pset, nset, vdd) = logic_models();
        let mut c = NodalCircuit::new();
        let vddn = c.add_node();
        let inn = c.add_node();
        let out = c.add_node();
        c.set_source(vddn, vdd).unwrap();
        c.set_source(inn, 0.0).unwrap();
        c.add_capacitor(out, Node::GROUND, 150e-18).unwrap();
        c.add_set(pset, vddn, out, inn).unwrap();
        c.add_set(nset, out, Node::GROUND, inn).unwrap();
        let mut tr = c.transient(5e-11).unwrap();
        tr.run_for(60e-9).unwrap();
        let high = tr.voltage(out);
        tr.set_source(inn, vdd).unwrap();
        tr.run_for(60e-9).unwrap();
        let low = tr.voltage(out);
        assert!(high > low + 0.3 * vdd, "high {high} low {low}");
    }

    #[test]
    fn validation_errors() {
        let mut c = NodalCircuit::new();
        let n = c.add_node();
        assert!(c.add_capacitor(n, Node::GROUND, -1.0).is_err());
        assert!(c.add_capacitor(n, Node(99), 1e-18).is_err());
        assert!(c.set_source(Node(99), 0.0).is_err());
        assert!(c.transient(0.0).is_err());
        let set = SetModel::symmetric(1e6, 1e-18, 1e-18, 1.0);
        assert!(c.add_set(set, n, Node(42), Node::GROUND).is_err());
        c.add_capacitor(n, Node::GROUND, 1e-18).unwrap();
        let mut tr = c.transient(1e-10).unwrap();
        assert!(tr.set_source(n, 1.0).is_err(), "not a source");
    }

    #[test]
    fn all_source_circuit_is_trivially_stable() {
        let mut c = NodalCircuit::new();
        let a = c.add_node();
        c.set_source(a, 5e-3).unwrap();
        let mut tr = c.transient(1e-10).unwrap();
        tr.run_for(1e-9).unwrap();
        assert_eq!(tr.voltage(a), 5e-3);
    }
}
