//! Analytical steady-state SET model (the baseline's compact model).
//!
//! The drain current of a SET in the sequential-tunneling regime is the
//! stationary solution of a one-dimensional birth–death master equation
//! over the island electron number `n`. Because the chain is
//! one-dimensional, the stationary distribution has an exact product
//! form, making the model *analytical* in the same sense as the
//! Inokawa–Takahashi model the paper's SPICE baseline used: a closed
//! evaluation per bias point, first-order physics only.

use semsim_core::constants::{thermal_energy, E_CHARGE};
use semsim_core::rates::orthodox_rate;

/// How many island charge states to keep on each side of the optimum.
const STATE_WINDOW: i64 = 3;

/// Analytical steady-state model of one SET.
///
/// Terminals: source (junction 1), drain (junction 2), one signal gate,
/// plus a fixed polarization charge (used for the nSET/pSET bias gates
/// and background charge). See [`SetModel::drain_current`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetModel {
    /// Source-junction resistance (Ω).
    pub r1: f64,
    /// Source-junction capacitance (F).
    pub c1: f64,
    /// Drain-junction resistance (Ω).
    pub r2: f64,
    /// Drain-junction capacitance (F).
    pub c2: f64,
    /// Signal gate capacitance (F).
    pub cg: f64,
    /// Additional fixed island capacitance (bias gates etc.) (F).
    pub c_extra: f64,
    /// Fixed polarization charge (C): `Q_b` plus any bias-gate charge.
    pub q_offset: f64,
    /// Temperature (K).
    pub temperature: f64,
}

impl SetModel {
    /// A symmetric SET: `R₁ = R₂ = r`, `C₁ = C₂ = c`, gate `cg`, no
    /// offset — the paper's Fig. 1b device shape.
    pub fn symmetric(r: f64, c: f64, cg: f64, temperature: f64) -> Self {
        SetModel {
            r1: r,
            c1: c,
            r2: r,
            c2: c,
            cg,
            c_extra: 0.0,
            q_offset: 0.0,
            temperature,
        }
    }

    /// The same model with a fixed background charge of `qb` electron
    /// charges on the island — the convention of the circuit builder's
    /// `add_island_with_charge`, so an analytical baseline for a Monte
    /// Carlo device can be written down with the same number.
    #[must_use]
    pub fn with_background_charge(mut self, qb: f64) -> Self {
        self.q_offset = qb * E_CHARGE;
        self
    }

    /// Total island capacitance `C_Σ`.
    pub fn sigma(&self) -> f64 {
        self.c1 + self.c2 + self.cg + self.c_extra
    }

    /// Island polarization charge for the given terminal voltages (C).
    fn polarization(&self, vs: f64, vd: f64, vg: f64) -> f64 {
        self.q_offset + self.c1 * vs + self.c2 * vd + self.cg * vg
    }

    /// Steady-state conventional drain current `I_sd` (A) flowing from
    /// source to drain, for source/drain/gate voltages (V).
    ///
    /// Positive current means conventional current enters the source
    /// terminal and leaves at the drain.
    pub fn drain_current(&self, vs: f64, vd: f64, vg: f64) -> f64 {
        let kt = thermal_energy(self.temperature);
        let csig = self.sigma();
        let ec = E_CHARGE * E_CHARGE / (2.0 * csig);
        let q0 = self.polarization(vs, vd, vg);

        // Island potential at n electrons: φ(n) = (q0 − n·e)/C_Σ.
        let phi = |n: i64| (q0 - n as f64 * E_CHARGE) / csig;

        // ΔW for an electron entering the island from a terminal at Vt
        // (paper Eq. 2 with a lead endpoint): e(Vt − φ) + e²/2C_Σ; and
        // for leaving to the terminal: e(φ − Vt) + e²/2C_Σ.
        let dw_enter = |n: i64, vt: f64| E_CHARGE * (vt - phi(n)) + ec;
        let dw_exit = |n: i64, vt: f64| E_CHARGE * (phi(n) - vt) + ec;

        // Rates at occupation n.
        let g1_in = |n: i64| orthodox_rate(dw_enter(n, vs), kt, self.r1);
        let g1_out = |n: i64| orthodox_rate(dw_exit(n, vs), kt, self.r1);
        let g2_in = |n: i64| orthodox_rate(dw_enter(n, vd), kt, self.r2);
        let g2_out = |n: i64| orthodox_rate(dw_exit(n, vd), kt, self.r2);

        // Centre the state window on the electrostatic optimum.
        let n0 = (q0 / E_CHARGE).round() as i64;
        let lo = n0 - STATE_WINDOW;
        let hi = n0 + STATE_WINDOW;

        // Product-form stationary distribution of the birth–death
        // chain: p(n+1)/p(n) = Γ_up(n)/Γ_down(n+1). Rates can underflow
        // to exact zero deep in blockade, so every transition gets a
        // vanishing regularization ε (making the chain irreducible) and
        // the recursion runs in log space (the ratios span thousands of
        // decades at low temperature).
        let max_rate = (lo..=hi)
            .map(|n| (g1_in(n) + g2_in(n)).max(g1_out(n) + g2_out(n)))
            .fold(0.0_f64, f64::max);
        if !(max_rate > 0.0) {
            return 0.0; // fully frozen: no transport at all
        }
        let eps = max_rate * 1e-14;
        let n_states = (hi - lo + 1) as usize;
        let mut log_w = Vec::with_capacity(n_states);
        log_w.push(0.0_f64);
        for n in lo..hi {
            let up = g1_in(n) + g2_in(n) + eps;
            let down = g1_out(n + 1) + g2_out(n + 1) + eps;
            let prev = *log_w.last().expect("nonempty");
            log_w.push(prev + up.ln() - down.ln());
        }
        let log_max = log_w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let total: f64 = log_w.iter().map(|lw| (lw - log_max).exp()).sum();

        // Electron flow through junction 1 (source): electrons entering
        // from the source minus leaving to the source.
        let mut electron_flow = 0.0;
        for (i, lw) in log_w.iter().enumerate() {
            let n = lo + i as i64;
            let p = (lw - log_max).exp() / total;
            electron_flow += p * (g1_in(n) - g1_out(n));
        }
        // Electrons entering from the source carry charge −e into the
        // device, so conventional source→drain current is −e·flow.
        -E_CHARGE * electron_flow
    }

    /// One-sided finite-difference conductance, given the already-known
    /// current `i0` at the base point (saves half the model evaluations
    /// inside the Newton loop).
    pub(crate) fn didv(&self, vs: f64, vd: f64, vg: f64, i0: f64, which: Terminal) -> f64 {
        let h = 1e-6; // 1 µV — far below e/C_Σ scales, far above noise
        let a = match which {
            Terminal::Source => self.drain_current(vs + h, vd, vg),
            Terminal::Drain => self.drain_current(vs, vd + h, vg),
            Terminal::Gate => self.drain_current(vs, vd, vg + h),
        };
        (a - i0) / h
    }
}

/// A SET terminal, for derivative stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Terminal {
    Source,
    Drain,
    Gate,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_set() -> SetModel {
        SetModel::symmetric(1e6, 1e-18, 3e-18, 5.0)
    }

    #[test]
    fn blockade_at_low_bias() {
        let set = paper_set();
        // e/CΣ = 32 mV; inside the diamond at Vg = 0 current is tiny.
        let i = set.drain_current(5e-3, -5e-3, 0.0);
        let i_on = set.drain_current(20e-3, -20e-3, 0.0);
        assert!(i.abs() < 1e-2 * i_on.abs(), "{i} vs {i_on}");
    }

    #[test]
    fn current_is_odd_in_symmetric_bias() {
        let set = paper_set();
        for &v in &[5e-3, 15e-3, 25e-3] {
            let fw = set.drain_current(v, -v, 0.0);
            let bw = set.drain_current(-v, v, 0.0);
            assert!(
                (fw + bw).abs() <= 1e-6 * fw.abs().max(1e-18),
                "v={v}: {fw} vs {bw}"
            );
        }
    }

    #[test]
    fn gate_modulation_is_periodic() {
        let set = paper_set();
        let period = E_CHARGE / set.cg; // e/Cg ≈ 53.4 mV
        let i1 = set.drain_current(8e-3, -8e-3, 10e-3);
        let i2 = set.drain_current(8e-3, -8e-3, 10e-3 + period);
        assert!((i1 - i2).abs() < 2e-2 * i1.abs().max(1e-15), "{i1} vs {i2}");
    }

    #[test]
    fn gate_opens_the_blockade() {
        let set = paper_set();
        // Half-period gate bias (e/2Cg ≈ 26.7 mV) puts the device at the
        // degeneracy: current flows even at small Vds.
        let blocked = set.drain_current(5e-3, -5e-3, 0.0);
        let open = set.drain_current(5e-3, -5e-3, E_CHARGE / (2.0 * set.cg));
        assert!(open.abs() > 50.0 * blocked.abs().max(1e-20));
    }

    #[test]
    fn ohmic_at_large_bias() {
        let set = paper_set();
        // Far above the blockade the SET behaves like R₁+R₂ in series.
        let v = 0.5;
        let i = set.drain_current(v / 2.0, -v / 2.0, 0.0);
        let r_eff = v / i;
        assert!((r_eff - 2e6).abs() < 0.2e6, "effective resistance {r_eff}");
    }

    #[test]
    fn background_charge_shifts_the_diamond() {
        let mut set = paper_set();
        let blocked = set.drain_current(5e-3, -5e-3, 0.0);
        set.q_offset = 0.5 * E_CHARGE; // degeneracy point
        let open = set.drain_current(5e-3, -5e-3, 0.0);
        assert!(open.abs() > 50.0 * blocked.abs().max(1e-20));
        // The builder form states the same charge in units of e.
        let built = paper_set().with_background_charge(0.5);
        assert_eq!(built.drain_current(5e-3, -5e-3, 0.0), open);
    }

    #[test]
    fn zero_temperature_supported() {
        let set = SetModel::symmetric(1e6, 1e-18, 3e-18, 0.0);
        let blocked = set.drain_current(5e-3, -5e-3, 0.0);
        // Only the ε-regularization remains: < 1e-18 A (≈ 6 e/s).
        assert!(blocked.abs() < 1e-18, "{blocked}");
        let open = set.drain_current(25e-3, -25e-3, 0.0);
        assert!(open > 0.0);
    }

    #[test]
    fn derivatives_are_finite_and_sane() {
        let set = paper_set();
        let i0 = set.drain_current(20e-3, -20e-3, 0.0);
        let g = set.didv(20e-3, -20e-3, 0.0, i0, Terminal::Source);
        assert!(g.is_finite() && g > 0.0);
        let gg = set.didv(20e-3, -20e-3, 0.0, i0, Terminal::Gate);
        assert!(gg.is_finite());
    }

    #[test]
    fn matches_monte_carlo_reference() {
        // Cross-validation: the analytic ME current must agree with the
        // Monte Carlo engine on the same device (both are first-order
        // sequential models).
        use semsim_core::circuit::CircuitBuilder;
        use semsim_core::engine::{RunLength, SimConfig, Simulation};

        let set = paper_set();
        let (vs, vd, vg) = (20e-3, -20e-3, 10e-3);
        let analytic = set.drain_current(vs, vd, vg);

        let mut b = CircuitBuilder::new();
        let src = b.add_lead(vs);
        let drn = b.add_lead(vd);
        let gate = b.add_lead(vg);
        let island = b.add_island();
        let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
        b.add_junction(island, drn, 1e6, 1e-18).unwrap();
        b.add_capacitor(gate, island, 3e-18).unwrap();
        let c = b.build().unwrap();
        let mut sim = Simulation::new(&c, SimConfig::new(5.0).with_seed(1)).unwrap();
        let mc = sim.run(RunLength::Events(60_000)).unwrap().current(j1);

        let rel = (analytic - mc).abs() / mc.abs();
        assert!(rel < 0.05, "analytic {analytic} vs MC {mc} ({rel:.3})");
    }
}
