/root/repo/target/release/deps/adaptive_locality-285925f77fef3881.d: crates/bench/src/bin/adaptive_locality.rs

/root/repo/target/release/deps/adaptive_locality-285925f77fef3881: crates/bench/src/bin/adaptive_locality.rs

crates/bench/src/bin/adaptive_locality.rs:
