/root/repo/target/release/deps/cotunnel_check-e13c80cc82fb7dbf.d: crates/bench/src/bin/cotunnel_check.rs

/root/repo/target/release/deps/cotunnel_check-e13c80cc82fb7dbf: crates/bench/src/bin/cotunnel_check.rs

crates/bench/src/bin/cotunnel_check.rs:
