/root/repo/target/release/deps/semsim_netlist-db689f94d6900238.d: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/release/deps/libsemsim_netlist-db689f94d6900238.rlib: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/release/deps/libsemsim_netlist-db689f94d6900238.rmeta: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

crates/netlist/src/lib.rs:
crates/netlist/src/circuit_file.rs:
crates/netlist/src/compile.rs:
crates/netlist/src/error.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/logic_file.rs:
