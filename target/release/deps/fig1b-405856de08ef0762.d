/root/repo/target/release/deps/fig1b-405856de08ef0762.d: crates/bench/src/bin/fig1b.rs

/root/repo/target/release/deps/fig1b-405856de08ef0762: crates/bench/src/bin/fig1b.rs

crates/bench/src/bin/fig1b.rs:
