/root/repo/target/release/deps/semsim-57810da068cfa036.d: src/main.rs

/root/repo/target/release/deps/semsim-57810da068cfa036: src/main.rs

src/main.rs:
