/root/repo/target/release/deps/semsim_spice-9b928d5135401318.d: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/release/deps/libsemsim_spice-9b928d5135401318.rlib: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/release/deps/libsemsim_spice-9b928d5135401318.rmeta: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

crates/spice/src/lib.rs:
crates/spice/src/logic_map.rs:
crates/spice/src/nodal.rs:
crates/spice/src/error.rs:
crates/spice/src/model.rs:
