/root/repo/target/release/deps/semsim-6840c3260f9cc8b9.d: src/lib.rs

/root/repo/target/release/deps/libsemsim-6840c3260f9cc8b9.rlib: src/lib.rs

/root/repo/target/release/deps/libsemsim-6840c3260f9cc8b9.rmeta: src/lib.rs

src/lib.rs:
