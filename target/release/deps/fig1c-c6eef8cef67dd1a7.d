/root/repo/target/release/deps/fig1c-c6eef8cef67dd1a7.d: crates/bench/src/bin/fig1c.rs

/root/repo/target/release/deps/fig1c-c6eef8cef67dd1a7: crates/bench/src/bin/fig1c.rs

crates/bench/src/bin/fig1c.rs:
