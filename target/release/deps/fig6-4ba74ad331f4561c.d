/root/repo/target/release/deps/fig6-4ba74ad331f4561c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-4ba74ad331f4561c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
