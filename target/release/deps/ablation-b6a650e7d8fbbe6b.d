/root/repo/target/release/deps/ablation-b6a650e7d8fbbe6b.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-b6a650e7d8fbbe6b: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
