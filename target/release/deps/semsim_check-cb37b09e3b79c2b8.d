/root/repo/target/release/deps/semsim_check-cb37b09e3b79c2b8.d: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/release/deps/libsemsim_check-cb37b09e3b79c2b8.rlib: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/release/deps/libsemsim_check-cb37b09e3b79c2b8.rmeta: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
