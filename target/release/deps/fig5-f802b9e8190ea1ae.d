/root/repo/target/release/deps/fig5-f802b9e8190ea1ae.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f802b9e8190ea1ae: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
