/root/repo/target/release/deps/semsim_linalg-ec1fbc15453074c7.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libsemsim_linalg-ec1fbc15453074c7.rlib: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libsemsim_linalg-ec1fbc15453074c7.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/sparse.rs:
crates/linalg/src/vector.rs:
