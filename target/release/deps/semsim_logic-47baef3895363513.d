/root/repo/target/release/deps/semsim_logic-47baef3895363513.d: crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs

/root/repo/target/release/deps/libsemsim_logic-47baef3895363513.rlib: crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs

/root/repo/target/release/deps/libsemsim_logic-47baef3895363513.rmeta: crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs

crates/logic/src/lib.rs:
crates/logic/src/benchmarks.rs:
crates/logic/src/delay.rs:
crates/logic/src/elaborate.rs:
crates/logic/src/error.rs:
crates/logic/src/library.rs:
crates/logic/src/params.rs:
