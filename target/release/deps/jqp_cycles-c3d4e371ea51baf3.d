/root/repo/target/release/deps/jqp_cycles-c3d4e371ea51baf3.d: crates/bench/src/bin/jqp_cycles.rs

/root/repo/target/release/deps/jqp_cycles-c3d4e371ea51baf3: crates/bench/src/bin/jqp_cycles.rs

crates/bench/src/bin/jqp_cycles.rs:
