/root/repo/target/release/deps/semsim_quad-050f4b78c5813a7c.d: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/release/deps/libsemsim_quad-050f4b78c5813a7c.rlib: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/release/deps/libsemsim_quad-050f4b78c5813a7c.rmeta: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
