/root/repo/target/release/deps/fig7-59755c04705a0f7e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-59755c04705a0f7e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
