/root/repo/target/release/deps/semsim_bench-4d2d18eafffabb01.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libsemsim_bench-4d2d18eafffabb01.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libsemsim_bench-4d2d18eafffabb01.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/devices.rs:
crates/bench/src/features.rs:
crates/bench/src/timing.rs:
