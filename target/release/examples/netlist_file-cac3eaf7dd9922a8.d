/root/repo/target/release/examples/netlist_file-cac3eaf7dd9922a8.d: examples/netlist_file.rs

/root/repo/target/release/examples/netlist_file-cac3eaf7dd9922a8: examples/netlist_file.rs

examples/netlist_file.rs:
