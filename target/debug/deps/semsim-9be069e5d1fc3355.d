/root/repo/target/debug/deps/semsim-9be069e5d1fc3355.d: /root/repo/clippy.toml src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim-9be069e5d1fc3355.rmeta: /root/repo/clippy.toml src/main.rs Cargo.toml

/root/repo/clippy.toml:
src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
