/root/repo/target/debug/deps/semsim-383e1626aaea07d4.d: src/lib.rs

/root/repo/target/debug/deps/libsemsim-383e1626aaea07d4.rmeta: src/lib.rs

src/lib.rs:
