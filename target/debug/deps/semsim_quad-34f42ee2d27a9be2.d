/root/repo/target/debug/deps/semsim_quad-34f42ee2d27a9be2.d: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/debug/deps/libsemsim_quad-34f42ee2d27a9be2.rlib: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/debug/deps/libsemsim_quad-34f42ee2d27a9be2.rmeta: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
