/root/repo/target/debug/deps/semsim_spice-4a563899f127f4f1.d: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/debug/deps/libsemsim_spice-4a563899f127f4f1.rlib: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/debug/deps/libsemsim_spice-4a563899f127f4f1.rmeta: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

crates/spice/src/lib.rs:
crates/spice/src/logic_map.rs:
crates/spice/src/nodal.rs:
crates/spice/src/error.rs:
crates/spice/src/model.rs:
