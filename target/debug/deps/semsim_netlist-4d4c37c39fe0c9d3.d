/root/repo/target/debug/deps/semsim_netlist-4d4c37c39fe0c9d3.d: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/debug/deps/libsemsim_netlist-4d4c37c39fe0c9d3.rmeta: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

crates/netlist/src/lib.rs:
crates/netlist/src/circuit_file.rs:
crates/netlist/src/compile.rs:
crates/netlist/src/error.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/logic_file.rs:
