/root/repo/target/debug/deps/semsim_core-a37bafadee97aec9.d: crates/core/src/lib.rs crates/core/src/circuit.rs crates/core/src/constants.rs crates/core/src/cotunnel.rs crates/core/src/energy.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/fenwick.rs crates/core/src/master.rs crates/core/src/rates.rs crates/core/src/rng.rs crates/core/src/solver/mod.rs crates/core/src/solver/adaptive.rs crates/core/src/solver/nonadaptive.rs crates/core/src/superconduct.rs crates/core/src/trace.rs crates/core/src/error.rs

/root/repo/target/debug/deps/libsemsim_core-a37bafadee97aec9.rmeta: crates/core/src/lib.rs crates/core/src/circuit.rs crates/core/src/constants.rs crates/core/src/cotunnel.rs crates/core/src/energy.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/fenwick.rs crates/core/src/master.rs crates/core/src/rates.rs crates/core/src/rng.rs crates/core/src/solver/mod.rs crates/core/src/solver/adaptive.rs crates/core/src/solver/nonadaptive.rs crates/core/src/superconduct.rs crates/core/src/trace.rs crates/core/src/error.rs

crates/core/src/lib.rs:
crates/core/src/circuit.rs:
crates/core/src/constants.rs:
crates/core/src/cotunnel.rs:
crates/core/src/energy.rs:
crates/core/src/engine.rs:
crates/core/src/events.rs:
crates/core/src/fenwick.rs:
crates/core/src/master.rs:
crates/core/src/rates.rs:
crates/core/src/rng.rs:
crates/core/src/solver/mod.rs:
crates/core/src/solver/adaptive.rs:
crates/core/src/solver/nonadaptive.rs:
crates/core/src/superconduct.rs:
crates/core/src/trace.rs:
crates/core/src/error.rs:
