/root/repo/target/debug/deps/fig5-26b90801ca17b782.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-26b90801ca17b782.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
