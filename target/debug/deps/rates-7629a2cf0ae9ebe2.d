/root/repo/target/debug/deps/rates-7629a2cf0ae9ebe2.d: crates/bench/benches/rates.rs

/root/repo/target/debug/deps/librates-7629a2cf0ae9ebe2.rmeta: crates/bench/benches/rates.rs

crates/bench/benches/rates.rs:
