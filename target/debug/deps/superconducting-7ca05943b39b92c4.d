/root/repo/target/debug/deps/superconducting-7ca05943b39b92c4.d: tests/superconducting.rs

/root/repo/target/debug/deps/libsuperconducting-7ca05943b39b92c4.rmeta: tests/superconducting.rs

tests/superconducting.rs:
