/root/repo/target/debug/deps/semsim-cbdf4b00ec390e32.d: src/main.rs

/root/repo/target/debug/deps/libsemsim-cbdf4b00ec390e32.rmeta: src/main.rs

src/main.rs:
