/root/repo/target/debug/deps/fig1c-ebf2ccbe98eef33b.d: crates/bench/src/bin/fig1c.rs

/root/repo/target/debug/deps/fig1c-ebf2ccbe98eef33b: crates/bench/src/bin/fig1c.rs

crates/bench/src/bin/fig1c.rs:
