/root/repo/target/debug/deps/fig6-43103fd9ba04a658.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-43103fd9ba04a658.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
