/root/repo/target/debug/deps/semsim_bench-795231f363ecc945.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/semsim_bench-795231f363ecc945: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/devices.rs:
crates/bench/src/features.rs:
crates/bench/src/timing.rs:
