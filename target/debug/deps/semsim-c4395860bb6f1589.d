/root/repo/target/debug/deps/semsim-c4395860bb6f1589.d: src/lib.rs

/root/repo/target/debug/deps/semsim-c4395860bb6f1589: src/lib.rs

src/lib.rs:
