/root/repo/target/debug/deps/semsim-3309cb8ccaede4a0.d: src/lib.rs

/root/repo/target/debug/deps/libsemsim-3309cb8ccaede4a0.rlib: src/lib.rs

/root/repo/target/debug/deps/libsemsim-3309cb8ccaede4a0.rmeta: src/lib.rs

src/lib.rs:
