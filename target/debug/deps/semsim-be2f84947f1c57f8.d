/root/repo/target/debug/deps/semsim-be2f84947f1c57f8.d: src/main.rs

/root/repo/target/debug/deps/semsim-be2f84947f1c57f8: src/main.rs

src/main.rs:
