/root/repo/target/debug/deps/fig1c-8751f54a6c07ecf7.d: /root/repo/clippy.toml crates/bench/src/bin/fig1c.rs Cargo.toml

/root/repo/target/debug/deps/libfig1c-8751f54a6c07ecf7.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig1c.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig1c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
