/root/repo/target/debug/deps/semsim_bench-e317bea4c98d8a6c.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_bench-e317bea4c98d8a6c.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/devices.rs:
crates/bench/src/features.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
