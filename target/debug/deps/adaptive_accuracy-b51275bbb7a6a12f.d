/root/repo/target/debug/deps/adaptive_accuracy-b51275bbb7a6a12f.d: tests/adaptive_accuracy.rs

/root/repo/target/debug/deps/adaptive_accuracy-b51275bbb7a6a12f: tests/adaptive_accuracy.rs

tests/adaptive_accuracy.rs:
