/root/repo/target/debug/deps/semsim-a25cb5362b98b0fc.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim-a25cb5362b98b0fc.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
