/root/repo/target/debug/deps/adaptive_locality-90550451f20a4003.d: crates/bench/src/bin/adaptive_locality.rs

/root/repo/target/debug/deps/adaptive_locality-90550451f20a4003: crates/bench/src/bin/adaptive_locality.rs

crates/bench/src/bin/adaptive_locality.rs:
