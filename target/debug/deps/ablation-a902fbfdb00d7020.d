/root/repo/target/debug/deps/ablation-a902fbfdb00d7020.d: /root/repo/clippy.toml crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-a902fbfdb00d7020.rmeta: /root/repo/clippy.toml crates/bench/benches/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
