/root/repo/target/debug/deps/ablation-4e3df8c09d2b4598.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/libablation-4e3df8c09d2b4598.rmeta: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
