/root/repo/target/debug/deps/fig7-5f9bff83e256a51a.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-5f9bff83e256a51a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
