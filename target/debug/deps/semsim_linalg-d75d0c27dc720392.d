/root/repo/target/debug/deps/semsim_linalg-d75d0c27dc720392.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libsemsim_linalg-d75d0c27dc720392.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/sparse.rs:
crates/linalg/src/vector.rs:
