/root/repo/target/debug/deps/rates-fc101fdffee1a677.d: /root/repo/clippy.toml crates/bench/benches/rates.rs Cargo.toml

/root/repo/target/debug/deps/librates-fc101fdffee1a677.rmeta: /root/repo/clippy.toml crates/bench/benches/rates.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
