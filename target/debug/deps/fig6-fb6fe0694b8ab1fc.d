/root/repo/target/debug/deps/fig6-fb6fe0694b8ab1fc.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-fb6fe0694b8ab1fc.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
