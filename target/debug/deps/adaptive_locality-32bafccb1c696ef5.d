/root/repo/target/debug/deps/adaptive_locality-32bafccb1c696ef5.d: crates/bench/src/bin/adaptive_locality.rs

/root/repo/target/debug/deps/libadaptive_locality-32bafccb1c696ef5.rmeta: crates/bench/src/bin/adaptive_locality.rs

crates/bench/src/bin/adaptive_locality.rs:
