/root/repo/target/debug/deps/adaptive_locality-506daf37676de6c4.d: /root/repo/clippy.toml crates/bench/src/bin/adaptive_locality.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_locality-506daf37676de6c4.rmeta: /root/repo/clippy.toml crates/bench/src/bin/adaptive_locality.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/adaptive_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
