/root/repo/target/debug/deps/ablation-c8037ef9e170efd3.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-c8037ef9e170efd3.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
