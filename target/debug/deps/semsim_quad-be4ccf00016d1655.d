/root/repo/target/debug/deps/semsim_quad-be4ccf00016d1655.d: /root/repo/clippy.toml crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_quad-be4ccf00016d1655.rmeta: /root/repo/clippy.toml crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs Cargo.toml

/root/repo/clippy.toml:
crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
