/root/repo/target/debug/deps/semsim-86ebee80a70cbbeb.d: src/main.rs

/root/repo/target/debug/deps/semsim-86ebee80a70cbbeb: src/main.rs

src/main.rs:
