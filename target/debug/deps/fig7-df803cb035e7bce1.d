/root/repo/target/debug/deps/fig7-df803cb035e7bce1.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-df803cb035e7bce1.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
