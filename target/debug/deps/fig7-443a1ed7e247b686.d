/root/repo/target/debug/deps/fig7-443a1ed7e247b686.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-443a1ed7e247b686.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
