/root/repo/target/debug/deps/semsim_logic-9294466fbf1771cc.d: crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs

/root/repo/target/debug/deps/libsemsim_logic-9294466fbf1771cc.rmeta: crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs

crates/logic/src/lib.rs:
crates/logic/src/benchmarks.rs:
crates/logic/src/delay.rs:
crates/logic/src/elaborate.rs:
crates/logic/src/error.rs:
crates/logic/src/library.rs:
crates/logic/src/params.rs:
