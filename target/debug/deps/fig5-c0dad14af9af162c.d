/root/repo/target/debug/deps/fig5-c0dad14af9af162c.d: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-c0dad14af9af162c.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
