/root/repo/target/debug/deps/semsim_quad-8b1e4b65c5a3f41d.d: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/debug/deps/libsemsim_quad-8b1e4b65c5a3f41d.rmeta: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
