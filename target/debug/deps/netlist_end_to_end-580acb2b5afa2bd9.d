/root/repo/target/debug/deps/netlist_end_to_end-580acb2b5afa2bd9.d: /root/repo/clippy.toml tests/netlist_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libnetlist_end_to_end-580acb2b5afa2bd9.rmeta: /root/repo/clippy.toml tests/netlist_end_to_end.rs Cargo.toml

/root/repo/clippy.toml:
tests/netlist_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
