/root/repo/target/debug/deps/fig1c-00c24bd09cf1071c.d: crates/bench/src/bin/fig1c.rs

/root/repo/target/debug/deps/libfig1c-00c24bd09cf1071c.rmeta: crates/bench/src/bin/fig1c.rs

crates/bench/src/bin/fig1c.rs:
