/root/repo/target/debug/deps/semsim_linalg-4b153efdb707f75e.d: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_linalg-4b153efdb707f75e.rmeta: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/sparse.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/sparse.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
