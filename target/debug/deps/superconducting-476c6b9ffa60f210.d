/root/repo/target/debug/deps/superconducting-476c6b9ffa60f210.d: /root/repo/clippy.toml tests/superconducting.rs Cargo.toml

/root/repo/target/debug/deps/libsuperconducting-476c6b9ffa60f210.rmeta: /root/repo/clippy.toml tests/superconducting.rs Cargo.toml

/root/repo/clippy.toml:
tests/superconducting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
