/root/repo/target/debug/deps/fig1b-0410361aef18c853.d: crates/bench/src/bin/fig1b.rs

/root/repo/target/debug/deps/libfig1b-0410361aef18c853.rmeta: crates/bench/src/bin/fig1b.rs

crates/bench/src/bin/fig1b.rs:
