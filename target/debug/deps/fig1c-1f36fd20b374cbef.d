/root/repo/target/debug/deps/fig1c-1f36fd20b374cbef.d: crates/bench/src/bin/fig1c.rs

/root/repo/target/debug/deps/libfig1c-1f36fd20b374cbef.rmeta: crates/bench/src/bin/fig1c.rs

crates/bench/src/bin/fig1c.rs:
