/root/repo/target/debug/deps/solvers-98325c74ff974c8d.d: /root/repo/clippy.toml crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-98325c74ff974c8d.rmeta: /root/repo/clippy.toml crates/bench/benches/solvers.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
