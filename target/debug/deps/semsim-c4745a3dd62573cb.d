/root/repo/target/debug/deps/semsim-c4745a3dd62573cb.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim-c4745a3dd62573cb.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
