/root/repo/target/debug/deps/jqp_cycles-ccc6c5f6b7964022.d: /root/repo/clippy.toml crates/bench/src/bin/jqp_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libjqp_cycles-ccc6c5f6b7964022.rmeta: /root/repo/clippy.toml crates/bench/src/bin/jqp_cycles.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/jqp_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
