/root/repo/target/debug/deps/adaptive_accuracy-b9391c25c0ba9fa4.d: tests/adaptive_accuracy.rs

/root/repo/target/debug/deps/libadaptive_accuracy-b9391c25c0ba9fa4.rmeta: tests/adaptive_accuracy.rs

tests/adaptive_accuracy.rs:
