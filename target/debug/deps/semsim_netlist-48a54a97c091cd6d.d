/root/repo/target/debug/deps/semsim_netlist-48a54a97c091cd6d.d: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/debug/deps/semsim_netlist-48a54a97c091cd6d: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

crates/netlist/src/lib.rs:
crates/netlist/src/circuit_file.rs:
crates/netlist/src/compile.rs:
crates/netlist/src/error.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/logic_file.rs:
