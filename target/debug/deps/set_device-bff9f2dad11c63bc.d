/root/repo/target/debug/deps/set_device-bff9f2dad11c63bc.d: tests/set_device.rs

/root/repo/target/debug/deps/libset_device-bff9f2dad11c63bc.rmeta: tests/set_device.rs

tests/set_device.rs:
