/root/repo/target/debug/deps/semsim_spice-c746878b458ae9f8.d: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/debug/deps/libsemsim_spice-c746878b458ae9f8.rmeta: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

crates/spice/src/lib.rs:
crates/spice/src/logic_map.rs:
crates/spice/src/nodal.rs:
crates/spice/src/error.rs:
crates/spice/src/model.rs:
