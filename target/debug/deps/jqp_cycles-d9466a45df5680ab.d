/root/repo/target/debug/deps/jqp_cycles-d9466a45df5680ab.d: crates/bench/src/bin/jqp_cycles.rs

/root/repo/target/debug/deps/libjqp_cycles-d9466a45df5680ab.rmeta: crates/bench/src/bin/jqp_cycles.rs

crates/bench/src/bin/jqp_cycles.rs:
