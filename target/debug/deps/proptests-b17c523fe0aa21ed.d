/root/repo/target/debug/deps/proptests-b17c523fe0aa21ed.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-b17c523fe0aa21ed: tests/proptests.rs

tests/proptests.rs:
