/root/repo/target/debug/deps/cotunnel_check-43ebd0f01472a88b.d: crates/bench/src/bin/cotunnel_check.rs

/root/repo/target/debug/deps/libcotunnel_check-43ebd0f01472a88b.rmeta: crates/bench/src/bin/cotunnel_check.rs

crates/bench/src/bin/cotunnel_check.rs:
