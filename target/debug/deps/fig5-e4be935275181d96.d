/root/repo/target/debug/deps/fig5-e4be935275181d96.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-e4be935275181d96: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
