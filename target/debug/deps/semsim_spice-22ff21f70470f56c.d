/root/repo/target/debug/deps/semsim_spice-22ff21f70470f56c.d: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/debug/deps/libsemsim_spice-22ff21f70470f56c.rmeta: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

crates/spice/src/lib.rs:
crates/spice/src/logic_map.rs:
crates/spice/src/nodal.rs:
crates/spice/src/error.rs:
crates/spice/src/model.rs:
