/root/repo/target/debug/deps/cotunnel_check-2d5b621662c809d5.d: crates/bench/src/bin/cotunnel_check.rs

/root/repo/target/debug/deps/libcotunnel_check-2d5b621662c809d5.rmeta: crates/bench/src/bin/cotunnel_check.rs

crates/bench/src/bin/cotunnel_check.rs:
