/root/repo/target/debug/deps/adaptive_locality-24e2cda2c24027ad.d: crates/bench/src/bin/adaptive_locality.rs

/root/repo/target/debug/deps/libadaptive_locality-24e2cda2c24027ad.rmeta: crates/bench/src/bin/adaptive_locality.rs

crates/bench/src/bin/adaptive_locality.rs:
