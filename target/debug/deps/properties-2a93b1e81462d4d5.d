/root/repo/target/debug/deps/properties-2a93b1e81462d4d5.d: crates/linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-2a93b1e81462d4d5: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
