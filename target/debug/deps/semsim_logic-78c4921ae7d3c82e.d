/root/repo/target/debug/deps/semsim_logic-78c4921ae7d3c82e.d: /root/repo/clippy.toml crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_logic-78c4921ae7d3c82e.rmeta: /root/repo/clippy.toml crates/logic/src/lib.rs crates/logic/src/benchmarks.rs crates/logic/src/delay.rs crates/logic/src/elaborate.rs crates/logic/src/error.rs crates/logic/src/library.rs crates/logic/src/params.rs Cargo.toml

/root/repo/clippy.toml:
crates/logic/src/lib.rs:
crates/logic/src/benchmarks.rs:
crates/logic/src/delay.rs:
crates/logic/src/elaborate.rs:
crates/logic/src/error.rs:
crates/logic/src/library.rs:
crates/logic/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
