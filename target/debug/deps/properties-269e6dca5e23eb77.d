/root/repo/target/debug/deps/properties-269e6dca5e23eb77.d: crates/quad/tests/properties.rs

/root/repo/target/debug/deps/libproperties-269e6dca5e23eb77.rmeta: crates/quad/tests/properties.rs

crates/quad/tests/properties.rs:
