/root/repo/target/debug/deps/fig7-0514a1a47a8f0d3b.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-0514a1a47a8f0d3b.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
