/root/repo/target/debug/deps/semsim_netlist-2779ed1aa3733cf6.d: /root/repo/clippy.toml crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_netlist-2779ed1aa3733cf6.rmeta: /root/repo/clippy.toml crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs Cargo.toml

/root/repo/clippy.toml:
crates/netlist/src/lib.rs:
crates/netlist/src/circuit_file.rs:
crates/netlist/src/compile.rs:
crates/netlist/src/error.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/logic_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
