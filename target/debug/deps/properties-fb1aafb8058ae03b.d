/root/repo/target/debug/deps/properties-fb1aafb8058ae03b.d: crates/linalg/tests/properties.rs

/root/repo/target/debug/deps/libproperties-fb1aafb8058ae03b.rmeta: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
