/root/repo/target/debug/deps/semsim_spice-82ab7b773f24662a.d: /root/repo/clippy.toml crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_spice-82ab7b773f24662a.rmeta: /root/repo/clippy.toml crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs Cargo.toml

/root/repo/clippy.toml:
crates/spice/src/lib.rs:
crates/spice/src/logic_map.rs:
crates/spice/src/nodal.rs:
crates/spice/src/error.rs:
crates/spice/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
