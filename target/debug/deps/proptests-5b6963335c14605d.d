/root/repo/target/debug/deps/proptests-5b6963335c14605d.d: tests/proptests.rs

/root/repo/target/debug/deps/libproptests-5b6963335c14605d.rmeta: tests/proptests.rs

tests/proptests.rs:
