/root/repo/target/debug/deps/jqp_cycles-ede5454fb91eff51.d: crates/bench/src/bin/jqp_cycles.rs

/root/repo/target/debug/deps/jqp_cycles-ede5454fb91eff51: crates/bench/src/bin/jqp_cycles.rs

crates/bench/src/bin/jqp_cycles.rs:
