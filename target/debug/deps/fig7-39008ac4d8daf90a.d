/root/repo/target/debug/deps/fig7-39008ac4d8daf90a.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-39008ac4d8daf90a: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
