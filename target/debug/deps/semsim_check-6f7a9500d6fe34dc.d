/root/repo/target/debug/deps/semsim_check-6f7a9500d6fe34dc.d: /root/repo/clippy.toml crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_check-6f7a9500d6fe34dc.rmeta: /root/repo/clippy.toml crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs Cargo.toml

/root/repo/clippy.toml:
crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
