/root/repo/target/debug/deps/solvers-46ede650f1308370.d: crates/bench/benches/solvers.rs

/root/repo/target/debug/deps/libsolvers-46ede650f1308370.rmeta: crates/bench/benches/solvers.rs

crates/bench/benches/solvers.rs:
