/root/repo/target/debug/deps/lint_golden-4b5b5e70f1498a16.d: tests/lint_golden.rs

/root/repo/target/debug/deps/liblint_golden-4b5b5e70f1498a16.rmeta: tests/lint_golden.rs

tests/lint_golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
