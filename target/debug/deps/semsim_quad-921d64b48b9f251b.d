/root/repo/target/debug/deps/semsim_quad-921d64b48b9f251b.d: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/debug/deps/libsemsim_quad-921d64b48b9f251b.rmeta: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
