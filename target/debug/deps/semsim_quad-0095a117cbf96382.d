/root/repo/target/debug/deps/semsim_quad-0095a117cbf96382.d: /root/repo/clippy.toml crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_quad-0095a117cbf96382.rmeta: /root/repo/clippy.toml crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs Cargo.toml

/root/repo/clippy.toml:
crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
