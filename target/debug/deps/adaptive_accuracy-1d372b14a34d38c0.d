/root/repo/target/debug/deps/adaptive_accuracy-1d372b14a34d38c0.d: /root/repo/clippy.toml tests/adaptive_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_accuracy-1d372b14a34d38c0.rmeta: /root/repo/clippy.toml tests/adaptive_accuracy.rs Cargo.toml

/root/repo/clippy.toml:
tests/adaptive_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
