/root/repo/target/debug/deps/cotunnel_check-0848a56c2387279a.d: /root/repo/clippy.toml crates/bench/src/bin/cotunnel_check.rs Cargo.toml

/root/repo/target/debug/deps/libcotunnel_check-0848a56c2387279a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/cotunnel_check.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/cotunnel_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
