/root/repo/target/debug/deps/fig6-efcb1052dfdf8890.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-efcb1052dfdf8890.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
