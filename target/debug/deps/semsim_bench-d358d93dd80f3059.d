/root/repo/target/debug/deps/semsim_bench-d358d93dd80f3059.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsemsim_bench-d358d93dd80f3059.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/devices.rs:
crates/bench/src/features.rs:
crates/bench/src/timing.rs:
