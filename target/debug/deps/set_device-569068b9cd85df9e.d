/root/repo/target/debug/deps/set_device-569068b9cd85df9e.d: tests/set_device.rs

/root/repo/target/debug/deps/set_device-569068b9cd85df9e: tests/set_device.rs

tests/set_device.rs:
