/root/repo/target/debug/deps/semsim_check-dc227e3972c23190.d: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/debug/deps/semsim_check-dc227e3972c23190: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
