/root/repo/target/debug/deps/ablation-8d531a6f83c61252.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-8d531a6f83c61252: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
