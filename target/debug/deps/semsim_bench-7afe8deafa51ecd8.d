/root/repo/target/debug/deps/semsim_bench-7afe8deafa51ecd8.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsemsim_bench-7afe8deafa51ecd8.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/devices.rs:
crates/bench/src/features.rs:
crates/bench/src/timing.rs:
