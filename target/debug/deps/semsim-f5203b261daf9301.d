/root/repo/target/debug/deps/semsim-f5203b261daf9301.d: src/lib.rs

/root/repo/target/debug/deps/libsemsim-f5203b261daf9301.rmeta: src/lib.rs

src/lib.rs:
