/root/repo/target/debug/deps/fig5-5d098ddf748f47e8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-5d098ddf748f47e8.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
