/root/repo/target/debug/deps/semsim_spice-a25828d2a3d7256e.d: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

/root/repo/target/debug/deps/semsim_spice-a25828d2a3d7256e: crates/spice/src/lib.rs crates/spice/src/logic_map.rs crates/spice/src/nodal.rs crates/spice/src/error.rs crates/spice/src/model.rs

crates/spice/src/lib.rs:
crates/spice/src/logic_map.rs:
crates/spice/src/nodal.rs:
crates/spice/src/error.rs:
crates/spice/src/model.rs:
