/root/repo/target/debug/deps/cotunnel_check-c6828af07b16ad37.d: crates/bench/src/bin/cotunnel_check.rs

/root/repo/target/debug/deps/cotunnel_check-c6828af07b16ad37: crates/bench/src/bin/cotunnel_check.rs

crates/bench/src/bin/cotunnel_check.rs:
