/root/repo/target/debug/deps/fig6-107fcae167a8cbe4.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-107fcae167a8cbe4: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
