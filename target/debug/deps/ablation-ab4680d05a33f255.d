/root/repo/target/debug/deps/ablation-ab4680d05a33f255.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-ab4680d05a33f255.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
