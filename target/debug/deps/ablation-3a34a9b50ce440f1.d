/root/repo/target/debug/deps/ablation-3a34a9b50ce440f1.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-3a34a9b50ce440f1.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
