/root/repo/target/debug/deps/set_device-a2131a1b36f23216.d: /root/repo/clippy.toml tests/set_device.rs Cargo.toml

/root/repo/target/debug/deps/libset_device-a2131a1b36f23216.rmeta: /root/repo/clippy.toml tests/set_device.rs Cargo.toml

/root/repo/clippy.toml:
tests/set_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
