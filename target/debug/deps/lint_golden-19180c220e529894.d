/root/repo/target/debug/deps/lint_golden-19180c220e529894.d: /root/repo/clippy.toml tests/lint_golden.rs Cargo.toml

/root/repo/target/debug/deps/liblint_golden-19180c220e529894.rmeta: /root/repo/clippy.toml tests/lint_golden.rs Cargo.toml

/root/repo/clippy.toml:
tests/lint_golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
