/root/repo/target/debug/deps/fig1b-3df7727908088934.d: crates/bench/src/bin/fig1b.rs

/root/repo/target/debug/deps/libfig1b-3df7727908088934.rmeta: crates/bench/src/bin/fig1b.rs

crates/bench/src/bin/fig1b.rs:
