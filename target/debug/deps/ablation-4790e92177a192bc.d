/root/repo/target/debug/deps/ablation-4790e92177a192bc.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-4790e92177a192bc.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
