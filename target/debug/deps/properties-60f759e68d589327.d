/root/repo/target/debug/deps/properties-60f759e68d589327.d: crates/quad/tests/properties.rs

/root/repo/target/debug/deps/properties-60f759e68d589327: crates/quad/tests/properties.rs

crates/quad/tests/properties.rs:
