/root/repo/target/debug/deps/properties-f3b3adca0a58bcb8.d: /root/repo/clippy.toml crates/quad/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f3b3adca0a58bcb8.rmeta: /root/repo/clippy.toml crates/quad/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/quad/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
