/root/repo/target/debug/deps/netlist_end_to_end-19b1767f1981a2ed.d: tests/netlist_end_to_end.rs

/root/repo/target/debug/deps/libnetlist_end_to_end-19b1767f1981a2ed.rmeta: tests/netlist_end_to_end.rs

tests/netlist_end_to_end.rs:
