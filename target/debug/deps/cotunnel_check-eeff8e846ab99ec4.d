/root/repo/target/debug/deps/cotunnel_check-eeff8e846ab99ec4.d: /root/repo/clippy.toml crates/bench/src/bin/cotunnel_check.rs Cargo.toml

/root/repo/target/debug/deps/libcotunnel_check-eeff8e846ab99ec4.rmeta: /root/repo/clippy.toml crates/bench/src/bin/cotunnel_check.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/cotunnel_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
