/root/repo/target/debug/deps/semsim-be18b9a179781ba5.d: src/main.rs

/root/repo/target/debug/deps/libsemsim-be18b9a179781ba5.rmeta: src/main.rs

src/main.rs:
