/root/repo/target/debug/deps/jqp_cycles-6e56a29725d6e5a8.d: /root/repo/clippy.toml crates/bench/src/bin/jqp_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libjqp_cycles-6e56a29725d6e5a8.rmeta: /root/repo/clippy.toml crates/bench/src/bin/jqp_cycles.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/jqp_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
