/root/repo/target/debug/deps/semsim_bench-5c9a4bd2ceacccd3.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsemsim_bench-5c9a4bd2ceacccd3.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsemsim_bench-5c9a4bd2ceacccd3.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/devices.rs crates/bench/src/features.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/devices.rs:
crates/bench/src/features.rs:
crates/bench/src/timing.rs:
