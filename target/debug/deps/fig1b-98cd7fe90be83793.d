/root/repo/target/debug/deps/fig1b-98cd7fe90be83793.d: /root/repo/clippy.toml crates/bench/src/bin/fig1b.rs Cargo.toml

/root/repo/target/debug/deps/libfig1b-98cd7fe90be83793.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig1b.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig1b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
