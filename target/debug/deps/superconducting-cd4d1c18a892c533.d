/root/repo/target/debug/deps/superconducting-cd4d1c18a892c533.d: tests/superconducting.rs

/root/repo/target/debug/deps/superconducting-cd4d1c18a892c533: tests/superconducting.rs

tests/superconducting.rs:
