/root/repo/target/debug/deps/semsim_netlist-e47abb261d4646e9.d: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/debug/deps/libsemsim_netlist-e47abb261d4646e9.rmeta: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

crates/netlist/src/lib.rs:
crates/netlist/src/circuit_file.rs:
crates/netlist/src/compile.rs:
crates/netlist/src/error.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/logic_file.rs:
