/root/repo/target/debug/deps/adaptive_locality-bae66b6127630e67.d: /root/repo/clippy.toml crates/bench/src/bin/adaptive_locality.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_locality-bae66b6127630e67.rmeta: /root/repo/clippy.toml crates/bench/src/bin/adaptive_locality.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/adaptive_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
