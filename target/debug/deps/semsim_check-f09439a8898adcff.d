/root/repo/target/debug/deps/semsim_check-f09439a8898adcff.d: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/debug/deps/libsemsim_check-f09439a8898adcff.rmeta: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
