/root/repo/target/debug/deps/netlist_end_to_end-6b505c1000270bdd.d: tests/netlist_end_to_end.rs

/root/repo/target/debug/deps/netlist_end_to_end-6b505c1000270bdd: tests/netlist_end_to_end.rs

tests/netlist_end_to_end.rs:
