/root/repo/target/debug/deps/semsim_check-1cfddd724dc22e0f.d: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/debug/deps/libsemsim_check-1cfddd724dc22e0f.rmeta: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
