/root/repo/target/debug/deps/jqp_cycles-823454b80fb3c11d.d: crates/bench/src/bin/jqp_cycles.rs

/root/repo/target/debug/deps/libjqp_cycles-823454b80fb3c11d.rmeta: crates/bench/src/bin/jqp_cycles.rs

crates/bench/src/bin/jqp_cycles.rs:
