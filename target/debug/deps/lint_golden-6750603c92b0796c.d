/root/repo/target/debug/deps/lint_golden-6750603c92b0796c.d: tests/lint_golden.rs

/root/repo/target/debug/deps/lint_golden-6750603c92b0796c: tests/lint_golden.rs

tests/lint_golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
