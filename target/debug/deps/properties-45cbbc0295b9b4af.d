/root/repo/target/debug/deps/properties-45cbbc0295b9b4af.d: /root/repo/clippy.toml crates/linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-45cbbc0295b9b4af.rmeta: /root/repo/clippy.toml crates/linalg/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
