/root/repo/target/debug/deps/semsim_check-bb6d0f59cc6dabe5.d: /root/repo/clippy.toml crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_check-bb6d0f59cc6dabe5.rmeta: /root/repo/clippy.toml crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs Cargo.toml

/root/repo/clippy.toml:
crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
