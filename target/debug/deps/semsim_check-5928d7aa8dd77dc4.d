/root/repo/target/debug/deps/semsim_check-5928d7aa8dd77dc4.d: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/debug/deps/libsemsim_check-5928d7aa8dd77dc4.rlib: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

/root/repo/target/debug/deps/libsemsim_check-5928d7aa8dd77dc4.rmeta: crates/check/src/lib.rs crates/check/src/circuit.rs crates/check/src/diag.rs crates/check/src/logic.rs

crates/check/src/lib.rs:
crates/check/src/circuit.rs:
crates/check/src/diag.rs:
crates/check/src/logic.rs:
