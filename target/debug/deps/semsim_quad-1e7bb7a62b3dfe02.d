/root/repo/target/debug/deps/semsim_quad-1e7bb7a62b3dfe02.d: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

/root/repo/target/debug/deps/semsim_quad-1e7bb7a62b3dfe02: crates/quad/src/lib.rs crates/quad/src/bcs.rs crates/quad/src/integrate.rs crates/quad/src/stable.rs crates/quad/src/table.rs

crates/quad/src/lib.rs:
crates/quad/src/bcs.rs:
crates/quad/src/integrate.rs:
crates/quad/src/stable.rs:
crates/quad/src/table.rs:
