/root/repo/target/debug/deps/semsim_netlist-bd53059db880e904.d: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/debug/deps/libsemsim_netlist-bd53059db880e904.rlib: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

/root/repo/target/debug/deps/libsemsim_netlist-bd53059db880e904.rmeta: crates/netlist/src/lib.rs crates/netlist/src/circuit_file.rs crates/netlist/src/compile.rs crates/netlist/src/error.rs crates/netlist/src/lint.rs crates/netlist/src/logic_file.rs

crates/netlist/src/lib.rs:
crates/netlist/src/circuit_file.rs:
crates/netlist/src/compile.rs:
crates/netlist/src/error.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/logic_file.rs:
