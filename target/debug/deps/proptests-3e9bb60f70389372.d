/root/repo/target/debug/deps/proptests-3e9bb60f70389372.d: /root/repo/clippy.toml tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3e9bb60f70389372.rmeta: /root/repo/clippy.toml tests/proptests.rs Cargo.toml

/root/repo/clippy.toml:
tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
