/root/repo/target/debug/deps/fig6-5e7e7058a58c0f13.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-5e7e7058a58c0f13.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
