/root/repo/target/debug/deps/semsim_core-b21270119b1c1ac5.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/circuit.rs crates/core/src/constants.rs crates/core/src/cotunnel.rs crates/core/src/energy.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/fenwick.rs crates/core/src/master.rs crates/core/src/rates.rs crates/core/src/rng.rs crates/core/src/solver/mod.rs crates/core/src/solver/adaptive.rs crates/core/src/solver/nonadaptive.rs crates/core/src/superconduct.rs crates/core/src/trace.rs crates/core/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libsemsim_core-b21270119b1c1ac5.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/circuit.rs crates/core/src/constants.rs crates/core/src/cotunnel.rs crates/core/src/energy.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/fenwick.rs crates/core/src/master.rs crates/core/src/rates.rs crates/core/src/rng.rs crates/core/src/solver/mod.rs crates/core/src/solver/adaptive.rs crates/core/src/solver/nonadaptive.rs crates/core/src/superconduct.rs crates/core/src/trace.rs crates/core/src/error.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/circuit.rs:
crates/core/src/constants.rs:
crates/core/src/cotunnel.rs:
crates/core/src/energy.rs:
crates/core/src/engine.rs:
crates/core/src/events.rs:
crates/core/src/fenwick.rs:
crates/core/src/master.rs:
crates/core/src/rates.rs:
crates/core/src/rng.rs:
crates/core/src/solver/mod.rs:
crates/core/src/solver/adaptive.rs:
crates/core/src/solver/nonadaptive.rs:
crates/core/src/superconduct.rs:
crates/core/src/trace.rs:
crates/core/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
