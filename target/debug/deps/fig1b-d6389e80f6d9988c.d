/root/repo/target/debug/deps/fig1b-d6389e80f6d9988c.d: crates/bench/src/bin/fig1b.rs

/root/repo/target/debug/deps/fig1b-d6389e80f6d9988c: crates/bench/src/bin/fig1b.rs

crates/bench/src/bin/fig1b.rs:
