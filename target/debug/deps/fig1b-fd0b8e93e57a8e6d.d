/root/repo/target/debug/deps/fig1b-fd0b8e93e57a8e6d.d: /root/repo/clippy.toml crates/bench/src/bin/fig1b.rs Cargo.toml

/root/repo/target/debug/deps/libfig1b-fd0b8e93e57a8e6d.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig1b.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig1b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
