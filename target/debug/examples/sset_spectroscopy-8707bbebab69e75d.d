/root/repo/target/debug/examples/sset_spectroscopy-8707bbebab69e75d.d: examples/sset_spectroscopy.rs

/root/repo/target/debug/examples/libsset_spectroscopy-8707bbebab69e75d.rmeta: examples/sset_spectroscopy.rs

examples/sset_spectroscopy.rs:
