/root/repo/target/debug/examples/logic_delay-c53269e4d3fe68c9.d: examples/logic_delay.rs

/root/repo/target/debug/examples/logic_delay-c53269e4d3fe68c9: examples/logic_delay.rs

examples/logic_delay.rs:
