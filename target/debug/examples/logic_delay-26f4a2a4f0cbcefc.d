/root/repo/target/debug/examples/logic_delay-26f4a2a4f0cbcefc.d: examples/logic_delay.rs

/root/repo/target/debug/examples/liblogic_delay-26f4a2a4f0cbcefc.rmeta: examples/logic_delay.rs

examples/logic_delay.rs:
