/root/repo/target/debug/examples/quickstart-28950bb4c65e63c0.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-28950bb4c65e63c0.rmeta: examples/quickstart.rs

examples/quickstart.rs:
