/root/repo/target/debug/examples/logic_delay-04b2130110ee6d9c.d: /root/repo/clippy.toml examples/logic_delay.rs Cargo.toml

/root/repo/target/debug/examples/liblogic_delay-04b2130110ee6d9c.rmeta: /root/repo/clippy.toml examples/logic_delay.rs Cargo.toml

/root/repo/clippy.toml:
examples/logic_delay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
