/root/repo/target/debug/examples/netlist_file-bba71b92c8eae0fc.d: examples/netlist_file.rs

/root/repo/target/debug/examples/netlist_file-bba71b92c8eae0fc: examples/netlist_file.rs

examples/netlist_file.rs:
