/root/repo/target/debug/examples/__dbg-68df90840215dfdd.d: examples/__dbg.rs

/root/repo/target/debug/examples/__dbg-68df90840215dfdd: examples/__dbg.rs

examples/__dbg.rs:
