/root/repo/target/debug/examples/sset_spectroscopy-11227e1616343a8c.d: /root/repo/clippy.toml examples/sset_spectroscopy.rs Cargo.toml

/root/repo/target/debug/examples/libsset_spectroscopy-11227e1616343a8c.rmeta: /root/repo/clippy.toml examples/sset_spectroscopy.rs Cargo.toml

/root/repo/clippy.toml:
examples/sset_spectroscopy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
