/root/repo/target/debug/examples/method_comparison-4e27362db0334758.d: /root/repo/clippy.toml examples/method_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libmethod_comparison-4e27362db0334758.rmeta: /root/repo/clippy.toml examples/method_comparison.rs Cargo.toml

/root/repo/clippy.toml:
examples/method_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
