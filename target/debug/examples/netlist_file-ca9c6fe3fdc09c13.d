/root/repo/target/debug/examples/netlist_file-ca9c6fe3fdc09c13.d: examples/netlist_file.rs

/root/repo/target/debug/examples/libnetlist_file-ca9c6fe3fdc09c13.rmeta: examples/netlist_file.rs

examples/netlist_file.rs:
