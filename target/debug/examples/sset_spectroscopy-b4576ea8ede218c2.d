/root/repo/target/debug/examples/sset_spectroscopy-b4576ea8ede218c2.d: examples/sset_spectroscopy.rs

/root/repo/target/debug/examples/sset_spectroscopy-b4576ea8ede218c2: examples/sset_spectroscopy.rs

examples/sset_spectroscopy.rs:
