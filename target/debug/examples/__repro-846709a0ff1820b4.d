/root/repo/target/debug/examples/__repro-846709a0ff1820b4.d: examples/__repro.rs

/root/repo/target/debug/examples/__repro-846709a0ff1820b4: examples/__repro.rs

examples/__repro.rs:
