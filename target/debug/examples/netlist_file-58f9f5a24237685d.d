/root/repo/target/debug/examples/netlist_file-58f9f5a24237685d.d: /root/repo/clippy.toml examples/netlist_file.rs Cargo.toml

/root/repo/target/debug/examples/libnetlist_file-58f9f5a24237685d.rmeta: /root/repo/clippy.toml examples/netlist_file.rs Cargo.toml

/root/repo/clippy.toml:
examples/netlist_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
