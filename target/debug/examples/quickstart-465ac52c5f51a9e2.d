/root/repo/target/debug/examples/quickstart-465ac52c5f51a9e2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-465ac52c5f51a9e2: examples/quickstart.rs

examples/quickstart.rs:
