/root/repo/target/debug/examples/method_comparison-e68d84ec1577ca0b.d: examples/method_comparison.rs

/root/repo/target/debug/examples/libmethod_comparison-e68d84ec1577ca0b.rmeta: examples/method_comparison.rs

examples/method_comparison.rs:
