/root/repo/target/debug/examples/quickstart-3d7321f225e7b8d0.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3d7321f225e7b8d0.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
