/root/repo/target/debug/examples/method_comparison-5819f995e12b188a.d: examples/method_comparison.rs

/root/repo/target/debug/examples/method_comparison-5819f995e12b188a: examples/method_comparison.rs

examples/method_comparison.rs:
