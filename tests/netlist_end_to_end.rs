//! End-to-end test of the paper's input-file flow: parse the Example
//! Input File 1 text, compile, execute the declared sweep, and check
//! the resulting physics.

use semsim::netlist::CircuitFile;

const PAPER_FILE: &str = "\
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
charge 4 0.0
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
num j 2
num ext 3
num nodes 4
temp 5
record 1 2 2
jumps 15000 1
sweep 2 0.02 0.005
";

#[test]
fn paper_example_file_runs_end_to_end() {
    let file = CircuitFile::parse(PAPER_FILE).unwrap();
    let pts = file.execute().unwrap();
    // −20 mV → +20 mV in 5 mV steps = 9 points.
    assert_eq!(pts.len(), 9);
    // Ends conduct (40 mV total bias > 32 mV threshold), middle is
    // blockaded at 5 K (soft, but strongly suppressed).
    let ends = pts[0].current.abs().min(pts[8].current.abs());
    let mid = pts[4].current.abs();
    assert!(ends > 1e-10, "{ends}");
    assert!(mid < 0.05 * ends, "mid {mid} vs ends {ends}");
    // Odd symmetry.
    assert!(
        (pts[0].current + pts[8].current).abs() < 0.2 * pts[8].current.abs(),
        "{} vs {}",
        pts[0].current,
        pts[8].current
    );
}

#[test]
fn adaptive_directive_matches_nonadaptive_result() {
    let adaptive_file = format!("{PAPER_FILE}adaptive 0.05 1000\nseed 2\n");
    let reference = CircuitFile::parse(PAPER_FILE).unwrap().execute().unwrap();
    let adaptive = CircuitFile::parse(&adaptive_file)
        .unwrap()
        .execute()
        .unwrap();
    for (a, b) in reference.iter().zip(&adaptive) {
        let scale = a.current.abs().max(1e-12);
        assert!(
            (a.current - b.current).abs() / scale < 0.15,
            "at {}: {} vs {}",
            a.control,
            a.current,
            b.current
        );
    }
}

#[test]
fn superconducting_file_suppresses_more_current() {
    // 32.8 mV total bias: just above the normal-state threshold
    // (e/CΣ = 32 mV) but inside the superconducting suppressed region,
    // which the gap widens by ≈ 4Δ/e per junction (compare Fig. 1b/1c).
    let normal = "\
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.0164
vdc 2 -0.0164
vdc 3 0.0
temp 0.05
jumps 8000 1
";
    let sc = format!("{normal}super\ngap 0.2e-3\ntc 1.2\n");
    let i_normal = CircuitFile::parse(normal).unwrap().execute().unwrap()[0].current;
    let i_sc = CircuitFile::parse(&sc).unwrap().execute().unwrap()[0].current;
    assert!(i_normal.abs() > 1e-11, "{i_normal}");
    assert!(i_sc.abs() < 0.05 * i_normal.abs(), "{i_sc} vs {i_normal}");
}

#[test]
fn logic_netlist_through_full_stack() {
    // Parse a gate-level netlist, elaborate, simulate, check the levels.
    use semsim::core::engine::SimConfig;
    use semsim::logic::{elaborate, settle_outputs, SetLogicParams};
    use semsim::netlist::LogicFile;

    let logic = LogicFile::parse("input a\noutput y z\ninv y a\ninv z y\n").unwrap();
    let params = SetLogicParams::default();
    let elab = elaborate(&logic, &params).unwrap();
    let cfg = SimConfig::new(params.temperature).with_seed(8);
    let settle = 60.0 * params.switching_time();
    let outs = settle_outputs(&elab, &logic, &cfg, &[true], settle).unwrap();
    assert!(outs["y"] < 0.3 * params.vdd, "y = {}", outs["y"]);
    assert!(outs["z"] > 0.6 * params.vdd, "z = {}", outs["z"]);
}
