//! Property tests for the `semsim validate` harness itself: the
//! tolerance machinery must *shrink* with statistics (σ/√n) and must
//! *fire* on a genuinely wrong device. A validation harness whose
//! failure path is never exercised is just a green rubber stamp.

use semsim::validate::{run_points, DeviceParams, GridPoint, Reference, RunOptions, SetPoint};

/// An honest analytic comparison point on the Fig. 1 device at a
/// conducting bias, with the statistics budget left to the caller.
fn analytic_point(name: &str, device: DeviceParams, vds: f64, replicas: usize) -> GridPoint {
    GridPoint::Set(Box::new(SetPoint {
        name: name.to_string(),
        device,
        model: DeviceParams::fig1(),
        temperature: 5.0,
        vds,
        vg: 0.0,
        superconducting: None,
        reference: Reference::Analytic,
        replicas,
        events: 1_500,
        warmup: 100,
        seed: 42,
        z: 4.0,
        floor: 2e-12,
    }))
}

#[test]
fn sem_shrinks_like_inverse_sqrt_replicas() {
    // Same operating point, same per-replica budget, 4× the replicas:
    // the standard error of the ensemble mean must shrink roughly like
    // 1/√n (exactly 0.5 in expectation; the population-σ estimate
    // itself is noisy at these replica counts, hence the wide band).
    // Pinned seeds make the observed ratio deterministic.
    let points = [
        analytic_point("sigma-4", DeviceParams::fig1(), 40e-3, 4),
        analytic_point("sigma-16", DeviceParams::fig1(), 40e-3, 16),
    ];
    let results = run_points(&points, &RunOptions::default()).expect("grid runs");
    let (s4, s16) = (results[0].sem_measured, results[1].sem_measured);
    assert!(s4 > 0.0, "4-replica sem must be nonzero: {s4:e}");
    assert!(s16 > 0.0, "16-replica sem must be nonzero: {s16:e}");
    let ratio = s16 / s4;
    assert!(
        ratio > 0.15 && ratio < 0.85,
        "sem must shrink ≈ 1/√4 with 4× replicas: sem(4) = {s4:e}, \
         sem(16) = {s16:e}, ratio = {ratio:.3}"
    );
    // And both honest points agree with the analytic model.
    assert!(results[0].pass(), "honest 4-replica point must pass");
    assert!(results[1].pass(), "honest 16-replica point must pass");
}

#[test]
fn perturbed_capacitance_fails_the_table() {
    // The simulated device gets doubled junction capacitances
    // (C_Σ = 7 aF → blockade threshold e/C_Σ ≈ 23 mV) while the
    // analytic model keeps believing the honest 1 aF device
    // (threshold ≈ 32 mV). At 28 mV the real device conducts at the
    // nA scale and the model predicts deep blockade — the comparison
    // must fail, z·sem and floor notwithstanding.
    let wrong = DeviceParams {
        c: 2e-18,
        ..DeviceParams::fig1()
    };
    let points = [
        analytic_point("perturbed-c", wrong, 28e-3, 4),
        analytic_point("honest-c", DeviceParams::fig1(), 28e-3, 4),
    ];
    let results = run_points(&points, &RunOptions::default()).expect("grid runs");
    let bad = &results[0];
    assert!(
        !bad.pass(),
        "doubled junction capacitance must fail the table: measured {:e}, \
         reference {:e}, tolerance {:e}",
        bad.measured,
        bad.reference,
        bad.tolerance()
    );
    assert!(
        bad.measured.abs() > 100.0 * bad.reference.abs(),
        "the perturbed device should conduct where the model is blockaded: \
         {:e} vs {:e}",
        bad.measured,
        bad.reference
    );
    // The identically-budgeted honest twin passes — the failure above
    // is the physics, not the statistics.
    assert!(results[1].pass(), "honest twin must pass at the same bias");
}
