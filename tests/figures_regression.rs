//! Golden shape regressions for the committed paper figures
//! (`results/fig1b.txt`, `results/fig1c.txt`), on reduced grids so they
//! run in test time. These don't pin exact currents — Monte Carlo noise
//! moves the digits — they pin the *physics* the figures exist to show:
//!
//! * Fig. 1b: Coulomb blockade of half-width `e/C_Σ ≈ 32 mV` at
//!   `V_g = 0` (committed data: conduction turns on between 30 and
//!   34 mV), lifted by the gate.
//! * Fig. 1c: the superconducting gap *widens* the suppressed region —
//!   32 mV conducts normally (`≈ 8e-10 A` committed) but is dead in the
//!   SSET (`≈ 7e-20 A` committed).
//!
//! The sweeps run on the deterministic parallel driver, so these are
//! also end-to-end regressions for [`semsim::core::par`].

use semsim::core::engine::SimConfig;
use semsim::core::par::{par_sweep, ParOpts};
use semsim_bench::devices::{fig1_set, fig1c_params, SetDevice};

const EVENTS: u64 = 3_000;
const WARMUP: u64 = 150;

/// Currents through `j1` at the given symmetric drain-source biases.
fn currents(dev: &SetDevice, config: &SimConfig, biases: &[f64], vg: f64) -> Vec<f64> {
    par_sweep(
        &dev.circuit,
        config,
        dev.j1,
        biases,
        WARMUP,
        EVENTS,
        ParOpts::default(),
        |sim, vds| {
            sim.set_lead_voltage(dev.source_lead, vds / 2.0)?;
            sim.set_lead_voltage(dev.drain_lead, -vds / 2.0)?;
            sim.set_lead_voltage(dev.gate_lead, vg)
        },
    )
    .expect("sweep")
    .iter()
    .map(|p| p.current)
    .collect()
}

#[test]
fn fig1b_blockade_half_width_is_about_32_mv() {
    let dev = fig1_set().expect("device");
    let config = SimConfig::new(5.0).with_seed(42);
    let i = currents(&dev, &config, &[0.024, 0.030, 0.034, 0.040], 0.0);
    let (i24, i30, i34, i40) = (i[0].abs(), i[1].abs(), i[2].abs(), i[3].abs());

    assert!(
        i40 > 1e-9,
        "device must conduct well past the blockade: {i40:e}"
    );
    // Deep inside the blockade the current is thermally activated and
    // orders of magnitude down (committed: 6e-13 at 24 mV).
    assert!(
        i24 < 1e-3 * i40,
        "24 mV should be deep in blockade: {i24:e} vs {i40:e}"
    );
    // The turn-on sits between 30 and 34 mV — i.e. half-width ≈ e/C_Σ =
    // 32 mV (committed ratios to I(40 mV): 0.031 at 30 mV, 0.31 at 34 mV).
    assert!(
        i30 < 0.1 * i40,
        "30 mV is still inside the blockade: {i30:e}"
    );
    assert!(i34 > 0.1 * i40, "34 mV is past the blockade edge: {i34:e}");
    assert!(
        i34 > 3.0 * i30,
        "conduction must turn on steeply across 32 mV"
    );
}

#[test]
fn fig1b_gate_lifts_blockade() {
    let dev = fig1_set().expect("device");
    let config = SimConfig::new(5.0).with_seed(42);
    let biases = [0.010];
    let closed = currents(&dev, &config, &biases, 0.0)[0].abs();
    let open = currents(&dev, &config, &biases, 0.03)[0].abs();

    // Committed: 1.1e-19 A at V_g = 0 vs 2.1e-9 A at V_g = 30 mV.
    assert!(
        open > 1e-10,
        "30 mV gate should open conduction at 10 mV bias: {open:e}"
    );
    assert!(
        closed < 1e-3 * open,
        "zero gate should stay blockaded: {closed:e} vs {open:e}"
    );
}

#[test]
fn fig1c_superconducting_gap_widens_blockade() {
    let dev = fig1_set().expect("device");
    let normal = SimConfig::new(5.0).with_seed(42);
    let sset = SimConfig::new(0.05)
        .with_seed(42)
        .with_superconducting(fig1c_params().expect("params"));

    let biases = [0.032, 0.040];
    let i_normal = currents(&dev, &normal, &biases, 0.0);
    let i_sset = currents(&dev, &sset, &biases, 0.0);

    // Both variants conduct at 40 mV (committed: ≈ 6.5e-9 A each)...
    assert!(i_normal[1].abs() > 1e-9);
    assert!(i_sset[1].abs() > 1e-9);
    // ...but 32 mV — just outside the normal-state blockade (committed
    // ≈ 8e-10 A) — is suppressed by ten orders in the SSET (≈ 7e-20 A):
    // quasi-particle transport must additionally pay 2Δ per crossing.
    assert!(
        i_sset[0].abs() < 1e-3 * i_normal[0].abs(),
        "superconductivity must widen the gap region: sset {:e} vs normal {:e}",
        i_sset[0],
        i_normal[0]
    );
}
