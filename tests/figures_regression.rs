//! Golden shape regressions for the committed paper figures
//! (`results/fig1b.txt`, `results/fig1c.txt`, `results/fig5.txt`,
//! `results/fig7.txt`), on reduced grids so they run in test time.
//! These don't pin exact currents — Monte Carlo noise moves the
//! digits — they pin the *physics* the figures exist to show:
//!
//! * Fig. 1b: Coulomb blockade of half-width `e/C_Σ ≈ 32 mV` at
//!   `V_g = 0` (committed data: conduction turns on between 30 and
//!   34 mV), lifted by the gate.
//! * Fig. 1c: the superconducting gap *widens* the suppressed region —
//!   32 mV conducts normally (`≈ 8e-10 A` committed) but is dead in the
//!   SSET (`≈ 7e-20 A` committed).
//! * Fig. 5: the Manninen SSET's quasi-particle transport threshold —
//!   sub-gap current at 0.4 mV is ≈ 270× below the current past the
//!   threshold at 1.6 mV (committed: 6.5e-12 A vs 1.79e-9 A).
//! * Fig. 7: the adaptive solver's propagation delay on the 2-to-10
//!   decoder tracks the exact non-adaptive solver (committed:
//!   1.0128e-7 s reference, 3.59% semsim error over 5 seeds).
//!
//! The sweeps run on the deterministic parallel driver, so these are
//! also end-to-end regressions for [`semsim::core::par`].

use semsim::core::backend::BackendSpec;
use semsim::core::constants::{thermal_energy, E_CHARGE};
use semsim::core::engine::{SimConfig, SolverSpec};
use semsim::core::par::{par_sweep, ParOpts};
use semsim::core::superconduct::{gap_at, QpRateTable};
use semsim::logic::{elaborate, measure_delay_avg, Benchmark, SetLogicParams};
use semsim_bench::devices::{fig1_set, fig1c_params, fig5_params, fig5_set, SetDevice};

const EVENTS: u64 = 3_000;
const WARMUP: u64 = 150;

/// Compute backend under test, from `SEMSIM_TEST_BACKEND`
/// (`scalar` / `chunked` / `chunked:N`; default scalar). CI reruns
/// this suite with the chunked backend — backends are bit-identical,
/// so every figure assertion must hold unchanged.
fn test_backend() -> BackendSpec {
    match std::env::var("SEMSIM_TEST_BACKEND") {
        Ok(s) => BackendSpec::parse(&s).expect("invalid SEMSIM_TEST_BACKEND"),
        Err(_) => BackendSpec::default(),
    }
}

/// Currents through `j1` at the given symmetric drain-source biases.
fn currents(dev: &SetDevice, config: &SimConfig, biases: &[f64], vg: f64) -> Vec<f64> {
    par_sweep(
        &dev.circuit,
        config,
        dev.j1,
        biases,
        WARMUP,
        EVENTS,
        ParOpts::default(),
        |sim, vds| {
            sim.set_lead_voltage(dev.source_lead, vds / 2.0)?;
            sim.set_lead_voltage(dev.drain_lead, -vds / 2.0)?;
            sim.set_lead_voltage(dev.gate_lead, vg)
        },
    )
    .expect("sweep")
    .iter()
    .map(|p| p.current)
    .collect()
}

#[test]
fn fig1b_blockade_half_width_is_about_32_mv() {
    let dev = fig1_set().expect("device");
    let config = SimConfig::new(5.0)
        .with_seed(42)
        .with_backend(test_backend());
    let i = currents(&dev, &config, &[0.024, 0.030, 0.034, 0.040], 0.0);
    let (i24, i30, i34, i40) = (i[0].abs(), i[1].abs(), i[2].abs(), i[3].abs());

    assert!(
        i40 > 1e-9,
        "device must conduct well past the blockade: {i40:e}"
    );
    // Deep inside the blockade the current is thermally activated and
    // orders of magnitude down (committed: 6e-13 at 24 mV).
    assert!(
        i24 < 1e-3 * i40,
        "24 mV should be deep in blockade: {i24:e} vs {i40:e}"
    );
    // The turn-on sits between 30 and 34 mV — i.e. half-width ≈ e/C_Σ =
    // 32 mV (committed ratios to I(40 mV): 0.031 at 30 mV, 0.31 at 34 mV).
    assert!(
        i30 < 0.1 * i40,
        "30 mV is still inside the blockade: {i30:e}"
    );
    assert!(i34 > 0.1 * i40, "34 mV is past the blockade edge: {i34:e}");
    assert!(
        i34 > 3.0 * i30,
        "conduction must turn on steeply across 32 mV"
    );
}

#[test]
fn fig1b_gate_lifts_blockade() {
    let dev = fig1_set().expect("device");
    let config = SimConfig::new(5.0)
        .with_seed(42)
        .with_backend(test_backend());
    let biases = [0.010];
    let closed = currents(&dev, &config, &biases, 0.0)[0].abs();
    let open = currents(&dev, &config, &biases, 0.03)[0].abs();

    // Committed: 1.1e-19 A at V_g = 0 vs 2.1e-9 A at V_g = 30 mV.
    assert!(
        open > 1e-10,
        "30 mV gate should open conduction at 10 mV bias: {open:e}"
    );
    assert!(
        closed < 1e-3 * open,
        "zero gate should stay blockaded: {closed:e} vs {open:e}"
    );
}

#[test]
fn fig1c_superconducting_gap_widens_blockade() {
    let dev = fig1_set().expect("device");
    let normal = SimConfig::new(5.0)
        .with_seed(42)
        .with_backend(test_backend());
    let sset = SimConfig::new(0.05)
        .with_seed(42)
        .with_backend(test_backend())
        .with_superconducting(fig1c_params().expect("params"));

    let biases = [0.032, 0.040];
    let i_normal = currents(&dev, &normal, &biases, 0.0);
    let i_sset = currents(&dev, &sset, &biases, 0.0);

    // Both variants conduct at 40 mV (committed: ≈ 6.5e-9 A each)...
    assert!(i_normal[1].abs() > 1e-9);
    assert!(i_sset[1].abs() > 1e-9);
    // ...but 32 mV — just outside the normal-state blockade (committed
    // ≈ 8e-10 A) — is suppressed by ten orders in the SSET (≈ 7e-20 A):
    // quasi-particle transport must additionally pay 2Δ per crossing.
    assert!(
        i_sset[0].abs() < 1e-3 * i_normal[0].abs(),
        "superconductivity must widen the gap region: sset {:e} vs normal {:e}",
        i_sset[0],
        i_normal[0]
    );
}

#[test]
fn fig5_qp_threshold_separates_subgap_from_open_transport() {
    // The Manninen SSET, biased exactly as `bench/src/bin/fig5.rs` does:
    // full bias on the source, drain grounded, V_g = 0. Below the
    // quasi-particle transport threshold only thermally-activated
    // sub-gap processes carry current; past it the current jumps by
    // orders of magnitude (committed fig5.txt at V_g = 0: 6.55e-12 A at
    // 0.4 mV vs 1.79e-9 A at 1.6 mV — a factor ≈ 270).
    let dev = fig5_set().expect("device");
    let params = fig5_params().expect("params");
    let temp = 0.52;
    // Pre-size the quasi-particle rate table for the largest energy the
    // sweep can reach (the fig5 driver's formula): the engine would
    // otherwise size it from the construction-time lead voltages, which
    // are zero under the sweep's setup closure.
    let gap = gap_at(&params, temp);
    let kt = thermal_energy(temp);
    let ec = E_CHARGE * E_CHARGE / (2.0 * 234e-18);
    let w_max = 4.0 * gap + 40.0 * kt + 8.0 * ec + 4.0 * E_CHARGE * 0.011;
    let config = SimConfig::new(temp)
        .with_seed(42)
        .with_backend(test_backend())
        .with_superconducting(params)
        .with_qp_table(QpRateTable::build(gap, kt, w_max).expect("qp table"));

    let i = par_sweep(
        &dev.circuit,
        &config,
        dev.j1,
        &[0.4e-3, 1.6e-3],
        WARMUP,
        EVENTS,
        ParOpts::default(),
        |sim, vb| {
            sim.set_lead_voltage(dev.source_lead, vb)?;
            sim.set_lead_voltage(dev.gate_lead, 0.0)
        },
    )
    .expect("sweep");
    let (i_sub, i_open) = (i[0].current.abs(), i[1].current.abs());

    assert!(
        i_open > 1e-10,
        "past the qp threshold the SSET must conduct: {i_open:e}"
    );
    assert!(
        i_open > 20.0 * i_sub,
        "sub-gap current must sit far below the open region: \
         {i_sub:e} at 0.4 mV vs {i_open:e} at 1.6 mV"
    );
    assert!(
        i_sub > 1e-16,
        "sub-gap transport is suppressed but not dead at 0.52 K: {i_sub:e}"
    );
}

#[test]
fn fig7_adaptive_delay_tracks_nonadaptive_on_decoder() {
    // Fig. 7's observable: propagation delay of a logic benchmark under
    // the adaptive solver vs the exact non-adaptive solver. Reduced to
    // one seed pair on the 2-to-10 decoder (committed fig7.txt:
    // reference 1.0128e-7 s ≈ 11 τ, semsim error 3.59% over 5 seeds).
    let logic = Benchmark::Decoder2To10.logic();
    let params = SetLogicParams::default();
    let elab = elaborate(&logic, &params).expect("elaborate");
    let output = Benchmark::Decoder2To10.delay_output();
    let tau = elab.params.switching_time();
    // Full-refresh interval scales with circuit size (Fig. 6/7 policy).
    let refresh_interval = 1_000u64.max(4 * elab.circuit.num_islands() as u64);

    let run = |solver: SolverSpec, seed: u64| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(seed)
            .with_solver(solver)
            .with_backend(test_backend());
        measure_delay_avg(&elab, &logic, &cfg, output, 30.0, 50.0, 2)
            .expect("delay measurement")
            .delay
    };
    let adaptive = run(
        SolverSpec::Adaptive {
            threshold: 0.05,
            refresh_interval,
        },
        42,
    );
    // fig7's seed convention: the reference ensemble runs at seed + 100.
    let reference = run(SolverSpec::NonAdaptive, 142);

    for (name, d) in [("adaptive", adaptive), ("non-adaptive", reference)] {
        assert!(
            d > 2.0 * tau && d < 40.0 * tau,
            "{name} decoder delay must be a few switching times: \
             {d:e} s vs τ = {tau:e} s"
        );
    }
    let rel = (adaptive - reference).abs() / reference;
    assert!(
        rel < 0.5,
        "adaptive delay must track the exact solver: {adaptive:e} vs \
         {reference:e} (rel {rel:.3})"
    );
}
