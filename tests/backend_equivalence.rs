//! Cross-backend equivalence suite: the chunked SoA backend must
//! produce **bit-identical trajectories** to the scalar reference
//! backend (see `semsim::core::backend` for the per-kernel contract) —
//! across the adaptive threshold range, on normal and superconducting
//! circuits, for every chunk width (including widths that do not
//! divide the junction count, exercising the tail lanes), and under
//! the deterministic parallel drivers at any thread count.
//!
//! Everything here compares full `Record`s plus the raw bits of the
//! accumulated observables, so a single reassociated rounding anywhere
//! in the hot loop fails the suite.

use semsim::core::backend::BackendSpec;
use semsim::core::constants::{thermal_energy, E_CHARGE};
use semsim::core::engine::{Record, RunLength, SimConfig, Simulation, SolverSpec};
use semsim::core::par::{par_sweep, ParOpts};
use semsim::core::superconduct::{gap_at, QpRateTable};
use semsim::logic::{elaborate, Benchmark, Elaborated, SetLogicParams};
use semsim_bench::devices::{fig5_params, fig5_set, symmetric_set, SetDevice};

/// Threshold sweep: θ = 0 (test everything) through θ = 1 (flag almost
/// nothing), straddling the paper's 0.01–0.3 operating range.
const THETAS: [f64; 6] = [0.0, 0.05, 0.1, 0.3, 0.5, 1.0];

/// Chunk widths: 1 (degenerate), powers of two, and non-divisors of
/// the junction counts under test so the tail path runs.
const WIDTHS: [usize; 6] = [1, 2, 3, 4, 5, 8];

fn adaptive(theta: f64) -> SolverSpec {
    SolverSpec::Adaptive {
        threshold: theta,
        refresh_interval: 500,
    }
}

/// Runs one trajectory and returns its record.
fn run_record(dev: &SetDevice, cfg: SimConfig, vds: f64, vg: f64, events: u64) -> Record {
    let mut sim = Simulation::new(&dev.circuit, cfg).expect("simulation");
    sim.set_lead_voltage(dev.source_lead, vds / 2.0)
        .expect("bias");
    sim.set_lead_voltage(dev.drain_lead, -vds / 2.0)
        .expect("bias");
    sim.set_lead_voltage(dev.gate_lead, vg).expect("gate");
    sim.run(RunLength::Events(events)).expect("run")
}

/// Asserts two records are equal **to the bit** in every observable
/// that accumulates floating-point history.
fn assert_records_bit_identical(what: &str, a: &Record, b: &Record) {
    assert_eq!(a, b, "{what}: records differ");
    assert_eq!(
        a.duration.to_bits(),
        b.duration.to_bits(),
        "{what}: durations differ in the last ulp"
    );
    for (i, (x, y)) in a
        .electron_counts
        .iter()
        .zip(b.electron_counts.iter())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: electron count {i} differs in the last ulp"
        );
    }
}

#[test]
fn theta_sweep_bit_identical_on_normal_set() {
    let dev = symmetric_set(1e6, 1e-18, 3e-18, 0.5).expect("device");
    for theta in THETAS {
        let mk = |backend| {
            SimConfig::new(4.2)
                .with_seed(11)
                .with_solver(adaptive(theta))
                .with_backend(backend)
        };
        let scalar = run_record(&dev, mk(BackendSpec::Scalar), 20e-3, 10e-3, 4_000);
        let chunked = run_record(&dev, mk(BackendSpec::chunked()), 20e-3, 10e-3, 4_000);
        assert_records_bit_identical(&format!("SET θ={theta}"), &scalar, &chunked);
    }
}

#[test]
fn theta_sweep_bit_identical_on_superconducting_set() {
    let dev = fig5_set().expect("device");
    let params = fig5_params().expect("params");
    let temp = 0.52;
    let gap = gap_at(&params, temp);
    let kt = thermal_energy(temp);
    let ec = E_CHARGE * E_CHARGE / (2.0 * 234e-18);
    let w_max = 4.0 * gap + 40.0 * kt + 8.0 * ec + 4.0 * E_CHARGE * 0.011;
    let table = QpRateTable::build(gap, kt, w_max).expect("qp table");
    // The superconducting path routes every first-order rate through
    // the quasi-particle lookup table — the backend's batched
    // interpolation must match the scalar per-query path exactly.
    for theta in [0.0, 0.1, 0.5] {
        let mk = |backend| {
            SimConfig::new(temp)
                .with_seed(23)
                .with_solver(adaptive(theta))
                .with_superconducting(params)
                .with_qp_table(table.clone())
                .with_backend(backend)
        };
        let scalar = run_record(&dev, mk(BackendSpec::Scalar), 3.2e-3, 0.0, 2_000);
        let chunked = run_record(&dev, mk(BackendSpec::chunked()), 3.2e-3, 0.0, 2_000);
        assert_records_bit_identical(&format!("SSET θ={theta}"), &scalar, &chunked);
    }
}

/// Runs the 2-to-10 decoder (76 junctions — no chunk width in
/// [`WIDTHS`] divides it except 1, 2 and 4) with all inputs high.
fn run_logic(elab: &Elaborated, inputs: &[usize], cfg: SimConfig, events: u64) -> Record {
    let params = SetLogicParams::default();
    let mut sim = Simulation::new(&elab.circuit, cfg).expect("simulation");
    for &lead in inputs {
        sim.set_lead_voltage(lead, params.vdd).expect("input");
    }
    sim.run(RunLength::Events(events)).expect("run")
}

#[test]
fn chunk_width_sweep_bit_identical_on_logic_benchmark() {
    let logic = Benchmark::Decoder2To10.logic();
    let params = SetLogicParams::default();
    let elab = elaborate(&logic, &params).expect("elaborate");
    let inputs: Vec<usize> = logic
        .inputs
        .iter()
        .map(|name| elab.input_lead(name).expect("input lead"))
        .collect();
    let mk = |backend| {
        SimConfig::new(params.temperature)
            .with_seed(7)
            .with_solver(adaptive(0.05))
            .with_backend(backend)
    };
    let scalar = run_logic(&elab, &inputs, mk(BackendSpec::Scalar), 2_000);
    for width in WIDTHS {
        let chunked = run_logic(&elab, &inputs, mk(BackendSpec::Chunked { width }), 2_000);
        assert_records_bit_identical(&format!("decoder width={width}"), &scalar, &chunked);
    }
}

#[test]
fn chunked_adaptive_matches_dense_reference_oracle() {
    // `AdaptiveDense` recomputes dependency neighbourhoods from the
    // dense matrices every event on the scalar kernels — the engine
    // pins the oracle to the reference backend even when the config
    // asks for chunked. The optimized chunked solver must reproduce it
    // bit for bit.
    let logic = Benchmark::Decoder2To10.logic();
    let params = SetLogicParams::default();
    let elab = elaborate(&logic, &params).expect("elaborate");
    let inputs: Vec<usize> = logic
        .inputs
        .iter()
        .map(|name| elab.input_lead(name).expect("input lead"))
        .collect();
    let mk = |solver| {
        SimConfig::new(params.temperature)
            .with_seed(9)
            .with_solver(solver)
            .with_backend(BackendSpec::chunked())
    };
    let chunked = run_logic(&elab, &inputs, mk(adaptive(0.05)), 2_000);
    let oracle = run_logic(
        &elab,
        &inputs,
        mk(SolverSpec::AdaptiveDense {
            threshold: 0.05,
            refresh_interval: 500,
        }),
        2_000,
    );
    // Stats legitimately differ (the dense mode bypasses the memo), so
    // compare the trajectory observables, not the whole record.
    assert_eq!(chunked.events, oracle.events);
    assert_eq!(chunked.duration.to_bits(), oracle.duration.to_bits());
    for (i, (x, y)) in chunked
        .electron_counts
        .iter()
        .zip(oracle.electron_counts.iter())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "electron count {i} diverges from the dense oracle"
        );
    }
    assert_eq!(chunked.outcome, oracle.outcome);
}

#[test]
fn parallel_sweeps_bit_identical_across_backends_and_threads() {
    let dev = symmetric_set(1e6, 1e-18, 3e-18, 0.5).expect("device");
    let biases: Vec<f64> = (1..=6).map(|i| i as f64 * 5e-3).collect();
    let sweep = |backend, threads| {
        let cfg = SimConfig::new(4.2)
            .with_seed(31)
            .with_solver(adaptive(0.05))
            .with_backend(backend);
        par_sweep(
            &dev.circuit,
            &cfg,
            dev.j1,
            &biases,
            200,
            2_000,
            ParOpts::with_threads(threads),
            |sim, vds| {
                sim.set_lead_voltage(dev.source_lead, vds / 2.0)?;
                sim.set_lead_voltage(dev.drain_lead, -vds / 2.0)?;
                sim.set_lead_voltage(dev.gate_lead, 10e-3)
            },
        )
        .expect("sweep")
        .iter()
        .map(|p| (p.control.to_bits(), p.current.to_bits(), p.events))
        .collect::<Vec<_>>()
    };
    let reference = sweep(BackendSpec::Scalar, 1);
    for threads in 1..=8 {
        assert_eq!(
            sweep(BackendSpec::chunked(), threads),
            reference,
            "chunked backend on {threads} thread(s) diverges from the \
             serial scalar sweep"
        );
    }
}
