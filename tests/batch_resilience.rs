//! Integration tests of the resilient batch layer: fault-free batches
//! must be bit-identical to the plain parallel drivers, and the
//! `SEMSIMJL` journal must survive truncation at every byte boundary,
//! single-bit rot, and version skew — a resumed batch reproduces the
//! uninterrupted one bit-for-bit or refuses loudly, never silently
//! drifts.

use std::path::PathBuf;

use semsim::core::batch::{batch_sweep, BatchOpts, BatchReport, RetryPolicy};
use semsim::core::checkpoint::fnv1a64;
use semsim::core::circuit::{Circuit, CircuitBuilder, JunctionId};
use semsim::core::engine::{SimConfig, Simulation, SweepPoint};
use semsim::core::journal::{scan, HEADER_LEN};
use semsim::core::par::{par_sweep, ParOpts};
use semsim::core::CoreError;

/// A conducting SET (source—island—drain plus gate): every sweep point
/// tunnels at a healthy rate.
fn set_circuit() -> (Circuit, JunctionId) {
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(10e-3);
    let drn = b.add_lead(-10e-3);
    let gate = b.add_lead(0.0);
    let island = b.add_island();
    let j = b.add_junction(src, island, 1e6, 1e-18).unwrap();
    b.add_junction(island, drn, 1e6, 1e-18).unwrap();
    b.add_capacitor(gate, island, 3e-18).unwrap();
    (b.build().unwrap(), j)
}

fn controls() -> Vec<f64> {
    (0..8).map(|i| 2e-3 * (i as f64 + 1.0)).collect()
}

fn apply_bias(sim: &mut Simulation<'_>, v: f64) -> Result<(), CoreError> {
    sim.set_lead_voltage(1, v / 2.0)?;
    sim.set_lead_voltage(2, -v / 2.0)
}

/// Runs the reference batch with the given options.
fn run_batch(opts: &BatchOpts) -> BatchReport<SweepPoint> {
    let (circuit, j) = set_circuit();
    let cfg = SimConfig::new(5.0).with_seed(33);
    batch_sweep(
        &circuit,
        &cfg,
        j,
        &controls(),
        150,
        1200,
        opts,
        |sim, v, _spec| apply_bias(sim, v),
    )
    .unwrap()
}

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("semsim_batch_{name}_{}.jl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn batch_sweep_is_bit_identical_to_par_sweep() {
    let (circuit, j) = set_circuit();
    let cfg = SimConfig::new(5.0).with_seed(33);
    let reference = par_sweep(
        &circuit,
        &cfg,
        j,
        &controls(),
        150,
        1200,
        ParOpts::serial(),
        apply_bias,
    )
    .unwrap();
    for threads in [1, 2, 4] {
        let opts = BatchOpts {
            par: ParOpts::with_threads(threads),
            ..BatchOpts::default()
        };
        let report = run_batch(&opts);
        assert!(report.is_complete());
        assert_eq!(report.retries, 0);
        assert_eq!(report.values().unwrap(), reference, "threads = {threads}");
    }
}

#[test]
fn killed_and_resumed_journal_reproduces_the_uninterrupted_run() {
    let path = temp_journal("kill_resume");
    let opts = BatchOpts {
        par: ParOpts::with_threads(1),
        journal: Some(path.clone()),
        ..BatchOpts::default()
    };
    let reference = run_batch(&opts);
    assert!(reference.is_complete());
    let full = std::fs::read(&path).unwrap();

    // Kill the writer at two different points mid-record (a torn
    // append), then resume at different thread counts: the journal
    // restores the finished prefix and the recomputed remainder is
    // bit-identical to the uninterrupted run.
    for (threads, frac) in [(1usize, 0.6), (4, 0.85)] {
        let cut = (full.len() as f64 * frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let opts = BatchOpts {
            par: ParOpts::with_threads(threads),
            journal: Some(path.clone()),
            resume: true,
            ..BatchOpts::default()
        };
        let resumed = run_batch(&opts);
        assert!(
            resumed.counts.skipped > 0 && resumed.counts.skipped < controls().len(),
            "cut at {frac} restored {} points",
            resumed.counts.skipped
        );
        assert!(resumed.discarded_tail_bytes > 0, "no torn record at {frac}");
        assert_eq!(
            resumed.values().unwrap(),
            reference.values().unwrap(),
            "threads = {threads}, cut = {frac}"
        );
    }

    // A resume against the completed journal recomputes nothing.
    std::fs::write(&path, &full).unwrap();
    let opts = BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    };
    let restored = run_batch(&opts);
    assert_eq!(restored.counts.skipped, controls().len());
    assert_eq!(restored.retries, 0);
    assert_eq!(restored.values().unwrap(), reference.values().unwrap());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn scan_survives_truncation_at_every_byte_boundary() {
    let path = temp_journal("truncate");
    let opts = BatchOpts {
        journal: Some(path.clone()),
        ..BatchOpts::default()
    };
    run_batch(&opts);
    let full = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let complete = scan::<SweepPoint>(&full).unwrap();
    assert_eq!(complete.entries.len(), controls().len());
    assert_eq!(complete.discarded_tail_bytes, 0);

    for len in 0..=full.len() {
        match scan::<SweepPoint>(&full[..len]) {
            Ok(s) => {
                assert!(len >= HEADER_LEN, "short header scanned at {len}");
                // The valid prefix is always an exact prefix of the
                // complete journal's entries.
                assert!(s.entries.len() <= complete.entries.len());
                for (got, want) in s.entries.iter().zip(&complete.entries) {
                    assert_eq!(got.task, want.task, "len = {len}");
                    assert_eq!(got.item, want.item, "len = {len}");
                }
                assert_eq!(s.valid_len + s.discarded_tail_bytes, len);
            }
            Err(CoreError::JournalCorrupt { .. }) => {
                assert!(len < HEADER_LEN, "valid header rejected at {len}");
            }
            Err(other) => panic!("unexpected error at {len}: {other:?}"),
        }
    }
}

#[test]
fn single_bit_flips_discard_the_tail_never_panic() {
    let path = temp_journal("bitflip");
    let opts = BatchOpts {
        journal: Some(path.clone()),
        ..BatchOpts::default()
    };
    run_batch(&opts);
    let full = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let complete = scan::<SweepPoint>(&full).unwrap();

    for byte in 0..full.len() {
        for bit in 0..8 {
            let mut rotted = full.clone();
            rotted[byte] ^= 1 << bit;
            match scan::<SweepPoint>(&rotted) {
                Ok(s) => {
                    // A flip inside the record region invalidates that
                    // record's checksum or framing: the tail is
                    // discarded, the prefix survives untouched.
                    assert!(byte >= HEADER_LEN, "header flip at {byte}:{bit} scanned");
                    assert!(
                        s.entries.len() < complete.entries.len(),
                        "flip at {byte}:{bit} went unnoticed"
                    );
                    for (got, want) in s.entries.iter().zip(&complete.entries) {
                        assert_eq!(got.item, want.item, "prefix drift at {byte}:{bit}");
                    }
                }
                Err(CoreError::JournalCorrupt { .. }) => {
                    assert!(byte < HEADER_LEN, "record flip at {byte}:{bit} errored");
                }
                Err(other) => panic!("unexpected error at {byte}:{bit}: {other:?}"),
            }
        }
    }
}

#[test]
fn future_format_version_is_rejected() {
    let path = temp_journal("version");
    let opts = BatchOpts {
        journal: Some(path.clone()),
        ..BatchOpts::default()
    };
    run_batch(&opts);
    let mut bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    // Bump the version field (bytes 8..12, LE) and reseal the header
    // checksum so only the version is wrong.
    bytes[8] += 1;
    let sum = fnv1a64(&bytes[..HEADER_LEN - 8]).to_le_bytes();
    bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum);
    match scan::<SweepPoint>(&bytes) {
        Err(CoreError::JournalVersionSkew { found, supported }) => {
            assert_eq!(found, 2);
            assert_eq!(supported, 1);
        }
        other => panic!("version 2 accepted: {other:?}"),
    }
}

#[test]
fn journal_from_a_different_batch_is_refused() {
    let path = temp_journal("mismatch");
    let opts = BatchOpts {
        journal: Some(path.clone()),
        ..BatchOpts::default()
    };
    run_batch(&opts);

    let (circuit, j) = set_circuit();
    let resume = BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    };
    // Different master seed.
    let err = batch_sweep(
        &circuit,
        &SimConfig::new(5.0).with_seed(34),
        j,
        &controls(),
        150,
        1200,
        &resume,
        |sim, v, _spec| apply_bias(sim, v),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::JournalMismatch { .. }), "{err:?}");
    // Different voltage grid (fingerprint).
    let err = batch_sweep(
        &circuit,
        &SimConfig::new(5.0).with_seed(33),
        j,
        &controls()[..6],
        150,
        1200,
        &resume,
        |sim, v, _spec| apply_bias(sim, v),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::JournalMismatch { .. }), "{err:?}");
    // Different retry policy (also part of the fingerprint).
    let err = batch_sweep(
        &circuit,
        &SimConfig::new(5.0).with_seed(33),
        j,
        &controls(),
        150,
        1200,
        &BatchOpts {
            retry: RetryPolicy {
                max_retries: 7,
                ..RetryPolicy::default()
            },
            ..resume.clone()
        },
        |sim, v, _spec| apply_bias(sim, v),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::JournalMismatch { .. }), "{err:?}");
    let _ = std::fs::remove_file(&path);
}

/// Every point faults (the setup touches a lead that does not exist):
/// the report is a complete structured account — all points `Faulted`
/// with their terminal fault recorded — and nothing panics or aborts.
#[test]
fn all_points_faulted_is_a_structured_report() {
    let (circuit, j) = set_circuit();
    let cfg = SimConfig::new(5.0).with_seed(33);
    let report = batch_sweep(
        &circuit,
        &cfg,
        j,
        &controls(),
        150,
        1200,
        &BatchOpts::default(),
        |sim, _v, _spec| sim.set_lead_voltage(99, 0.0),
    )
    .unwrap();
    assert_eq!(report.counts.faulted, controls().len());
    assert_eq!(report.counts.ok + report.counts.recovered, 0);
    assert!(!report.is_complete());
    assert!(report.values().is_none(), "no values to assemble");
    for p in &report.points {
        assert!(p.item.is_none());
        assert!(p.fault.is_some(), "point {} lost its fault", p.task);
        assert!(!p.attempts.is_empty());
    }
}

/// A token cancelled before the batch starts: every point reports
/// `Cancelled`, no point computes, and the journal (if any) holds only
/// its header — a later resume recomputes everything bit-identically.
#[test]
fn cancel_before_first_point_salvages_nothing_but_stays_structured() {
    use semsim::core::batch::{CancelToken, PointStatus};
    let path = temp_journal("cancel_first");
    let cancel = CancelToken::new();
    cancel.cancel();
    let report = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        cancel: Some(cancel),
        ..BatchOpts::default()
    });
    assert_eq!(report.counts.cancelled, controls().len());
    assert!(report
        .points
        .iter()
        .all(|p| p.status == PointStatus::Cancelled && p.item.is_none()));
    // The journal was created (header) but holds no entries; resuming
    // from it reproduces the uninterrupted run bit-for-bit.
    let scanned = scan::<SweepPoint>(&std::fs::read(&path).unwrap()).unwrap();
    assert!(scanned.entries.is_empty());
    assert_eq!(scanned.discarded_tail_bytes, 0);
    let resumed = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    });
    assert_eq!(resumed.counts.skipped, 0, "nothing to restore");
    assert!(resumed.is_complete());
    let reference = run_batch(&BatchOpts::default());
    assert_eq!(resumed.values().unwrap(), reference.values().unwrap());
    let _ = std::fs::remove_file(&path);
}

/// A journal truncated to exactly its header (the crash happened after
/// the header fsync but before any record): resume accepts it, restores
/// zero points, and recomputes the full batch bit-identically.
#[test]
fn header_only_journal_resumes_to_the_full_run() {
    let path = temp_journal("header_only");
    let reference = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        ..BatchOpts::default()
    });
    assert!(reference.is_complete());
    let full = std::fs::read(&path).unwrap();
    assert!(full.len() > HEADER_LEN);
    std::fs::write(&path, &full[..HEADER_LEN]).unwrap();
    let resumed = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    });
    assert_eq!(resumed.counts.skipped, 0);
    assert_eq!(
        resumed.discarded_tail_bytes, 0,
        "a clean boundary, not a torn tail"
    );
    assert!(resumed.is_complete());
    assert_eq!(resumed.values().unwrap(), reference.values().unwrap());
    let _ = std::fs::remove_file(&path);
}

/// Chaos-found edge: the crash happens *immediately* after the header,
/// mid-way through the very first record — the file is a valid header
/// plus garbage. Resume must diagnose the torn tail (with a reason),
/// restore nothing, and recompute the full batch bit-identically.
#[test]
fn header_plus_torn_first_record_resumes_to_the_full_run() {
    let path = temp_journal("header_torn");
    let reference = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        ..BatchOpts::default()
    });
    assert!(reference.is_complete());
    let full = std::fs::read(&path).unwrap();
    assert!(full.len() > HEADER_LEN + 8);
    // Header, then the first 5 bytes of the first record.
    std::fs::write(&path, &full[..HEADER_LEN + 5]).unwrap();
    let scanned = scan::<SweepPoint>(&std::fs::read(&path).unwrap()).unwrap();
    assert!(scanned.entries.is_empty());
    assert_eq!(scanned.discarded_tail_bytes, 5);
    assert!(
        scanned.tail_reason.is_some(),
        "torn tail must carry a reason"
    );
    let resumed = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    });
    assert_eq!(resumed.counts.skipped, 0);
    assert_eq!(resumed.discarded_tail_bytes, 5);
    assert!(resumed.is_complete());
    assert_eq!(resumed.values().unwrap(), reference.values().unwrap());
    let _ = std::fs::remove_file(&path);
}

/// Chaos-found edge: the cancel token fires while the *final* point is
/// being set up — racing the last record's flush. Whatever subset got
/// journaled, a resume restores it and recomputes the rest, and the
/// final values are bit-identical to the uninterrupted run.
#[test]
fn cancel_racing_the_final_record_flush_resumes_exactly() {
    use semsim::core::batch::{batch_sweep, CancelToken};
    let path = temp_journal("cancel_last");
    let reference = run_batch(&BatchOpts::default());
    let (circuit, j) = set_circuit();
    let cfg = SimConfig::new(5.0).with_seed(33);
    let last = controls().len() - 1;
    let cancel = CancelToken::new();
    let opts = BatchOpts {
        par: ParOpts::with_threads(2),
        journal: Some(path.clone()),
        cancel: Some(cancel.clone()),
        ..BatchOpts::default()
    };
    let interrupted = batch_sweep(
        &circuit,
        &cfg,
        j,
        &controls(),
        150,
        1200,
        &opts,
        |sim, v, spec| {
            if spec.task == last {
                cancel.cancel();
            }
            apply_bias(sim, v)
        },
    )
    .unwrap();
    // The journal holds exactly the points that finished — scan agrees
    // with the report, and every journaled value matches the clean run.
    let scanned = scan::<SweepPoint>(&std::fs::read(&path).unwrap()).unwrap();
    let finished = interrupted.counts.ok + interrupted.counts.recovered;
    assert_eq!(scanned.entries.len(), finished);
    let reference_values = reference.values().unwrap();
    for e in &scanned.entries {
        assert_eq!(
            e.item, reference_values[e.task],
            "journaled task {}",
            e.task
        );
    }
    let resumed = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    });
    assert_eq!(resumed.counts.skipped, finished);
    assert!(resumed.is_complete());
    assert_eq!(resumed.values().unwrap(), reference_values);
    let _ = std::fs::remove_file(&path);
}

/// Chaos-found edge: the disk fills after `k` appends. The batch still
/// completes with every value salvaged in memory; the on-disk journal
/// holds a byte-identical prefix of the clean run; and a resume
/// restores that prefix and recomputes the non-durable points exactly.
#[cfg(feature = "fault-inject")]
#[test]
fn disk_full_salvages_a_byte_identical_prefix() {
    use semsim::core::batch::BatchFaultPlan;
    let path = temp_journal("disk_full");
    let reference = run_batch(&BatchOpts::default());
    let reference_values = reference.values().unwrap();
    let kept = 3u64;
    let report = run_batch(&BatchOpts {
        par: ParOpts::with_threads(1),
        journal: Some(path.clone()),
        fault_plan: Some(BatchFaultPlan::new().journal_full_after(kept, 7)),
        ..BatchOpts::default()
    });
    // Every point computed; the ones past the "full disk" are flagged
    // as non-durable, and the first failure names the cause.
    assert!(report.is_complete());
    assert_eq!(report.values().unwrap(), reference_values);
    assert_eq!(
        report.journal_write_failures(),
        controls().len() - kept as usize
    );
    let first = report.first_journal_write_error().unwrap();
    assert!(first.contains("journal"), "unhelpful error: {first}");
    // On disk: a valid prefix of exactly `kept` records, each
    // byte-identical to the clean run, then the torn partial record.
    let scanned = scan::<SweepPoint>(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(scanned.entries.len(), kept as usize);
    assert_eq!(scanned.discarded_tail_bytes, 7);
    for e in &scanned.entries {
        assert_eq!(
            e.item, reference_values[e.task],
            "journaled task {}",
            e.task
        );
    }
    // After the operator frees space: resume restores the durable
    // prefix and recomputes the rest bit-identically.
    let resumed = run_batch(&BatchOpts {
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    });
    assert_eq!(resumed.counts.skipped, kept as usize);
    assert!(resumed.is_complete());
    assert_eq!(resumed.values().unwrap(), reference_values);
    let _ = std::fs::remove_file(&path);
}
