//! Integration tests of the superconducting transport stack: gap
//! widening (Fig. 1c), JQP resonances and thermally activated sub-gap
//! transport (the singularity-matching regime of Fig. 5).

use semsim::core::circuit::{Circuit, CircuitBuilder, JunctionId};
use semsim::core::constants::ev_to_joule;
use semsim::core::engine::{RunLength, SimConfig, Simulation};
use semsim::core::superconduct::SuperconductingParams;
use semsim::core::CoreError;

fn fig1_set() -> (Circuit, JunctionId) {
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(0.0);
    let drn = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island();
    let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
    b.add_junction(island, drn, 1e6, 1e-18).unwrap();
    b.add_capacitor(gate, island, 3e-18).unwrap();
    (b.build().unwrap(), j1)
}

fn fig5_set() -> (Circuit, JunctionId) {
    let mut b = CircuitBuilder::new();
    let bias = b.add_lead(0.0);
    let drn = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island_with_charge(0.65);
    let j1 = b.add_junction(bias, island, 210e3, 110e-18).unwrap();
    b.add_junction(island, drn, 210e3, 110e-18).unwrap();
    b.add_capacitor(gate, island, 14e-18).unwrap();
    (b.build().unwrap(), j1)
}

fn current(
    circuit: &Circuit,
    j1: JunctionId,
    cfg: SimConfig,
    v_pairs: &[(usize, f64)],
    events: u64,
) -> f64 {
    let mut sim = Simulation::new(circuit, cfg).unwrap();
    for &(lead, v) in v_pairs {
        sim.set_lead_voltage(lead, v).unwrap();
    }
    match sim.run(RunLength::Events(events)) {
        Ok(r) => r.current(j1),
        Err(CoreError::BlockadeStall { .. }) => 0.0,
        Err(e) => panic!("{e}"),
    }
}

fn fig1c_params() -> SuperconductingParams {
    SuperconductingParams::new(ev_to_joule(0.2e-3), 1.2).unwrap()
}

#[test]
fn superconducting_gap_widens_the_suppressed_region() {
    // Fig. 1b vs 1c: a bias just above the normal-state threshold
    // (32 mV total) is still inside the superconducting suppressed
    // region, which the gap widens by ≈ 4Δ/e per junction (~1.6 mV of
    // total bias with the symmetric divider).
    let (c, j1) = fig1_set();
    let bias = [(1usize, 16.4e-3), (2usize, -16.4e-3)];
    let normal = current(&c, j1, SimConfig::new(0.05).with_seed(2), &bias, 20_000);
    let sc = current(
        &c,
        j1,
        SimConfig::new(0.05)
            .with_seed(2)
            .with_superconducting(fig1c_params()),
        &bias,
        20_000,
    );
    assert!(normal > 1e-10, "normal state conducts: {normal}");
    assert!(
        sc.abs() < 0.02 * normal,
        "superconducting current {sc} vs normal {normal}"
    );
}

#[test]
fn well_above_gap_currents_converge() {
    // Far above threshold the superconducting I–V approaches ohmic
    // (quasi-particle DOS → 1), so normal and SC currents are close.
    let (c, j1) = fig1_set();
    let bias = [(1usize, 20e-2), (2usize, -20e-2)];
    let normal = current(&c, j1, SimConfig::new(0.05).with_seed(4), &bias, 20_000);
    let sc = current(
        &c,
        j1,
        SimConfig::new(0.05)
            .with_seed(4)
            .with_superconducting(fig1c_params()),
        &bias,
        20_000,
    );
    let rel = (sc - normal).abs() / normal;
    assert!(rel < 0.1, "normal {normal} vs sc {sc} ({rel:.3})");
}

#[test]
fn subgap_transport_is_thermally_activated() {
    // The singularity-matching regime: sub-gap current grows strongly
    // with temperature between 50 mK and 0.52 K (paper Fig. 5 region).
    let (c, j1) = fig5_set();
    let params = SuperconductingParams::new(ev_to_joule(0.22e-3), 1.43).unwrap();
    let bias = [(1usize, 0.5e-3), (3usize, 4e-3)];
    let cold = current(
        &c,
        j1,
        SimConfig::new(0.05)
            .with_seed(7)
            .with_superconducting(params),
        &bias,
        6_000,
    );
    let warm = current(
        &c,
        j1,
        SimConfig::new(0.52)
            .with_seed(7)
            .with_superconducting(params),
        &bias,
        6_000,
    );
    assert!(
        warm.abs() > 5.0 * cold.abs().max(1e-15),
        "cold {cold} vs warm {warm}"
    );
}

#[test]
fn jqp_cycles_appear_in_the_event_log() {
    let (c, j1) = fig5_set();
    let params = SuperconductingParams::new(ev_to_joule(0.22e-3), 1.43).unwrap();
    let cfg = SimConfig::new(0.52)
        .with_seed(11)
        .with_superconducting(params);
    let mut sim = Simulation::new(&c, cfg).unwrap();
    sim.set_lead_voltage(1, 1.37e-3).unwrap();
    sim.set_lead_voltage(3, 4e-3).unwrap();
    sim.enable_event_log(20_000);
    let r = sim.run(RunLength::Events(20_000)).unwrap();
    let log = sim.event_log().unwrap();
    assert!(r.events > 0);
    assert!(
        log.cooper_pair_fraction() > 0.001,
        "no Cooper-pair transport near the resonance"
    );
    assert!(
        log.count_jqp_cycles() > 10,
        "JQP cycles: {}",
        log.count_jqp_cycles()
    );
    let _ = j1;
}
