//! Reproducibility harness for the deterministic parallel execution
//! layer ([`semsim::core::par`]). Pins the module's central contract:
//! **results are bit-identical regardless of thread count**, chunk
//! size, or task hand-out order, and the per-task PRNG streams derived
//! by counter-based seed splitting do not collide.
//!
//! The thread counts under test come from the `SEMSIM_TEST_THREADS`
//! environment variable (comma-separated, default `1,2,4,8`) so
//! `scripts/ci.sh` can re-run the suite pinned to specific counts.

use std::collections::HashSet;

use semsim::core::circuit::{Circuit, CircuitBuilder, JunctionId};
use semsim::core::engine::{linspace, sweep, RunLength, SimConfig, Simulation, SweepPoint};
use semsim::core::par::{par_sweep, split_seed, Ensemble, EnsembleReport, ParOpts};
use semsim::core::rng::Rng;

/// Thread counts to exercise: `SEMSIM_TEST_THREADS` or `1,2,4,8`.
fn thread_counts() -> Vec<usize> {
    std::env::var("SEMSIM_TEST_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// The paper's symmetric SET (leads: 1 = source, 2 = drain, 3 = gate),
/// biased at the charge degeneracy so every sweep point conducts and
/// accumulates real stochastic history.
fn set_device() -> (Circuit, JunctionId) {
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(0.0);
    let drn = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island_with_charge(0.5);
    let j1 = b.add_junction(src, island, 1e6, 1e-18).expect("junction");
    b.add_junction(island, drn, 1e6, 1e-18).expect("junction");
    b.add_capacitor(gate, island, 3e-18).expect("capacitor");
    (b.build().expect("circuit"), j1)
}

fn symmetric_bias(sim: &mut Simulation<'_>, v: f64) -> Result<(), semsim::core::CoreError> {
    sim.set_lead_voltage(1, v / 2.0)?;
    sim.set_lead_voltage(2, -v / 2.0)
}

/// Every bit that could differ between runs, extracted per point.
fn sweep_bits(points: &[SweepPoint]) -> Vec<(u64, u64, u64)> {
    points
        .iter()
        .map(|p| (p.control.to_bits(), p.current.to_bits(), p.events))
        .collect()
}

fn ensemble_bits(report: &EnsembleReport) -> (u64, u64, u64, String) {
    (
        report.mean_current.to_bits(),
        report.std_current.to_bits(),
        report.total_events,
        format!("{:?}", report.outcomes),
    )
}

#[test]
fn par_sweep_is_byte_identical_across_thread_counts() {
    let (circuit, j1) = set_device();
    let config = SimConfig::new(5.0).with_seed(99);
    let controls = linspace(-0.04, 0.04, 11);

    let serial =
        sweep(&circuit, &config, j1, &controls, 100, 800, symmetric_bias).expect("serial sweep");
    let reference = sweep_bits(&serial);
    // The workload must actually exercise the stochastic engine.
    assert!(serial.iter().any(|p| p.current != 0.0));

    for threads in thread_counts() {
        let par = par_sweep(
            &circuit,
            &config,
            j1,
            &controls,
            100,
            800,
            ParOpts::with_threads(threads),
            symmetric_bias,
        )
        .expect("parallel sweep");
        assert_eq!(
            sweep_bits(&par),
            reference,
            "par_sweep({threads} threads) diverged from the serial driver"
        );
    }
}

#[test]
fn par_sweep_is_invariant_under_chunking_and_handout_order() {
    let (circuit, j1) = set_device();
    let config = SimConfig::new(5.0).with_seed(5);
    let controls = linspace(-0.03, 0.03, 9);

    let reference = sweep_bits(
        &sweep(&circuit, &config, j1, &controls, 50, 500, symmetric_bias).expect("serial"),
    );
    for threads in thread_counts() {
        for chunk in [1, 3] {
            for reverse in [false, true] {
                let opts = ParOpts {
                    threads,
                    chunk,
                    reverse,
                };
                let par = par_sweep(
                    &circuit,
                    &config,
                    j1,
                    &controls,
                    50,
                    500,
                    opts,
                    symmetric_bias,
                )
                .expect("parallel sweep");
                assert_eq!(
                    sweep_bits(&par),
                    reference,
                    "chunk={chunk} reverse={reverse} threads={threads} moved results"
                );
            }
        }
    }
}

#[test]
fn ensemble_statistics_are_invariant_under_thread_count_and_permutation() {
    let (circuit, j1) = set_device();
    let config = SimConfig::new(5.0).with_seed(123);
    let make = || Ensemble::new(&circuit, config.clone(), j1, 12, RunLength::Events(400));
    let reference = {
        let report = make()
            .run_with(ParOpts::serial(), symmetric_setup)
            .expect("serial ensemble");
        assert_eq!(report.replicas(), 12);
        assert!(report.std_current.is_finite());
        ensemble_bits(&report)
    };

    for threads in thread_counts() {
        for reverse in [false, true] {
            let opts = ParOpts {
                threads,
                chunk: 2,
                reverse,
            };
            let report = make().run_with(opts, symmetric_setup).expect("ensemble");
            assert_eq!(
                ensemble_bits(&report),
                reference,
                "ensemble(threads={threads}, reverse={reverse}) moved statistics"
            );
        }
    }
}

fn symmetric_setup(
    sim: &mut Simulation<'_>,
    _replica: usize,
) -> Result<(), semsim::core::CoreError> {
    symmetric_bias(sim, 30e-3)
}

#[test]
fn split_seed_streams_do_not_collide_in_first_draws() {
    // 16 tasks under 2 master seeds, 10_000 draws each: every u64 in
    // every stream must be distinct from every other. A collision at
    // this scale would mean the split function is folding streams onto
    // each other, silently correlating "independent" replicas.
    let mut seen = HashSet::new();
    for master in [0u64, 42] {
        for task in 0..16u64 {
            let mut rng = Rng::seed_from_u64(split_seed(master, task));
            for draw in 0..10_000u32 {
                assert!(
                    seen.insert(rng.next_u64()),
                    "stream collision at master={master} task={task} draw={draw}"
                );
            }
        }
    }
}

#[test]
fn split_seed_differs_from_naive_offset_seeding() {
    // The old scheme seeded point `i` with `seed + i`, which makes
    // task streams of adjacent master seeds literally identical
    // (master 7 task 1 == master 8 task 0). The split function must
    // not have that property.
    assert_ne!(split_seed(7, 1), split_seed(8, 0));
    assert_ne!(split_seed(0, 0), 0);
}
