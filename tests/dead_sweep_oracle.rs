//! SC014's dynamic oracle: the sweep the static analysis calls dead is
//! confirmed dead by actually simulating it — with the RNG seed pinned,
//! every point of the sweep computes a bit-identical observable — and
//! the rewrite that revives it (recording the swept component across a
//! wider range) produces a sweep that measurably varies.
//!
//! The fixture is built for an exact zero-temperature argument: two
//! electrically separate SETs share only ground. The swept component is
//! biased 0–5 mV against a ≈ 80 mV Coulomb threshold, so at T = 0 every
//! one of its tunnel rates is exactly 0.0 at every sweep point — the
//! swept voltage cannot perturb the RNG stream, and the recorded
//! component's trajectory is bit-for-bit the same run. (The production
//! sweep drivers deliberately split the seed per grid point, so the
//! oracle drives the grid by hand with one fixed seed.)

use semsim::check::DiagCode;
use semsim::core::engine::{RunLength, Simulation};
use semsim::netlist::{lint_circuit, CircuitFile};

fn fixture_source() -> String {
    let path = format!(
        "{}/tests/fixtures/lint/sc014_dead_sweep.cir",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// Runs the file's sweep grid by hand: every point gets a fresh
/// simulation with the *same* seed, the swept lead set to the grid
/// voltage, and the same event budget; returns the recorded junction's
/// time-averaged current per point.
fn manual_sweep(file: &CircuitFile, grid: &[f64]) -> Vec<f64> {
    let compiled = file.compile().expect("fixture compiles");
    let cfg = file.sim_config().expect("config");
    let spec = file.sweep.as_ref().expect("sweep declared");
    let lead = compiled.leads[&spec.node];
    let record = file.record.as_ref().expect("record declared");
    let junction = compiled.junction(record.from).expect("recorded junction");
    let events = file.jumps.map(|(e, _)| e).unwrap_or(2000);
    grid.iter()
        .map(|&v| {
            let mut sim = Simulation::new(&compiled.circuit, cfg.clone()).expect("sim");
            sim.set_lead_voltage(lead, v).expect("set swept voltage");
            let rec = sim.run(RunLength::Events(events)).expect("run completes");
            rec.current(junction)
        })
        .collect()
}

#[test]
fn statically_dead_sweep_is_dynamically_constant() {
    let source = fixture_source();
    let file = CircuitFile::parse(&source).expect("fixture parses");

    // Static verdict: SC014, warning severity (the file still runs).
    let diags = lint_circuit(&file);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::DeadSweep),
        "static analysis must flag the sweep: {diags:?}"
    );
    assert!(!diags.has_errors());

    // Dynamic oracle: the declared grid, identical seed per point.
    let grid = [0.0, 0.001, 0.002, 0.003, 0.004, 0.005];
    let currents = manual_sweep(&file, &grid);
    assert!(
        currents[0] != 0.0,
        "the recorded component conducts at 0.1 V"
    );
    for (v, i) in grid.iter().zip(&currents) {
        assert_eq!(
            i.to_bits(),
            currents[0].to_bits(),
            "dead sweep must be bit-identical at control {v} V (got {i:e} vs {:e})",
            currents[0]
        );
    }
}

#[test]
fn recording_the_swept_component_revives_the_sweep() {
    // Point `record` at the swept component and widen the sweep across
    // the Coulomb threshold: the lint verdict flips to alive, and the
    // simulated observable actually varies between grid points.
    let source = fixture_source()
        .replace("record 3 4 1", "record 1 2 1")
        .replace("sweep 1 0.005 0.001", "sweep 1 0.1 0.02");
    let file = CircuitFile::parse(&source).expect("revived fixture parses");

    let diags = lint_circuit(&file);
    assert!(
        !diags.iter().any(|d| d.code == DiagCode::DeadSweep),
        "recording the swept component revives the sweep: {diags:?}"
    );

    let grid = [0.0, 0.02, 0.04, 0.06, 0.08, 0.1];
    let currents = manual_sweep(&file, &grid);
    let distinct: std::collections::HashSet<u64> = currents.iter().map(|i| i.to_bits()).collect();
    assert!(
        distinct.len() > 1,
        "sweep crossing the threshold must vary: {:?}",
        grid.iter().zip(&currents).collect::<Vec<_>>()
    );
}
