//! Integration tests of the adaptive solver's accuracy/performance
//! contract (the substance of the paper's Figs. 6–7): on multi-stage
//! logic circuits, the adaptive solver must do far less rate work than
//! the conventional solver while reproducing its observables.

use semsim::core::engine::{RunLength, SimConfig, Simulation, SolverSpec};
use semsim::logic::{elaborate, measure_delay, synthesize, SetLogicParams};

fn adaptive_spec(theta: f64) -> SolverSpec {
    SolverSpec::Adaptive {
        threshold: theta,
        refresh_interval: 2_000,
    }
}

#[test]
fn adaptive_reproduces_event_rate_on_logic_benchmark() {
    // The mean simulated time per event (inverse total rate) is a stiff
    // global observable; adaptive and non-adaptive must agree within a
    // few percent at θ = 0.05.
    let params = SetLogicParams::default();
    let logic = synthesize(118, 8, 42); // ≈ 74LS153-sized
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(3)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(20_000)).unwrap();
        (r.duration / r.events as f64, r.rate_recalcs)
    };
    let (dt_ref, recalcs_ref) = run(SolverSpec::NonAdaptive);
    let (dt_adp, recalcs_adp) = run(adaptive_spec(0.05));
    let err = (dt_adp - dt_ref).abs() / dt_ref;
    assert!(err < 0.10, "event-rate error {err:.3}");
    assert!(
        recalcs_adp * 5 < recalcs_ref,
        "adaptive did {recalcs_adp} recalcs vs {recalcs_ref}"
    );
}

#[test]
fn tighter_threshold_is_more_accurate() {
    let params = SetLogicParams::default();
    let logic = synthesize(118, 8, 42);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(3)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(15_000)).unwrap();
        r.rate_recalcs as f64 / r.events as f64
    };
    // Work decreases monotonically with θ.
    let w_tight = run(adaptive_spec(0.005));
    let w_mid = run(adaptive_spec(0.05));
    let w_loose = run(adaptive_spec(0.5));
    assert!(
        w_tight >= w_mid && w_mid >= w_loose,
        "{w_tight} {w_mid} {w_loose}"
    );
}

#[test]
fn delay_measurement_agrees_between_solvers() {
    // One row of Fig. 7 on the smallest benchmark-style circuit: delays
    // from the two solvers agree within the paper's error band plus
    // Monte Carlo noise.
    let params = SetLogicParams::default();
    let logic = semsim::logic::Benchmark::Decoder2To10.logic();
    let elab = elaborate(&logic, &params).unwrap();
    let output = semsim::logic::Benchmark::Decoder2To10.delay_output();

    let delay = |spec: SolverSpec, seed: u64| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(seed)
            .with_solver(spec);
        measure_delay(&elab, &logic, &cfg, output, 40.0, 100.0)
            .expect("transition observed")
            .delay
    };
    let seeds = [101u64, 102, 103];
    let d_ref: f64 = seeds
        .iter()
        .map(|&s| delay(SolverSpec::NonAdaptive, s))
        .sum::<f64>()
        / seeds.len() as f64;
    let d_adp: f64 = seeds
        .iter()
        .map(|&s| delay(adaptive_spec(0.05), s))
        .sum::<f64>()
        / seeds.len() as f64;
    let err = (d_adp - d_ref).abs() / d_ref;
    assert!(err < 0.25, "delay error {err:.3} ({d_adp} vs {d_ref})");
}

#[test]
fn zero_threshold_event_stream_is_statistically_identical() {
    // At θ = 0 every tested junction recomputes; currents must agree
    // with the reference within tight Monte Carlo noise.
    let params = SetLogicParams::default();
    let logic = synthesize(24, 4, 7);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(1)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(5_000)).unwrap();
        r.duration
    };
    let t_ref = run(SolverSpec::NonAdaptive);
    let t_adp = run(SolverSpec::Adaptive {
        threshold: 0.0,
        refresh_interval: u64::MAX,
    });
    let rel = (t_adp - t_ref).abs() / t_ref;
    assert!(rel < 0.05, "durations {t_ref} vs {t_adp} ({rel:.4})");
}

#[test]
fn drift_audit_stays_clean_on_logic_benchmark() {
    // The runtime's periodic drift audit, running on a multi-stage
    // logic circuit under the adaptive solver at a practical θ, must
    // observe only the drift the threshold permits: no degradation
    // events, and the observables still match the reference solver.
    let params = SetLogicParams::default();
    let logic = synthesize(60, 6, 21);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec, audit: Option<u64>| {
        let mut cfg = SimConfig::new(params.temperature)
            .with_seed(9)
            .with_solver(spec);
        if let Some(n) = audit {
            cfg = cfg.with_audit_interval(n).with_drift_tolerance(0.5);
        }
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(10_000)).unwrap();
        (r.duration / r.events as f64, sim.health_report())
    };
    let (dt_ref, _) = run(SolverSpec::NonAdaptive, None);
    let (dt_adp, report) = run(adaptive_spec(0.05), Some(500));
    assert_eq!(report.audits, 20, "expected an audit every 500 events");
    assert!(
        report.worst_drift.is_finite() && report.worst_drift >= 0.0,
        "{report:?}"
    );
    assert!(
        report.degradations.is_empty(),
        "θ = 0.05 drifted past tolerance: {report:?}"
    );
    let err = (dt_adp - dt_ref).abs() / dt_ref;
    assert!(err < 0.10, "event-rate error {err:.3} under auditing");
}

#[test]
fn checkpoint_round_trip_is_bit_identical() {
    // The checkpoint contract: an interrupted-and-resumed run must
    // reproduce the uninterrupted trajectory bit for bit — identical
    // event counts, identical duration, identical probe samples —
    // under both solvers.
    let params = SetLogicParams::default();
    let logic = synthesize(24, 4, 7);
    let elab = elaborate(&logic, &params).unwrap();
    for spec in [SolverSpec::NonAdaptive, adaptive_spec(0.05)] {
        let make = || {
            let cfg = SimConfig::new(params.temperature)
                .with_seed(77)
                .with_solver(spec);
            let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
            for name in &logic.inputs {
                let lead = elab.input_lead(name).unwrap();
                sim.set_lead_voltage(lead, params.vdd).unwrap();
            }
            sim.add_probe(elab.circuit.island_node(0), 250);
            sim
        };

        // Uninterrupted reference: 10k warm-up + checkpoint mid-flight,
        // then 10k more.
        let mut straight = make();
        straight.run(RunLength::Events(10_000)).unwrap();
        let snapshot = straight.checkpoint().unwrap();
        let reference = straight.run(RunLength::Events(10_000)).unwrap();

        // Interrupted run: a fresh simulation restored from the bytes.
        let mut resumed = make();
        resumed.resume(&snapshot).unwrap();
        assert_eq!(resumed.events(), 10_000);
        let replay = resumed.run(RunLength::Events(10_000)).unwrap();

        assert_eq!(reference, replay, "trajectory diverged ({spec:?})");
        assert_eq!(straight.time().to_bits(), resumed.time().to_bits());
    }
}
