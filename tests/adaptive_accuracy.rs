//! Integration tests of the adaptive solver's accuracy/performance
//! contract (the substance of the paper's Figs. 6–7): on multi-stage
//! logic circuits, the adaptive solver must do far less rate work than
//! the conventional solver while reproducing its observables.

use semsim::core::circuit::{CircuitBuilder, NodeId};
use semsim::core::constants::ev_to_joule;
use semsim::core::engine::{linspace, sweep, RunLength, SimConfig, Simulation, SolverSpec};
use semsim::core::par::{par_sweep, ParOpts};
use semsim::core::superconduct::SuperconductingParams;
use semsim::logic::{elaborate, measure_delay, synthesize, SetLogicParams};

fn adaptive_spec(theta: f64) -> SolverSpec {
    SolverSpec::Adaptive {
        threshold: theta,
        refresh_interval: 2_000,
    }
}

#[test]
fn adaptive_reproduces_event_rate_on_logic_benchmark() {
    // The mean simulated time per event (inverse total rate) is a stiff
    // global observable; adaptive and non-adaptive must agree within a
    // few percent at θ = 0.05.
    let params = SetLogicParams::default();
    let logic = synthesize(118, 8, 42); // ≈ 74LS153-sized
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(3)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(20_000)).unwrap();
        (r.duration / r.events as f64, r.rate_recalcs)
    };
    let (dt_ref, recalcs_ref) = run(SolverSpec::NonAdaptive);
    let (dt_adp, recalcs_adp) = run(adaptive_spec(0.05));
    let err = (dt_adp - dt_ref).abs() / dt_ref;
    assert!(err < 0.10, "event-rate error {err:.3}");
    assert!(
        recalcs_adp * 5 < recalcs_ref,
        "adaptive did {recalcs_adp} recalcs vs {recalcs_ref}"
    );
}

#[test]
fn tighter_threshold_is_more_accurate() {
    let params = SetLogicParams::default();
    let logic = synthesize(118, 8, 42);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(3)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(15_000)).unwrap();
        r.rate_recalcs as f64 / r.events as f64
    };
    // Work decreases monotonically with θ.
    let w_tight = run(adaptive_spec(0.005));
    let w_mid = run(adaptive_spec(0.05));
    let w_loose = run(adaptive_spec(0.5));
    assert!(
        w_tight >= w_mid && w_mid >= w_loose,
        "{w_tight} {w_mid} {w_loose}"
    );
}

#[test]
fn delay_measurement_agrees_between_solvers() {
    // One row of Fig. 7 on the smallest benchmark-style circuit: delays
    // from the two solvers agree within the paper's error band plus
    // Monte Carlo noise.
    let params = SetLogicParams::default();
    let logic = semsim::logic::Benchmark::Decoder2To10.logic();
    let elab = elaborate(&logic, &params).unwrap();
    let output = semsim::logic::Benchmark::Decoder2To10.delay_output();

    let delay = |spec: SolverSpec, seed: u64| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(seed)
            .with_solver(spec);
        measure_delay(&elab, &logic, &cfg, output, 40.0, 100.0)
            .expect("transition observed")
            .delay
    };
    let seeds = [101u64, 102, 103];
    let d_ref: f64 = seeds
        .iter()
        .map(|&s| delay(SolverSpec::NonAdaptive, s))
        .sum::<f64>()
        / seeds.len() as f64;
    let d_adp: f64 = seeds
        .iter()
        .map(|&s| delay(adaptive_spec(0.05), s))
        .sum::<f64>()
        / seeds.len() as f64;
    let err = (d_adp - d_ref).abs() / d_ref;
    assert!(err < 0.25, "delay error {err:.3} ({d_adp} vs {d_ref})");
}

#[test]
fn zero_threshold_event_stream_is_statistically_identical() {
    // At θ = 0 every tested junction recomputes; currents must agree
    // with the reference within tight Monte Carlo noise.
    let params = SetLogicParams::default();
    let logic = synthesize(24, 4, 7);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(1)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(5_000)).unwrap();
        r.duration
    };
    let t_ref = run(SolverSpec::NonAdaptive);
    let t_adp = run(SolverSpec::Adaptive {
        threshold: 0.0,
        refresh_interval: u64::MAX,
    });
    let rel = (t_adp - t_ref).abs() / t_ref;
    assert!(rel < 0.05, "durations {t_ref} vs {t_adp} ({rel:.4})");
}

#[test]
fn drift_audit_stays_clean_on_logic_benchmark() {
    // The runtime's periodic drift audit, running on a multi-stage
    // logic circuit under the adaptive solver at a practical θ, must
    // observe only the drift the threshold permits: no degradation
    // events, and the observables still match the reference solver.
    let params = SetLogicParams::default();
    let logic = synthesize(60, 6, 21);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec, audit: Option<u64>| {
        let mut cfg = SimConfig::new(params.temperature)
            .with_seed(9)
            .with_solver(spec);
        if let Some(n) = audit {
            cfg = cfg.with_audit_interval(n).with_drift_tolerance(0.5);
        }
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        let r = sim.run(RunLength::Events(10_000)).unwrap();
        (r.duration / r.events as f64, sim.health_report())
    };
    let (dt_ref, _) = run(SolverSpec::NonAdaptive, None);
    let (dt_adp, report) = run(adaptive_spec(0.05), Some(500));
    assert_eq!(report.audits, 20, "expected an audit every 500 events");
    assert!(
        report.worst_drift.is_finite() && report.worst_drift >= 0.0,
        "{report:?}"
    );
    assert!(
        report.degradations.is_empty(),
        "θ = 0.05 drifted past tolerance: {report:?}"
    );
    let err = (dt_adp - dt_ref).abs() / dt_ref;
    assert!(err < 0.10, "event-rate error {err:.3} under auditing");
}

#[test]
fn optimized_adaptive_is_bit_identical_to_dense_reference() {
    // The hot-path contract: precomputed dependency neighbourhoods and
    // the rate memo are pure optimizations. At every threshold — from
    // "recompute everything" (θ = 0) through ablation values to
    // "recompute almost nothing" (θ = 1) — the optimized solver must
    // reproduce the dense-reference solver's trajectory bit for bit:
    // identical Records (duration, electron counts, probe samples,
    // adaptive work counters) and identical simulated-time bits.
    let params = SetLogicParams::default();
    let logic = synthesize(60, 6, 21);
    let elab = elaborate(&logic, &params).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(params.temperature)
            .with_seed(5)
            .with_solver(spec);
        let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
        for name in &logic.inputs {
            let lead = elab.input_lead(name).unwrap();
            sim.set_lead_voltage(lead, params.vdd).unwrap();
        }
        sim.add_probe(elab.circuit.island_node(0), 100);
        let r = sim.run(RunLength::Events(8_000)).unwrap();
        (r, sim.time())
    };
    for theta in [0.0, 0.01, 0.05, 0.1, 0.3, 1.0] {
        let (opt, t_opt) = run(SolverSpec::Adaptive {
            threshold: theta,
            refresh_interval: 1_500,
        });
        let (dense, t_dense) = run(SolverSpec::AdaptiveDense {
            threshold: theta,
            refresh_interval: 1_500,
        });
        assert_eq!(opt, dense, "trajectory diverged at θ = {theta}");
        assert_eq!(
            t_opt.to_bits(),
            t_dense.to_bits(),
            "time diverged at θ = {theta}"
        );
    }
}

#[test]
fn superconducting_optimized_adaptive_matches_dense_reference() {
    // Same contract through the quasi-particle path: rates come from
    // the bucket-indexed lookup table and flow through the memo, and a
    // two-island chain exercises non-trivial dependency lists.
    let mut b = CircuitBuilder::new();
    let bias = b.add_lead(20e-2);
    let i1 = b.add_island();
    let i2 = b.add_island();
    b.add_junction(bias, i1, 1e6, 1e-18).unwrap();
    b.add_junction(i1, i2, 1e6, 1e-18).unwrap();
    b.add_junction(i2, NodeId::GROUND, 1e6, 1e-18).unwrap();
    let c = b.build().unwrap();
    let sc = SuperconductingParams::new(ev_to_joule(0.2e-3), 1.2).unwrap();
    let run = |spec: SolverSpec| {
        let cfg = SimConfig::new(0.05)
            .with_seed(11)
            .with_solver(spec)
            .with_superconducting(sc);
        let mut sim = Simulation::new(&c, cfg).unwrap();
        let r = sim.run(RunLength::Events(6_000)).unwrap();
        (r, sim.time())
    };
    for theta in [0.01, 0.1, 0.3] {
        let (opt, t_opt) = run(SolverSpec::Adaptive {
            threshold: theta,
            refresh_interval: 1_000,
        });
        let (dense, t_dense) = run(SolverSpec::AdaptiveDense {
            threshold: theta,
            refresh_interval: 1_000,
        });
        assert_eq!(opt, dense, "SC trajectory diverged at θ = {theta}");
        assert_eq!(t_opt.to_bits(), t_dense.to_bits(), "θ = {theta}");
    }
}

#[test]
fn optimized_sweep_is_bit_identical_across_modes_and_threads() {
    // SweepPoint output must not depend on the optimization or on the
    // thread count: serial optimized == serial dense-reference ==
    // parallel optimized at any worker count.
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(0.0);
    let drn = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island();
    let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
    b.add_junction(island, drn, 1e6, 1e-18).unwrap();
    b.add_capacitor(gate, island, 3e-18).unwrap();
    let c = b.build().unwrap();
    let src_idx = c.lead_index(src).unwrap();
    let drn_idx = c.lead_index(drn).unwrap();
    let controls = linspace(10e-3, 40e-3, 6);
    let setup = |sim: &mut Simulation<'_>, v: f64| {
        sim.set_lead_voltage(src_idx, 0.5 * v)?;
        sim.set_lead_voltage(drn_idx, -0.5 * v)
    };

    let optimized = SolverSpec::Adaptive {
        threshold: 0.05,
        refresh_interval: 500,
    };
    let dense = SolverSpec::AdaptiveDense {
        threshold: 0.05,
        refresh_interval: 500,
    };
    let cfg = |spec| SimConfig::new(0.1).with_seed(21).with_solver(spec);

    let bits = |pts: &[semsim::core::engine::SweepPoint]| -> Vec<(u64, u64, u64)> {
        pts.iter()
            .map(|p| (p.control.to_bits(), p.current.to_bits(), p.events))
            .collect()
    };

    let serial_opt = sweep(&c, &cfg(optimized), j1, &controls, 300, 1_200, setup).unwrap();
    let serial_dense = sweep(&c, &cfg(dense), j1, &controls, 300, 1_200, setup).unwrap();
    assert_eq!(bits(&serial_opt), bits(&serial_dense));
    assert_eq!(serial_opt, serial_dense);

    for threads in [2usize, 4, 8] {
        let par = par_sweep(
            &c,
            &cfg(optimized),
            j1,
            &controls,
            300,
            1_200,
            ParOpts::with_threads(threads),
            setup,
        )
        .unwrap();
        assert_eq!(bits(&serial_opt), bits(&par), "threads = {threads}");
        assert_eq!(serial_opt, par, "threads = {threads}");
    }
}

#[test]
fn checkpoint_round_trip_is_bit_identical() {
    // The checkpoint contract: an interrupted-and-resumed run must
    // reproduce the uninterrupted trajectory bit for bit — identical
    // event counts, identical duration, identical probe samples —
    // under both solvers.
    let params = SetLogicParams::default();
    let logic = synthesize(24, 4, 7);
    let elab = elaborate(&logic, &params).unwrap();
    for spec in [SolverSpec::NonAdaptive, adaptive_spec(0.05)] {
        let make = || {
            let cfg = SimConfig::new(params.temperature)
                .with_seed(77)
                .with_solver(spec);
            let mut sim = Simulation::new(&elab.circuit, cfg).unwrap();
            for name in &logic.inputs {
                let lead = elab.input_lead(name).unwrap();
                sim.set_lead_voltage(lead, params.vdd).unwrap();
            }
            sim.add_probe(elab.circuit.island_node(0), 250);
            sim
        };

        // Uninterrupted reference: 10k warm-up + checkpoint mid-flight,
        // then 10k more.
        let mut straight = make();
        straight.run(RunLength::Events(10_000)).unwrap();
        let snapshot = straight.checkpoint().unwrap();
        let reference = straight.run(RunLength::Events(10_000)).unwrap();

        // Interrupted run: a fresh simulation restored from the bytes.
        let mut resumed = make();
        resumed.resume(&snapshot).unwrap();
        assert_eq!(resumed.events(), 10_000);
        let replay = resumed.run(RunLength::Events(10_000)).unwrap();

        assert_eq!(reference, replay, "trajectory diverged ({spec:?})");
        assert_eq!(straight.time().to_bits(), resumed.time().to_bits());
    }
}
