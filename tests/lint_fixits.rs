//! Fix-it and CLI contract tests: `--fix` idempotence over every lint
//! fixture, JSON round-trips through the schema validator, and the
//! binary's exit-code policy (`--deny`/`--allow`, `json-verify`).

use std::path::PathBuf;
use std::process::Command;

use semsim::check::{
    apply_suggestions, parse_json, report_to_json, validate_report, Diagnostics, JsonFileReport,
    Suggestion,
};
use semsim::netlist::{lint_circuit, lint_logic, CircuitFile, RawLogicFile};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(format!(
        "{}/tests/fixtures/lint",
        env!("CARGO_MANIFEST_DIR")
    ))
}

fn fixture_path(name: &str) -> String {
    fixtures_dir().join(name).display().to_string()
}

/// Lints `source`, picking the front-end by file extension (fixtures
/// never rely on content sniffing). `None` when the text fails to parse.
fn lint_text(name: &str, source: &str) -> Option<Diagnostics> {
    if name.ends_with(".logic") {
        RawLogicFile::parse(source).ok().map(|r| lint_logic(&r))
    } else {
        CircuitFile::parse(source).ok().map(|f| lint_circuit(&f))
    }
}

/// The in-process mirror of `semsim lint --fix`: apply every
/// machine-applicable suggestion and re-lint until clean or stable.
fn fix_to_convergence(name: &str, mut source: String) -> String {
    for _ in 0..8 {
        let Some(diags) = lint_text(name, &source) else {
            break;
        };
        let fixes: Vec<&Suggestion> = diags
            .iter()
            .filter_map(|d| d.suggestion.as_ref())
            .filter(|s| s.is_machine_applicable())
            .collect();
        if fixes.is_empty() {
            break;
        }
        let rewritten = apply_suggestions(&source, &fixes);
        if rewritten == source {
            break;
        }
        source = rewritten;
    }
    source
}

/// Every fixture, fixed and re-fixed: the second pass must be a no-op
/// (byte-identical), and no machine-applicable suggestion may survive
/// the first pass — the convergence contract `--fix` documents.
#[test]
fn fix_is_idempotent_on_every_fixture() {
    let mut checked = 0;
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let source = std::fs::read_to_string(&path).expect("readable fixture");
        let fixed = fix_to_convergence(&name, source);
        let fixed_again = fix_to_convergence(&name, fixed.clone());
        assert_eq!(fixed, fixed_again, "{name}: --fix is not idempotent");
        if let Some(diags) = lint_text(&name, &fixed) {
            let leftover: Vec<&Suggestion> = diags
                .iter()
                .filter_map(|d| d.suggestion.as_ref())
                .filter(|s| s.is_machine_applicable())
                .collect();
            assert!(
                leftover.is_empty(),
                "{name}: machine-applicable fixes survive --fix: {leftover:?}"
            );
        }
        checked += 1;
    }
    assert!(checked >= 20, "expected ≥ 20 fixtures, found {checked}");
}

/// Warning-only fixtures become clean once their machine-applicable
/// fixes land — the before/after pairs documented in
/// docs/diagnostics.md.
#[test]
fn machine_fixes_clean_their_fixtures() {
    for name in [
        "sc010_wrong_sign_sweep.cir",
        "sc014_dead_sweep.cir",
        "sc014_dead_input.logic",
        "sc015_constant_sweep.cir",
        "sc015_shadowed_jump.cir",
        "sc016_constant_probe.cir",
        "sc017_theta_regime.cir",
        "sc018_conflicting_jumps.cir",
    ] {
        let source = std::fs::read_to_string(fixture_path(name)).expect("fixture");
        let fixed = fix_to_convergence(name, source);
        let diags = lint_text(name, &fixed).expect("fixed text parses");
        assert!(diags.is_empty(), "{name} not clean after --fix: {diags:?}");
    }
}

/// Every fixture's diagnostics, rendered to JSON, must satisfy the
/// schema validator and survive a parse round-trip with the counts and
/// codes intact.
#[test]
fn json_report_round_trips_for_every_fixture() {
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let source = std::fs::read_to_string(&path).expect("readable fixture");
        let diags = lint_text(&name, &source).expect("fixtures parse");
        let text = report_to_json(&[JsonFileReport {
            path: &name,
            diags: &diags,
            parse_error: None,
        }]);
        validate_report(&text).unwrap_or_else(|e| panic!("{name}: invalid JSON report: {e}"));
        let doc = parse_json(&text).expect("report parses");
        let files = doc.get("files").and_then(|f| f.as_array()).expect("files");
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].get("path").and_then(|p| p.as_str()), Some(&*name));
        let listed = files[0]
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .expect("diagnostics");
        assert_eq!(listed.len(), diags.len(), "{name}: diagnostic count");
        for (j, d) in listed.iter().zip(diags.iter()) {
            assert_eq!(
                j.get("code").and_then(|c| c.as_str()),
                Some(d.code.code()),
                "{name}: code mismatch"
            );
        }
    }
}

fn semsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semsim"))
}

/// Scratch file that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str, contents: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("semsim_{}_{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write scratch file");
        Scratch(path)
    }

    fn path(&self) -> String {
        self.0.display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn warning_only_file_exits_zero() {
    let out = semsim()
        .args(["lint", &fixture_path("sc013_non_uniform_grid.cir")])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(0), "warnings alone must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning[SC013]"), "{stdout}");
}

#[test]
fn deny_warnings_escalates_to_exit_one() {
    let out = semsim()
        .args([
            "lint",
            "--deny",
            "warnings",
            &fixture_path("sc013_non_uniform_grid.cir"),
        ])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[SC013]"), "{stdout}");
}

#[test]
fn deny_single_code_escalates_only_that_code() {
    let out = semsim()
        .args([
            "lint",
            "--deny",
            "SC013",
            &fixture_path("sc013_non_uniform_grid.cir"),
        ])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(1));
    let out = semsim()
        .args([
            "lint",
            "--deny",
            "SC012",
            &fixture_path("sc013_non_uniform_grid.cir"),
        ])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(0), "denying another code is inert");
}

#[test]
fn allow_silences_the_code() {
    let out = semsim()
        .args([
            "lint",
            "--allow",
            "SC013",
            &fixture_path("sc013_non_uniform_grid.cir"),
        ])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn error_file_exits_one() {
    let out = semsim()
        .args(["lint", &fixture_path("sc001_floating_island.cir")])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn unknown_code_is_a_usage_error() {
    for flag in ["--deny", "--allow"] {
        let out = semsim()
            .args([
                "lint",
                flag,
                "SC999",
                &fixture_path("sc013_non_uniform_grid.cir"),
            ])
            .output()
            .expect("run semsim");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} SC999 must be usage error"
        );
    }
}

#[test]
fn json_output_validates_through_json_verify() {
    let out = semsim()
        .args([
            "lint",
            "--format",
            "json",
            &fixture_path("sc013_non_uniform_grid.cir"),
            &fixture_path("sc001_floating_island.cir"),
            &fixture_path("clean_jump_probe.cir"),
        ])
        .output()
        .expect("run semsim");
    assert_eq!(out.status.code(), Some(1), "SC001 is an error");
    let report = String::from_utf8(out.stdout).expect("utf-8 report");
    validate_report(&report).expect("CLI emits schema-valid JSON");
    let scratch = Scratch::new("report.json", &report);
    let verify = semsim()
        .args(["json-verify", &scratch.path()])
        .output()
        .expect("run json-verify");
    assert_eq!(verify.status.code(), Some(0));
    let garbage = Scratch::new("garbage.json", "{\"schema_version\":2}");
    let verify = semsim()
        .args(["json-verify", &garbage.path()])
        .output()
        .expect("run json-verify");
    assert_eq!(verify.status.code(), Some(1));
}

#[test]
fn fix_flag_rewrites_the_file_in_place() {
    let source = std::fs::read_to_string(fixture_path("sc016_constant_probe.cir")).unwrap();
    let scratch = Scratch::new("fixme.cir", &source);
    let out = semsim()
        .args(["lint", "--fix", &scratch.path()])
        .output()
        .expect("run semsim --fix");
    assert_eq!(out.status.code(), Some(0));
    let fixed = std::fs::read_to_string(&scratch.0).expect("rewritten file");
    assert!(
        !fixed.contains("probe"),
        "constant probe line deleted:\n{fixed}"
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("clean"),
        "file is clean after --fix"
    );
    // A second --fix run is a no-op on the already-fixed file.
    let out = semsim()
        .args(["lint", "--fix", &scratch.path()])
        .output()
        .expect("run semsim --fix again");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(std::fs::read_to_string(&scratch.0).unwrap(), fixed);
}
