//! The resource estimator's accuracy contract: on every shipped example
//! netlist, the count-based admission-time prediction stays within
//! ±20 % of the measured allocation footprint of the built circuit.
//! Allocation bytes are the deterministic proxy for RSS — every byte
//! the estimator accounts is resident by construction, while the
//! process-level number is page-granular and allocator-noisy at these
//! circuit sizes.

use semsim::core::resource::ResourceEstimate;
use semsim::logic::{elaborate, SetLogicParams};
use semsim::netlist::{CircuitFile, LogicFile};

fn assert_within_20pct(name: &str, predicted: &ResourceEstimate, measured: &ResourceEstimate) {
    let (p, m) = (
        predicted.total_bytes() as f64,
        measured.total_bytes() as f64,
    );
    assert!(
        (p - m).abs() <= 0.2 * m,
        "{name}: predicted {p} vs measured {m} drifts more than 20%"
    );
}

#[test]
fn predict_within_20pct_on_circuit_examples() {
    for name in ["set_sweep.cir", "sset.cir"] {
        let source = std::fs::read_to_string(format!("examples/netlists/{name}"))
            .expect("example netlist must exist");
        let file = CircuitFile::parse(&source).expect("example must parse");
        let predicted = file.resource_estimate();
        let circuit = file.compile().expect("example must compile").circuit;
        let measured = ResourceEstimate::measured(&circuit);
        assert_eq!(predicted.islands, measured.islands, "{name}");
        assert_eq!(predicted.leads, measured.leads, "{name}");
        assert_eq!(predicted.junctions, measured.junctions, "{name}");
        // Dense blocks depend only on counts: exact.
        assert_eq!(
            predicted.dense_matrix_bytes, measured.dense_matrix_bytes,
            "{name}"
        );
        assert_within_20pct(name, &predicted, &measured);
    }
}

#[test]
fn predict_within_20pct_on_logic_example() {
    let source = std::fs::read_to_string("examples/netlists/half_adder.logic")
        .expect("example netlist must exist");
    let logic = LogicFile::parse(&source).expect("example must parse");
    let elab = elaborate(&logic, &SetLogicParams::default()).expect("example must elaborate");
    let c = &elab.circuit;
    let predicted = ResourceEstimate::predict(c.num_islands(), c.num_leads(), c.num_junctions());
    let measured = ResourceEstimate::measured(c);
    assert_within_20pct("half_adder.logic", &predicted, &measured);
}
