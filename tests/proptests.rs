//! Property-style tests of the core invariants, spanning crates.
//! Plain seeded loops over randomly generated inputs.

use semsim::core::circuit::{Circuit, CircuitBuilder, NodeId};
use semsim::core::constants::K_B;
use semsim::core::energy::{delta_w, total_free_energy, CircuitState};
use semsim::core::fenwick::FenwickTree;
use semsim::core::rates::orthodox_rate;
use semsim::core::rng::Rng;
use semsim::linalg::Matrix;
use semsim::quad::{occupancy_factor, LookupTable};

const CASES: usize = 64;

fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

/// A random well-posed ladder circuit: a chain of 1–6 islands between
/// two leads with random junction capacitances, random gate couplings
/// and random background charges.
fn arb_circuit(rng: &mut Rng) -> (Circuit, Vec<NodeId>) {
    let n = rng.gen_range(1..7);
    let caps: Vec<f64> = (0..12).map(|_| uniform(rng, 0.2, 5.0)).collect();
    let charges: Vec<f64> = (0..6).map(|_| uniform(rng, -0.9, 0.9)).collect();
    let bias = uniform(rng, -30e-3, 30e-3);

    let mut b = CircuitBuilder::new();
    let lead = b.add_lead(bias);
    let mut nodes = Vec::new();
    let mut prev = lead;
    for i in 0..n {
        let isl = b.add_island_with_charge(charges[i]);
        b.add_junction(prev, isl, 1e6, caps[2 * i] * 1e-18).unwrap();
        nodes.push(isl);
        prev = isl;
    }
    b.add_junction(prev, NodeId::GROUND, 1e6, caps[1] * 1e-18)
        .unwrap();
    // A gate on the first island keeps every circuit non-trivial.
    let gate = b.add_lead(5e-3);
    b.add_capacitor(gate, nodes[0], caps[2] * 1e-18).unwrap();
    (b.build().unwrap(), nodes)
}

#[test]
fn capacitance_inverse_is_consistent() {
    let mut rng = Rng::seed_from_u64(100);
    for case in 0..CASES {
        let (circuit, _nodes) = arb_circuit(&mut rng);
        let c = circuit.capacitance_matrix();
        let inv = circuit.inverse_capacitance();
        let id = c.mul(inv).unwrap();
        let n = c.rows();
        for r in 0..n {
            for col in 0..n {
                let want = if r == col { 1.0 } else { 0.0 };
                assert!(
                    (id.get(r, col) - want).abs() < 1e-9,
                    "case {case} ({r},{col})"
                );
            }
        }
        assert!(
            inv.is_symmetric(1e-6 * inv.get(0, 0).abs()),
            "case {case}: C^-1 not symmetric"
        );
    }
}

#[test]
fn delta_w_is_the_discrete_free_energy_gradient() {
    let mut rng = Rng::seed_from_u64(101);
    for case in 0..CASES {
        let (circuit, nodes) = arb_circuit(&mut rng);
        let n_transfers = rng.gen_range(1..5);
        let mut state = CircuitState::new(&circuit);
        state.recompute_potentials(&circuit);
        for _ in 0..n_transfers {
            let from = nodes[rng.gen_range(0..nodes.len())];
            let to = nodes[rng.gen_range(0..nodes.len())];
            if from == to {
                continue;
            }
            let f0 = total_free_energy(&circuit, &state);
            let dw = delta_w(&circuit, &state, from, to, 1);
            state.apply_transfer(&circuit, from, to, 1);
            state.recompute_potentials(&circuit);
            let f1 = total_free_energy(&circuit, &state);
            let scale = dw.abs().max(f0.abs()).max(1e-25);
            assert!(((f1 - f0) - dw).abs() < 1e-9 * scale, "case {case}");
        }
    }
}

#[test]
fn forward_backward_deltas_cancel() {
    let mut rng = Rng::seed_from_u64(102);
    for case in 0..CASES {
        let (circuit, nodes) = arb_circuit(&mut rng);
        let mut state = CircuitState::new(&circuit);
        state.recompute_potentials(&circuit);
        let from = nodes[0];
        let to = NodeId::GROUND;
        let fw = delta_w(&circuit, &state, from, to, 1);
        state.apply_transfer(&circuit, from, to, 1);
        state.recompute_potentials(&circuit);
        let bw = delta_w(&circuit, &state, to, from, 1);
        let scale = fw.abs().max(1e-25);
        assert!((fw + bw).abs() < 1e-9 * scale, "case {case}");
    }
}

#[test]
fn orthodox_rate_detailed_balance() {
    let mut rng = Rng::seed_from_u64(103);
    for case in 0..CASES {
        let dw_mev = uniform(&mut rng, 0.01, 10.0);
        let temp = uniform(&mut rng, 0.05, 20.0);
        let dw = dw_mev * 1e-3 * semsim::core::constants::E_CHARGE;
        let kt = K_B * temp;
        let fw = orthodox_rate(dw, kt, 1e6);
        let bw = orthodox_rate(-dw, kt, 1e6);
        // Γ(ΔW)/Γ(−ΔW) = exp(−ΔW/kT); compare in log space to tolerate
        // underflow at large ΔW/kT.
        if fw > 0.0 && bw > 0.0 {
            let lhs = (fw / bw).ln();
            let rhs = -dw / kt;
            assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0), "case {case}");
        }
    }
}

#[test]
fn occupancy_factor_identity() {
    let mut rng = Rng::seed_from_u64(104);
    for case in 0..CASES {
        let x = uniform(&mut rng, -500.0, 500.0);
        // f(−x) − f(x) = x, everywhere.
        let lhs = occupancy_factor(-x) - occupancy_factor(x);
        assert!((lhs - x).abs() < 1e-9 * x.abs().max(1.0), "case {case}");
    }
}

#[test]
fn fenwick_matches_naive_prefix_sums() {
    let mut rng = Rng::seed_from_u64(105);
    for case in 0..CASES {
        let len = rng.gen_range(1..64);
        let weights: Vec<f64> = (0..len).map(|_| uniform(&mut rng, 0.0, 10.0)).collect();
        let u = rng.f64();
        let mut t = FenwickTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            assert!((t.prefix_sum(i) - acc).abs() < 1e-9, "case {case}");
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            let idx = t.sample(u).unwrap();
            assert!(weights[idx] > 0.0, "case {case}: sampled zero-weight slot");
            // The sampled index must bracket u·total.
            let before: f64 = weights[..idx].iter().sum();
            let target = u * total;
            assert!(before <= target + 1e-9, "case {case}");
            assert!(before + weights[idx] >= target - 1e-9, "case {case}");
        } else {
            assert!(t.sample(u).is_none(), "case {case}");
        }
    }
}

#[test]
fn lookup_table_brackets_and_clamps() {
    let mut rng = Rng::seed_from_u64(106);
    for case in 0..CASES {
        let len = rng.gen_range(2..32);
        let ys: Vec<f64> = (0..len).map(|_| uniform(&mut rng, -5.0, 5.0)).collect();
        let x = uniform(&mut rng, -2.0, 34.0);
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let t = LookupTable::new(xs, ys.clone()).unwrap();
        let v = t.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Linear interpolation never leaves the sample hull.
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "case {case}");
    }
}

#[test]
fn lu_solves_random_dominant_systems() {
    let mut rng = Rng::seed_from_u64(107);
    for case in 0..CASES {
        let mut m = Matrix::zeros(5, 5);
        for r in 0..5 {
            let mut diag = 1.0;
            for c in 0..5 {
                if r != c {
                    let v = uniform(&mut rng, -1.0, 1.0);
                    m.set(r, c, v);
                    diag += v.abs();
                }
            }
            m.set(r, r, diag);
        }
        let rhs: Vec<f64> = (0..5).map(|_| uniform(&mut rng, -10.0, 10.0)).collect();
        let x = m.solve(&rhs).unwrap();
        let back = m.mul_vec(&x).unwrap();
        for (a, b) in back.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-8, "case {case}");
        }
    }
}

#[test]
fn synthesized_netlists_are_well_formed() {
    let mut rng = Rng::seed_from_u64(108);
    for case in 0..CASES {
        let sets = rng.gen_range(1..60);
        let inputs = rng.gen_range(1..9);
        let seed = rng.next_u64() % 1000;
        let target = 2 * sets; // even
        let logic = semsim::logic::synthesize(target, inputs, seed);
        let total: usize = logic
            .gates
            .iter()
            .map(semsim::netlist::gate_set_count)
            .sum();
        assert_eq!(total, target, "case {case}");
        // Evaluation must be defined for every vector (topological order,
        // no undriven signals).
        let vector: Vec<bool> = (0..inputs).map(|i| i % 2 == 0).collect();
        let env = logic.evaluate(&vector);
        for o in &logic.outputs {
            assert!(env.contains_key(o.as_str()), "case {case}");
        }
    }
}

#[test]
fn circuit_file_roundtrip() {
    let mut rng = Rng::seed_from_u64(109);
    for case in 0..CASES {
        let n_junc = rng.gen_range(1..6);
        let g = uniform(&mut rng, 1e-7, 1e-5);
        let cap = uniform(&mut rng, 0.1, 10.0);
        let temp = uniform(&mut rng, 0.0, 20.0);
        let mut text = String::new();
        for j in 0..n_junc {
            text.push_str(&format!(
                "junc {} {} {} {:e} {:e}\n",
                j + 1,
                j,
                j + 1,
                g,
                cap * 1e-18
            ));
        }
        text.push_str("vdc 1 0.001\n");
        text.push_str(&format!("temp {temp}\n"));
        let parsed = semsim::netlist::CircuitFile::parse(&text).unwrap();
        let reparsed = semsim::netlist::CircuitFile::parse(&parsed.to_input_format()).unwrap();
        assert_eq!(parsed, reparsed, "case {case}");
    }
}

/// Satellite property: any random circuit that passes the static checks
/// must have a non-singular capacitance matrix (the SC002 guarantee).
#[test]
fn check_passing_circuits_have_invertible_cmatrix() {
    let mut rng = Rng::seed_from_u64(110);
    let mut passed = 0usize;
    for _case in 0..CASES {
        let n = rng.gen_range(1..6);
        // Random circuit that may or may not be well-formed: each island
        // connects to the previous node with probability 3/4, otherwise
        // it is left capacitively floating (a deliberate defect).
        let mut model = semsim::check::CircuitModel::new();
        let mut b = CircuitBuilder::new();
        let lead = b.add_lead(1e-3);
        let m_lead = model.add_lead();
        let mut prev = (lead, m_lead);
        let mut islands = Vec::new();
        let mut connected = vec![false; n];
        for (i, conn) in connected.iter_mut().enumerate() {
            let isl = b.add_island_with_charge(0.0);
            let m_isl = model.add_island();
            if rng.gen_bool(0.75) || i == 0 {
                let c = uniform(&mut rng, 0.5, 3.0) * 1e-18;
                b.add_junction(prev.0, isl, 1e6, c).unwrap();
                model.add_junction(prev.1, m_isl, 1e6, c);
                *conn = true;
            }
            islands.push((isl, m_isl));
            prev = (isl, m_isl);
        }
        let diags = semsim::check::check_circuit(&model);
        let built = b.build();
        if diags.has_errors() {
            // Static analysis predicted failure. The builder only agrees
            // when a pivot cancels to exactly zero; rounding can sneak a
            // singular island *cluster* past the LU — which is precisely
            // the gap SC001 closes. Either way the matrix is unusable.
            if diags
                .iter()
                .any(|d| d.code == semsim::check::DiagCode::FloatingIsland)
            {
                if let Ok(circuit) = built {
                    let cond = circuit
                        .capacitance_matrix()
                        .condition_estimate()
                        .unwrap_or(f64::INFINITY);
                    assert!(
                        cond > semsim::check::CONDITION_THRESHOLD,
                        "SC001 circuit built with usable matrix (κ₁ ≈ {cond:.2e})"
                    );
                }
            }
        } else {
            let circuit = built.expect("check-passing circuit failed to build");
            // Invertibility: C · C⁻¹ = I to tight tolerance.
            let c = circuit.capacitance_matrix();
            let id = c.mul(circuit.inverse_capacitance()).unwrap();
            for r in 0..c.rows() {
                assert!((id.get(r, r) - 1.0).abs() < 1e-9);
            }
            passed += 1;
        }
    }
    assert!(passed > 0, "no generated circuit ever passed the checks");
}
