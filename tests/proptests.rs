//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;
use semsim::core::circuit::{Circuit, CircuitBuilder, NodeId};
use semsim::core::constants::K_B;
use semsim::core::energy::{delta_w, total_free_energy, CircuitState};
use semsim::core::fenwick::FenwickTree;
use semsim::core::rates::orthodox_rate;
use semsim::linalg::Matrix;
use semsim::quad::{occupancy_factor, LookupTable};

/// A random well-posed ladder circuit: a chain of 1–6 islands between
/// two leads with random junction capacitances, random gate couplings
/// and random background charges.
fn arb_circuit() -> impl Strategy<Value = (Circuit, Vec<NodeId>)> {
    (
        1usize..=6,
        prop::collection::vec(0.2f64..5.0, 12),
        prop::collection::vec(-0.9f64..0.9, 6),
        -30e-3f64..30e-3,
    )
        .prop_map(|(n, caps, charges, bias)| {
            let mut b = CircuitBuilder::new();
            let lead = b.add_lead(bias);
            let mut nodes = Vec::new();
            let mut prev = lead;
            for i in 0..n {
                let isl = b.add_island_with_charge(charges[i]);
                b.add_junction(prev, isl, 1e6, caps[2 * i] * 1e-18).unwrap();
                nodes.push(isl);
                prev = isl;
            }
            b.add_junction(prev, NodeId::GROUND, 1e6, caps[1] * 1e-18)
                .unwrap();
            // A gate on the first island keeps every circuit non-trivial.
            let gate = b.add_lead(5e-3);
            b.add_capacitor(gate, nodes[0], caps[2] * 1e-18).unwrap();
            (b.build().unwrap(), nodes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacitance_inverse_is_consistent((circuit, _nodes) in arb_circuit()) {
        let c = circuit.capacitance_matrix();
        let inv = circuit.inverse_capacitance();
        let id = c.mul(inv).unwrap();
        let n = c.rows();
        for r in 0..n {
            for col in 0..n {
                let want = if r == col { 1.0 } else { 0.0 };
                prop_assert!((id.get(r, col) - want).abs() < 1e-9);
            }
        }
        prop_assert!(inv.is_symmetric(1e-6 * inv.get(0, 0).abs()));
    }

    #[test]
    fn delta_w_is_the_discrete_free_energy_gradient(
        (circuit, nodes) in arb_circuit(),
        transfers in prop::collection::vec((0usize..6, 0usize..6), 1..5),
    ) {
        let mut state = CircuitState::new(&circuit);
        state.recompute_potentials(&circuit);
        for (a, b) in transfers {
            let from = nodes[a % nodes.len()];
            let to = nodes[b % nodes.len()];
            if from == to { continue; }
            let f0 = total_free_energy(&circuit, &state);
            let dw = delta_w(&circuit, &state, from, to, 1);
            state.apply_transfer(&circuit, from, to, 1);
            state.recompute_potentials(&circuit);
            let f1 = total_free_energy(&circuit, &state);
            let scale = dw.abs().max(f0.abs()).max(1e-25);
            prop_assert!(((f1 - f0) - dw).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn forward_backward_deltas_cancel((circuit, nodes) in arb_circuit()) {
        let mut state = CircuitState::new(&circuit);
        state.recompute_potentials(&circuit);
        let from = nodes[0];
        let to = NodeId::GROUND;
        let fw = delta_w(&circuit, &state, from, to, 1);
        state.apply_transfer(&circuit, from, to, 1);
        state.recompute_potentials(&circuit);
        let bw = delta_w(&circuit, &state, to, from, 1);
        let scale = fw.abs().max(1e-25);
        prop_assert!((fw + bw).abs() < 1e-9 * scale);
    }

    #[test]
    fn orthodox_rate_detailed_balance(
        dw_mev in 0.01f64..10.0,
        temp in 0.05f64..20.0,
    ) {
        let dw = dw_mev * 1e-3 * semsim::core::constants::E_CHARGE;
        let kt = K_B * temp;
        let fw = orthodox_rate(dw, kt, 1e6);
        let bw = orthodox_rate(-dw, kt, 1e6);
        // Γ(ΔW)/Γ(−ΔW) = exp(−ΔW/kT); compare in log space to tolerate
        // underflow at large ΔW/kT.
        if fw > 0.0 && bw > 0.0 {
            let lhs = (fw / bw).ln();
            let rhs = -dw / kt;
            prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
        }
    }

    #[test]
    fn occupancy_factor_identity(x in -500.0f64..500.0) {
        // f(−x) − f(x) = x, everywhere.
        let lhs = occupancy_factor(-x) - occupancy_factor(x);
        prop_assert!((lhs - x).abs() < 1e-9 * x.abs().max(1.0));
    }

    #[test]
    fn fenwick_matches_naive_prefix_sums(
        weights in prop::collection::vec(0.0f64..10.0, 1..64),
        u in 0.0f64..1.0,
    ) {
        let mut t = FenwickTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            prop_assert!((t.prefix_sum(i) - acc).abs() < 1e-9);
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            let idx = t.sample(u).unwrap();
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight slot");
            // The sampled index must bracket u·total.
            let before: f64 = weights[..idx].iter().sum();
            let target = u * total;
            prop_assert!(before <= target + 1e-9);
            prop_assert!(before + weights[idx] >= target - 1e-9);
        } else {
            prop_assert!(t.sample(u).is_none());
        }
    }

    #[test]
    fn lookup_table_brackets_and_clamps(
        ys in prop::collection::vec(-5.0f64..5.0, 2..32),
        x in -2.0f64..34.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let t = LookupTable::new(xs, ys.clone()).unwrap();
        let v = t.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Linear interpolation never leaves the sample hull.
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn lu_solves_random_dominant_systems(
        seedvals in prop::collection::vec(-1.0f64..1.0, 25),
        rhs in prop::collection::vec(-10.0f64..10.0, 5),
    ) {
        let mut m = Matrix::zeros(5, 5);
        for r in 0..5 {
            let mut diag = 1.0;
            for c in 0..5 {
                if r != c {
                    let v = seedvals[r * 5 + c];
                    m.set(r, c, v);
                    diag += v.abs();
                }
            }
            m.set(r, r, diag);
        }
        let x = m.solve(&rhs).unwrap();
        let back = m.mul_vec(&x).unwrap();
        for (a, b) in back.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn synthesized_netlists_are_well_formed(
        sets in 1usize..60,
        inputs in 1usize..9,
        seed in 0u64..1000,
    ) {
        let target = 2 * sets; // even
        let logic = semsim::logic::synthesize(target, inputs, seed);
        let total: usize = logic.gates.iter().map(semsim::netlist::gate_set_count).sum();
        prop_assert_eq!(total, target);
        // Evaluation must be defined for every vector (topological order,
        // no undriven signals).
        let vector: Vec<bool> = (0..inputs).map(|i| i % 2 == 0).collect();
        let env = logic.evaluate(&vector);
        for o in &logic.outputs {
            prop_assert!(env.contains_key(o.as_str()));
        }
    }

    #[test]
    fn circuit_file_roundtrip(
        n_junc in 1usize..6,
        g in 1e-7f64..1e-5,
        cap in 0.1f64..10.0,
        temp in 0.0f64..20.0,
    ) {
        let mut text = String::new();
        for j in 0..n_junc {
            text.push_str(&format!("junc {} {} {} {:e} {:e}\n", j + 1, j, j + 1, g, cap * 1e-18));
        }
        text.push_str("vdc 1 0.001\n");
        text.push_str(&format!("temp {temp}\n"));
        let parsed = semsim::netlist::CircuitFile::parse(&text).unwrap();
        let reparsed = semsim::netlist::CircuitFile::parse(&parsed.to_input_format()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
