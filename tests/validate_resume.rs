//! Kill-and-resume end-to-end test for `semsim validate`: a journaled
//! run whose journal is truncated mid-point (simulating a crash during
//! a replica write) must resume through the SEMSIMJL machinery and
//! print a **byte-identical** table — restoration counts go to stderr
//! only. This drives the real shipped binary, not in-process calls.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run_validate(journal: &PathBuf, resume: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_semsim"));
    cmd.args(["validate", "--quick", "--journal"]).arg(journal);
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("spawn semsim validate")
}

#[test]
fn truncated_journal_resumes_byte_identical() {
    let dir = std::env::temp_dir().join(format!("semsim-validate-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let journal = dir.join("v.jl");

    let full = run_validate(&journal, false);
    assert!(
        full.status.success(),
        "baseline run failed:\n{}",
        String::from_utf8_lossy(&full.stderr)
    );

    // Simulate a crash mid-write: keep only 60% of the first point's
    // journal. The valid record prefix must be restored; the corrupt
    // tail discarded and its replicas recomputed.
    let p0 = dir.join("v.jl.p00");
    let bytes = std::fs::read(&p0).expect("journal for point 0 exists");
    assert!(bytes.len() > 100, "journal too small to truncate sensibly");
    std::fs::write(&p0, &bytes[..bytes.len() * 6 / 10]).expect("truncate journal");

    let resumed = run_validate(&journal, true);
    assert!(
        resumed.status.success(),
        "resumed run failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&full.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed table must be byte-identical to the uninterrupted run"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("restored from journal"),
        "resume must report restored replicas on stderr: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
