//! Golden-file tests for the static netlist checks: one malformed
//! netlist per diagnostic code under `tests/fixtures/lint/`, each
//! asserting the expected code, severity, and line span.

use semsim::check::{DiagCode, Diagnostics, Severity};
use semsim::netlist::{lint_circuit, lint_logic, CircuitFile, RawLogicFile};

fn fixture(name: &str) -> (String, Diagnostics) {
    let path = format!("{}/tests/fixtures/lint/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let diags = if name.ends_with(".logic") {
        lint_logic(&RawLogicFile::parse(&source).expect("fixture must parse"))
    } else {
        lint_circuit(&CircuitFile::parse(&source).expect("fixture must parse"))
    };
    (source, diags)
}

/// Asserts that the fixture reports `code` at `line` with `severity`,
/// and that the rendered output carries the `SCnnn` tag and the line.
fn assert_diag(name: &str, code: DiagCode, severity: Severity, line: usize) {
    let (source, diags) = fixture(name);
    let d = diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{name}: no {} finding in {diags:?}", code.code()));
    assert_eq!(d.severity, severity, "{name}: severity of {}", code.code());
    assert_eq!(d.span.line, line, "{name}: line of {}", code.code());
    let rendered = diags.render(name, Some(&source));
    let tag = match severity {
        Severity::Error => format!("error[{}]", code.code()),
        Severity::Warning => format!("warning[{}]", code.code()),
    };
    assert!(
        rendered.contains(&tag),
        "{name}: rendered output lacks {tag}:\n{rendered}"
    );
    assert!(
        rendered.contains(&format!("{name}:{line}")),
        "{name}: rendered output lacks the {line} span:\n{rendered}"
    );
}

#[test]
fn sc001_floating_island() {
    assert_diag(
        "sc001_floating_island.cir",
        DiagCode::FloatingIsland,
        Severity::Error,
        3,
    );
}

#[test]
fn sc002_singular_cmatrix() {
    assert_diag(
        "sc002_singular_cmatrix.cir",
        DiagCode::SingularCapacitanceMatrix,
        Severity::Error,
        2,
    );
}

#[test]
fn sc003_ill_conditioned() {
    assert_diag(
        "sc003_ill_conditioned.cir",
        DiagCode::IllConditionedCMatrix,
        Severity::Warning,
        2,
    );
}

#[test]
fn sc004_overflowed_parameter() {
    assert_diag(
        "sc004_overflowed_parameter.cir",
        DiagCode::NonPositiveParameter,
        Severity::Error,
        1,
    );
}

#[test]
fn sc005_unreachable_island() {
    assert_diag(
        "sc005_unreachable_island.cir",
        DiagCode::UnreachableNode,
        Severity::Warning,
        3,
    );
}

#[test]
fn sc006_combinational_loop() {
    assert_diag(
        "sc006_combinational_loop.logic",
        DiagCode::CombinationalLoop,
        Severity::Error,
        3,
    );
}

#[test]
fn sc007_undriven_input() {
    assert_diag(
        "sc007_undriven_input.logic",
        DiagCode::UndrivenInput,
        Severity::Error,
        3,
    );
}

#[test]
fn sc007_unused_output() {
    assert_diag(
        "sc007_unused_output.logic",
        DiagCode::UnusedOutput,
        Severity::Warning,
        5,
    );
}

#[test]
fn sc008_symm_without_source() {
    assert_diag(
        "sc008_symm_without_source.cir",
        DiagCode::AsymmetricSymmJunction,
        Severity::Error,
        4,
    );
}

#[test]
fn sc009_temp_above_tc() {
    assert_diag(
        "sc009_temp_above_tc.cir",
        DiagCode::SuperconductingGapMismatch,
        Severity::Error,
        7,
    );
}

#[test]
fn sc010_runaway_sweep() {
    assert_diag(
        "sc010_runaway_sweep.cir",
        DiagCode::RunawaySweep,
        Severity::Error,
        8,
    );
}

#[test]
fn sc010_wrong_sign_sweep() {
    assert_diag(
        "sc010_wrong_sign_sweep.cir",
        DiagCode::RunawaySweep,
        Severity::Warning,
        8,
    );
}

#[test]
fn sc011_degenerate_ensemble() {
    assert_diag(
        "sc011_degenerate_ensemble.cir",
        DiagCode::DegenerateEnsemble,
        Severity::Warning,
        8,
    );
}

#[test]
fn sc012_unjournaled_long_sweep() {
    assert_diag(
        "sc012_unjournaled_long_sweep.cir",
        DiagCode::UnjournaledLongSweep,
        Severity::Warning,
        8,
    );
}

#[test]
fn sc013_non_uniform_grid() {
    assert_diag(
        "sc013_non_uniform_grid.cir",
        DiagCode::NonUniformSweepGrid,
        Severity::Warning,
        8,
    );
}

#[test]
fn sc014_dead_sweep() {
    assert_diag(
        "sc014_dead_sweep.cir",
        DiagCode::DeadSweep,
        Severity::Warning,
        8,
    );
}

#[test]
fn sc014_dead_input() {
    assert_diag(
        "sc014_dead_input.logic",
        DiagCode::DeadSweep,
        Severity::Warning,
        1,
    );
}

#[test]
fn sc015_constant_sweep() {
    assert_diag(
        "sc015_constant_sweep.cir",
        DiagCode::ConstantFoldableSweep,
        Severity::Warning,
        8,
    );
}

#[test]
fn sc015_shadowed_jump() {
    assert_diag(
        "sc015_shadowed_jump.cir",
        DiagCode::ConstantFoldableSweep,
        Severity::Warning,
        6,
    );
}

#[test]
fn sc016_constant_probe() {
    assert_diag(
        "sc016_constant_probe.cir",
        DiagCode::ConstantProbe,
        Severity::Warning,
        5,
    );
}

#[test]
fn sc017_theta_regime() {
    assert_diag(
        "sc017_theta_regime.cir",
        DiagCode::AdaptiveThresholdRegime,
        Severity::Warning,
        5,
    );
}

#[test]
fn sc018_conflicting_jumps() {
    assert_diag(
        "sc018_conflicting_jumps.cir",
        DiagCode::ConflictingStimuli,
        Severity::Error,
        6,
    );
}

/// The `clean_*` fixtures exercise the dataflow directives (`jump`,
/// `probe`, `adaptive`) in configurations the checks must accept.
#[test]
fn clean_fixtures_are_clean() {
    for name in ["clean_jump_probe.cir", "clean_adaptive_ok.cir"] {
        let (_, diags) = fixture(name);
        assert!(diags.is_empty(), "{name} is not clean: {diags:?}");
    }
}

/// A netlist with several findings on scattered lines: the diagnostics
/// come out sorted by (line, code) regardless of check-pass order, and
/// re-linting renders byte-identical output (the golden ordering
/// contract CI and editors rely on).
#[test]
fn diagnostics_are_ordered_and_byte_stable() {
    let source = "\
junc 1 1 3 1e-6 1e-18
junc 2 3 0 1e-6 1e-18
junc 3 2 3 1e-6 1e-18
vdc 1 0.1
vdc 2 0.0
temp 0.1
adaptive 0.3 1000
probe 2 100
jump 1 1e-9 0.05
jump 1 1e-9 0.05
";
    let lint = || lint_circuit(&CircuitFile::parse(source).expect("parses"));
    let diags = lint();
    let found: Vec<(usize, &str)> = diags.iter().map(|d| (d.span.line, d.code.code())).collect();
    assert_eq!(
        found,
        vec![(7, "SC017"), (8, "SC016"), (10, "SC015")],
        "diagnostics must be sorted by (line, code)"
    );
    assert_eq!(
        diags.render("ordered.cir", Some(source)),
        lint().render("ordered.cir", Some(source)),
        "re-linting must render byte-identical output"
    );
}

/// In-source allow pragmas silence findings at the golden level too: a
/// file-wide `*` pragma and a line-scoped trailing pragma.
#[test]
fn allow_pragmas_silence_fixture_findings() {
    let base = std::fs::read_to_string(format!(
        "{}/tests/fixtures/lint/sc015_constant_sweep.cir",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let file_wide = format!("* lint: allow SC015\n{base}");
    let diags = lint_circuit(&CircuitFile::parse(&file_wide).expect("parses"));
    assert!(diags.is_empty(), "file-wide pragma failed: {diags:?}");
    let line_scoped = base.replace(
        "sweep 2 -0.02 0.002",
        "sweep 2 -0.02 0.002 # lint: allow SC015",
    );
    let diags = lint_circuit(&CircuitFile::parse(&line_scoped).expect("parses"));
    assert!(diags.is_empty(), "line-scoped pragma failed: {diags:?}");
}

/// The example netlists shipped with the crate must lint clean — they
/// are what `semsim lint` is demonstrated on in the README.
#[test]
fn shipped_examples_are_clean() {
    let dir = format!("{}/examples/netlists", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/netlists exists") {
        let path = entry.expect("readable dir entry").path();
        let name = path.display().to_string();
        let source = std::fs::read_to_string(&path).expect("readable example");
        let diags = if name.ends_with(".logic") {
            lint_logic(&RawLogicFile::parse(&source).expect("example parses"))
        } else {
            lint_circuit(&CircuitFile::parse(&source).expect("example parses"))
        };
        assert!(diags.is_empty(), "{name} is not clean: {diags:?}");
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected at least 3 example netlists, found {checked}"
    );
}
