//! Cross-crate integration tests at the single-device level: the Monte
//! Carlo engine, the analytical SPICE model and textbook orthodox
//! theory must all agree on the paper's Fig. 1b transistor.

use semsim::core::circuit::{Circuit, CircuitBuilder, JunctionId};
use semsim::core::constants::E_CHARGE;
use semsim::core::engine::{linspace, sweep, RunLength, SimConfig, Simulation};
use semsim::spice::SetModel;

fn paper_set() -> (Circuit, JunctionId) {
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(0.0);
    let drn = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island();
    let j1 = b.add_junction(src, island, 1e6, 1e-18).unwrap();
    b.add_junction(island, drn, 1e6, 1e-18).unwrap();
    b.add_capacitor(gate, island, 3e-18).unwrap();
    (b.build().unwrap(), j1)
}

/// Runs the MC at a symmetric bias and gate voltage, returning the
/// time-averaged current.
fn mc_current(circuit: &Circuit, j1: JunctionId, vds: f64, vg: f64, temp: f64) -> f64 {
    let mut sim = Simulation::new(circuit, SimConfig::new(temp).with_seed(5)).unwrap();
    sim.set_lead_voltage(1, vds / 2.0).unwrap();
    sim.set_lead_voltage(2, -vds / 2.0).unwrap();
    sim.set_lead_voltage(3, vg).unwrap();
    match sim.run(RunLength::Events(40_000)) {
        Ok(r) => r.current(j1),
        Err(_) => 0.0,
    }
}

#[test]
fn blockade_width_matches_orthodox_threshold() {
    // At Vg = 0 and T → 0 the threshold is e/CΣ = 32 mV of total bias.
    let (c, j1) = paper_set();
    let below = mc_current(&c, j1, 28e-3, 0.0, 0.01);
    let above = mc_current(&c, j1, 36e-3, 0.0, 0.01);
    assert_eq!(below, 0.0, "conduction below threshold");
    assert!(above > 1e-10, "no conduction above threshold: {above}");
}

#[test]
fn gate_period_is_e_over_cg() {
    // Currents one full gate period apart (e/Cg ≈ 53.4 mV) match.
    let (c, j1) = paper_set();
    let period = E_CHARGE / 3e-18;
    let i1 = mc_current(&c, j1, 20e-3, 5e-3, 5.0);
    let i2 = mc_current(&c, j1, 20e-3, 5e-3 + period, 5.0);
    let rel = (i1 - i2).abs() / i1.abs();
    assert!(rel < 0.05, "{i1} vs {i2} ({rel:.3})");
}

#[test]
fn gate_degeneracy_lifts_blockade() {
    let (c, j1) = paper_set();
    let half = E_CHARGE / (2.0 * 3e-18); // e/2Cg ≈ 26.7 mV
    let blocked = mc_current(&c, j1, 10e-3, 0.0, 0.05);
    let open = mc_current(&c, j1, 10e-3, half, 0.05);
    assert!(
        open.abs() > 100.0 * blocked.abs().max(1e-16),
        "{blocked} vs {open}"
    );
}

#[test]
fn monte_carlo_matches_analytic_model_across_the_iv() {
    // The MC engine and the master-equation compact model are
    // independent implementations of the same first-order physics;
    // they must agree along the whole I–V at 5 K.
    let (c, j1) = paper_set();
    let model = SetModel::symmetric(1e6, 1e-18, 3e-18, 5.0);
    for vds in [8e-3, 16e-3, 24e-3, 32e-3, 40e-3] {
        let mc = mc_current(&c, j1, vds, 10e-3, 5.0);
        let me = model.drain_current(vds / 2.0, -vds / 2.0, 10e-3);
        let tol = 0.08 * me.abs().max(1e-12);
        assert!((mc - me).abs() < tol, "vds={vds}: MC {mc} vs ME {me}");
    }
}

#[test]
fn current_scale_matches_paper_fig1b() {
    // Fig. 1b's current axis tops out near ±10 nA at ±40 mV.
    let (c, j1) = paper_set();
    let i = mc_current(&c, j1, 40e-3, 30e-3, 5.0);
    assert!(i > 5e-9 && i < 15e-9, "{i}");
}

#[test]
fn sweep_is_antisymmetric_under_symmetric_bias() {
    let (c, j1) = paper_set();
    let cfg = SimConfig::new(5.0).with_seed(9);
    let biases = linspace(-30e-3, 30e-3, 7);
    let pts = sweep(&c, &cfg, j1, &biases, 2_000, 30_000, |sim, v| {
        sim.set_lead_voltage(1, v / 2.0)?;
        sim.set_lead_voltage(2, -v / 2.0)
    })
    .unwrap();
    for k in 0..3 {
        let a = pts[k].current;
        let b = pts[6 - k].current;
        let scale = a.abs().max(b.abs()).max(1e-13);
        assert!((a + b).abs() / scale < 0.15, "{a} vs {b}");
    }
}

#[test]
fn cotunneling_dominates_deep_blockade() {
    // With cotunneling on, blockade current is orders of magnitude
    // above the sequential-only result (which is exactly zero at low T).
    let (c, j1) = paper_set();
    let base = SimConfig::new(0.1).with_seed(3);
    let run = |cfg: SimConfig| {
        let mut sim = Simulation::new(&c, cfg).unwrap();
        sim.set_lead_voltage(1, 5e-3).unwrap();
        sim.set_lead_voltage(2, -5e-3).unwrap();
        match sim.run(RunLength::Events(20_000)) {
            Ok(r) => r.current(j1),
            Err(_) => 0.0,
        }
    };
    let sequential = run(base.clone());
    let with_cot = run(base.with_cotunneling(true));
    assert_eq!(sequential, 0.0);
    assert!(with_cot.abs() > 1e-16, "{with_cot}");
}
