//! Fault-injection tests (only built with `--features fault-inject`):
//! each scripted fault class must be caught by the specific recovery
//! path the runtime promises for it — NaN poison by the point-of-
//! production health guard, stale adaptive caches by the drift audit's
//! flush-and-tighten degradation, and a failed refresh by the guard
//! inside the resync itself.

#![cfg(feature = "fault-inject")]

use semsim::core::circuit::{Circuit, CircuitBuilder};
use semsim::core::engine::{RunLength, SimConfig, Simulation, SolverSpec};
use semsim::core::health::{FaultPlan, FaultStage, RunOutcome};
use semsim::core::CoreError;

/// A conducting SET biased at the charge degeneracy point: both
/// junctions tunnel at a healthy rate, so every fault site is hot.
fn conducting_set() -> Circuit {
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(20e-3);
    let drn = b.add_lead(-20e-3);
    let island = b.add_island_with_charge(0.5);
    b.add_junction(src, island, 1e6, 1e-18).unwrap();
    b.add_junction(island, drn, 1e6, 1e-18).unwrap();
    b.build().unwrap()
}

#[test]
fn poisoned_rate_is_caught_by_production_guard() {
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, SimConfig::new(5.0).with_seed(7)).unwrap();
    sim.inject_faults(FaultPlan::new().poison_rate(50, 0));
    let err = sim.run(RunLength::Events(5_000)).unwrap_err();
    match err {
        CoreError::NumericalFault {
            stage,
            junction,
            value,
        } => {
            assert_eq!(stage, FaultStage::TunnelRate);
            assert_eq!(junction, Some(0));
            assert!(value.is_nan(), "guard saw {value}, expected NaN");
        }
        other => panic!("expected NumericalFault, got {other:?}"),
    }
    // The fault surfaced promptly: the non-adaptive solver rewrites
    // every rate each event, so the poison cannot hide past the event
    // after it was armed.
    assert!(sim.events() >= 50 && sim.events() <= 52, "{}", sim.events());
}

#[test]
fn poisoned_rate_is_caught_under_adaptive_solver_too() {
    let cfg = SimConfig::new(5.0)
        .with_seed(7)
        .with_solver(SolverSpec::Adaptive {
            threshold: 0.05,
            refresh_interval: 2_000,
        });
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().poison_rate(50, 1));
    let err = sim.run(RunLength::Events(5_000)).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::NumericalFault {
                stage: FaultStage::TunnelRate,
                junction: Some(1),
                ..
            }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn corrupted_cache_is_caught_by_drift_audit() {
    // Silence junction 0's testing gate (cached |ΔW'| scaled by 1e6) so
    // its rates go stale while the island charge keeps toggling. The
    // periodic drift audit must notice, flush the caches, tighten θ,
    // and let the run complete cleanly.
    let theta = 0.05;
    let cfg = SimConfig::new(5.0)
        .with_seed(11)
        .with_solver(SolverSpec::Adaptive {
            threshold: theta,
            refresh_interval: u64::MAX, // no periodic refresh to mask the fault
        })
        .with_audit_interval(100)
        .with_drift_tolerance(0.05);
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().corrupt_cache(100, 0, 1e6));
    let record = sim.run(RunLength::Events(4_000)).unwrap();

    assert_eq!(record.outcome, RunOutcome::Completed);
    let report = sim.health_report();
    assert!(report.audits > 0, "no audits ran");
    assert!(
        !report.degradations.is_empty(),
        "drift audit never fired a degradation (worst drift {:.3e})",
        report.worst_drift
    );
    let d = &report.degradations[0];
    assert!(d.event >= 100, "degradation before the fault: {d:?}");
    assert!(
        d.drift > 0.05,
        "recorded drift {:.3e} below tolerance",
        d.drift
    );
    // Graceful degradation tightened the threshold below the configured
    // value (θ halves on every failed audit).
    let after = d.threshold_after.expect("adaptive run records θ");
    assert!(after < theta, "θ not tightened: {after}");
    // The degradations also ride along on the run's record.
    assert_eq!(record.degradations.len(), report.degradations.len());
    // After the flush the caches are sound again: a fresh audit-heavy
    // stretch runs clean.
    let before = sim.health_report().degradations.len();
    sim.run(RunLength::Events(1_000)).unwrap();
    assert_eq!(
        sim.health_report().degradations.len(),
        before,
        "degradations kept firing after the recovery flush"
    );
}

#[test]
fn corrupted_cache_is_a_noop_for_nonadaptive_solver() {
    // The non-adaptive solver holds no long-lived cache; the corruption
    // hook must not disturb it.
    let cfg = SimConfig::new(5.0).with_seed(3).with_audit_interval(200);
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().corrupt_cache(100, 0, 1e6));
    let record = sim.run(RunLength::Events(2_000)).unwrap();
    assert_eq!(record.outcome, RunOutcome::Completed);
    let report = sim.health_report();
    assert!(report.audits > 0);
    assert!(report.degradations.is_empty(), "{report:?}");
    assert!(report.worst_drift < 1e-9, "{:.3e}", report.worst_drift);
}

#[test]
fn failed_refresh_surfaces_numerical_fault() {
    // FailRefresh forces an immediate full resync with a poisoned rate:
    // the guard inside the refresh path itself must reject it rather
    // than let a NaN enter the rate table.
    let cfg = SimConfig::new(5.0)
        .with_seed(5)
        .with_solver(SolverSpec::Adaptive {
            threshold: 0.05,
            refresh_interval: 2_000,
        });
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().fail_refresh(75, 0));
    let err = sim.run(RunLength::Events(5_000)).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::NumericalFault {
                stage: FaultStage::TunnelRate,
                junction: Some(0),
                ..
            }
        ),
        "unexpected error: {err:?}"
    );
    // The failure is reported at the refresh, not deferred: the rate
    // table was never contaminated with the poisoned value.
    assert!(sim.events() >= 75 && sim.events() <= 77, "{}", sim.events());
}
