//! Fault-injection tests (only built with `--features fault-inject`):
//! each scripted fault class must be caught by the specific recovery
//! path the runtime promises for it — NaN poison by the point-of-
//! production health guard, stale adaptive caches by the drift audit's
//! flush-and-tighten degradation, and a failed refresh by the guard
//! inside the resync itself.

#![cfg(feature = "fault-inject")]

use semsim::core::batch::{
    batch_sweep, BatchFaultPlan, BatchOpts, BatchReport, PointStatus, RecoveryAction, RetryPolicy,
};
use semsim::core::circuit::{Circuit, CircuitBuilder};
use semsim::core::engine::{RunLength, SimConfig, Simulation, SolverSpec, SweepPoint};
use semsim::core::health::{FaultPlan, FaultStage, RunOutcome};
use semsim::core::journal::corrupt_journal_tail;
use semsim::core::par::ParOpts;
use semsim::core::CoreError;

/// A conducting SET biased at the charge degeneracy point: both
/// junctions tunnel at a healthy rate, so every fault site is hot.
fn conducting_set() -> Circuit {
    let mut b = CircuitBuilder::new();
    let src = b.add_lead(20e-3);
    let drn = b.add_lead(-20e-3);
    let island = b.add_island_with_charge(0.5);
    b.add_junction(src, island, 1e6, 1e-18).unwrap();
    b.add_junction(island, drn, 1e6, 1e-18).unwrap();
    b.build().unwrap()
}

/// Runs a 6-point I–V batch over the conducting SET with the scripted
/// fault plan armed in every attempt's setup.
fn batch_iv(cfg: &SimConfig, opts: &BatchOpts, plan: &BatchFaultPlan) -> BatchReport<SweepPoint> {
    let circuit = conducting_set();
    let junction = circuit.junction_ids().next().unwrap();
    let controls: Vec<f64> = (0..6).map(|i| 5e-3 * (i as f64 + 1.0)).collect();
    batch_sweep(
        &circuit,
        cfg,
        junction,
        &controls,
        200,
        1500,
        opts,
        |sim, v, spec| {
            plan.arm(sim, spec);
            sim.set_lead_voltage(1, v)?;
            sim.set_lead_voltage(2, -v)
        },
    )
    .unwrap()
}

#[test]
fn injected_panic_recovers_bit_identically_to_the_clean_run() {
    // A panic on the initial attempt reruns with the identical seed
    // (RerunSame — the transient-crash assumption), so the recovered
    // batch equals the fault-free one bit for bit, at any thread count.
    let cfg = SimConfig::new(5.0).with_seed(42);
    let clean = batch_iv(&cfg, &BatchOpts::default(), &BatchFaultPlan::new());
    assert!(clean.is_complete());
    assert_eq!(clean.retries, 0);
    for threads in [1, 2, 4] {
        let opts = BatchOpts {
            par: ParOpts::with_threads(threads),
            ..BatchOpts::default()
        };
        let plan = BatchFaultPlan::new().panic_at(2, 300);
        let report = batch_iv(&cfg, &opts, &plan);
        assert_eq!(report.counts.recovered, 1, "threads = {threads}");
        let p = &report.points[2];
        assert_eq!(p.status, PointStatus::Recovered { attempts: 2 });
        assert_eq!(p.attempts[1].action, RecoveryAction::RerunSame);
        assert_eq!(p.attempts[0].seed, p.attempts[1].seed);
        let fault = p.attempts[0].fault.as_deref().unwrap();
        assert!(fault.contains("injected fault: panic"), "{fault}");
        assert_eq!(
            report.values().unwrap(),
            clean.values().unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn transient_poison_recovery_reseeds_and_spares_siblings() {
    let cfg = SimConfig::new(5.0).with_seed(42);
    let clean = batch_iv(&cfg, &BatchOpts::default(), &BatchFaultPlan::new());
    let plan = BatchFaultPlan::new().poison_rate(1, 100, 0);
    let first = batch_iv(&cfg, &BatchOpts::default(), &plan);
    let p = &first.points[1];
    assert_eq!(p.status, PointStatus::Recovered { attempts: 2 });
    assert_eq!(p.attempts[1].action, RecoveryAction::ReseedTightened);
    assert_ne!(
        p.attempts[0].seed, p.attempts[1].seed,
        "a numerical fault must not rerun the same trajectory"
    );
    // Siblings are untouched by the neighbour's recovery.
    for (i, (got, want)) in first.points.iter().zip(&clean.points).enumerate() {
        if i != 1 {
            assert_eq!(got.item, want.item, "sibling {i} drifted");
        }
    }
    // The recovery itself is deterministic: any thread count reproduces
    // the single-threaded recovered batch bit for bit.
    for threads in [2, 4] {
        let opts = BatchOpts {
            par: ParOpts::with_threads(threads),
            ..BatchOpts::default()
        };
        let report = batch_iv(&cfg, &opts, &plan);
        assert_eq!(
            report.values().unwrap(),
            first.values().unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn persistent_poison_is_rescued_by_the_solver_fallback() {
    // The poison fires in every adaptive attempt; only the final
    // non-adaptive fallback attempt escapes it.
    let cfg = SimConfig::new(5.0)
        .with_seed(42)
        .with_solver(SolverSpec::Adaptive {
            threshold: 0.05,
            refresh_interval: 2_000,
        });
    let plan = BatchFaultPlan::new().persistent_poison(3, 100, 0);
    let report = batch_iv(&cfg, &BatchOpts::default(), &plan);
    let p = &report.points[3];
    assert_eq!(p.status, PointStatus::Recovered { attempts: 3 });
    assert_eq!(p.attempts[2].action, RecoveryAction::SolverFallback);
    assert!(p.item.is_some());
    assert!(report.is_complete());
    assert_eq!(report.counts.recovered, 1);
}

#[test]
fn exhausted_ladder_faults_the_point_and_salvages_the_rest() {
    let cfg = SimConfig::new(5.0).with_seed(42);
    let clean = batch_iv(&cfg, &BatchOpts::default(), &BatchFaultPlan::new());
    let opts = BatchOpts {
        retry: RetryPolicy {
            max_retries: 2,
            solver_fallback: false,
            ..RetryPolicy::default()
        },
        ..BatchOpts::default()
    };
    let plan = BatchFaultPlan::new().persistent_poison(4, 100, 0);
    let report = batch_iv(&cfg, &opts, &plan);
    let p = &report.points[4];
    assert_eq!(p.status, PointStatus::Faulted);
    assert_eq!(p.attempts.len(), 3, "initial + 2 retries");
    assert!(p.item.is_none());
    assert!(p.fault.is_some());
    assert!(!report.is_complete());
    assert!(report.values().is_none());
    assert_eq!(report.counts.faulted, 1);
    assert_eq!(report.counts.ok, 5);
    // Every sibling still carries the clean value — partial salvage.
    for (i, (got, want)) in report.points.iter().zip(&clean.points).enumerate() {
        if i != 4 {
            assert_eq!(got.item, want.item, "sibling {i} drifted");
        }
    }
}

#[test]
fn corrupted_journal_tail_is_discarded_and_resume_stays_exact() {
    let path = std::env::temp_dir().join(format!("semsim_fault_journal_{}.jl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = SimConfig::new(5.0).with_seed(42);
    let opts = BatchOpts {
        par: ParOpts::with_threads(1),
        journal: Some(path.clone()),
        ..BatchOpts::default()
    };
    let reference = batch_iv(&cfg, &opts, &BatchFaultPlan::new());
    assert!(reference.is_complete());

    corrupt_journal_tail(&path).unwrap();
    let opts = BatchOpts {
        par: ParOpts::with_threads(1),
        journal: Some(path.clone()),
        resume: true,
        ..BatchOpts::default()
    };
    let resumed = batch_iv(&cfg, &opts, &BatchFaultPlan::new());
    assert!(resumed.discarded_tail_bytes > 0, "tail rot went unnoticed");
    assert_eq!(resumed.counts.skipped, 5, "only the rotted record re-runs");
    assert_eq!(resumed.values().unwrap(), reference.values().unwrap());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn poisoned_rate_is_caught_by_production_guard() {
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, SimConfig::new(5.0).with_seed(7)).unwrap();
    sim.inject_faults(FaultPlan::new().poison_rate(50, 0));
    let err = sim.run(RunLength::Events(5_000)).unwrap_err();
    match err {
        CoreError::NumericalFault {
            stage,
            junction,
            value,
        } => {
            assert_eq!(stage, FaultStage::TunnelRate);
            assert_eq!(junction, Some(0));
            assert!(value.is_nan(), "guard saw {value}, expected NaN");
        }
        other => panic!("expected NumericalFault, got {other:?}"),
    }
    // The fault surfaced promptly: the non-adaptive solver rewrites
    // every rate each event, so the poison cannot hide past the event
    // after it was armed.
    assert!(sim.events() >= 50 && sim.events() <= 52, "{}", sim.events());
}

#[test]
fn poisoned_rate_is_caught_under_adaptive_solver_too() {
    let cfg = SimConfig::new(5.0)
        .with_seed(7)
        .with_solver(SolverSpec::Adaptive {
            threshold: 0.05,
            refresh_interval: 2_000,
        });
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().poison_rate(50, 1));
    let err = sim.run(RunLength::Events(5_000)).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::NumericalFault {
                stage: FaultStage::TunnelRate,
                junction: Some(1),
                ..
            }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn corrupted_cache_is_caught_by_drift_audit() {
    // Silence junction 0's testing gate (cached |ΔW'| scaled by 1e6) so
    // its rates go stale while the island charge keeps toggling. The
    // periodic drift audit must notice, flush the caches, tighten θ,
    // and let the run complete cleanly.
    let theta = 0.05;
    let cfg = SimConfig::new(5.0)
        .with_seed(11)
        .with_solver(SolverSpec::Adaptive {
            threshold: theta,
            refresh_interval: u64::MAX, // no periodic refresh to mask the fault
        })
        .with_audit_interval(100)
        .with_drift_tolerance(0.05);
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().corrupt_cache(100, 0, 1e6));
    let record = sim.run(RunLength::Events(4_000)).unwrap();

    assert_eq!(record.outcome, RunOutcome::Completed);
    let report = sim.health_report();
    assert!(report.audits > 0, "no audits ran");
    assert!(
        !report.degradations.is_empty(),
        "drift audit never fired a degradation (worst drift {:.3e})",
        report.worst_drift
    );
    let d = &report.degradations[0];
    assert!(d.event >= 100, "degradation before the fault: {d:?}");
    assert!(
        d.drift > 0.05,
        "recorded drift {:.3e} below tolerance",
        d.drift
    );
    // Graceful degradation tightened the threshold below the configured
    // value (θ halves on every failed audit).
    let after = d.threshold_after.expect("adaptive run records θ");
    assert!(after < theta, "θ not tightened: {after}");
    // The degradations also ride along on the run's record.
    assert_eq!(record.degradations.len(), report.degradations.len());
    // After the flush the caches are sound again: a fresh audit-heavy
    // stretch runs clean.
    let before = sim.health_report().degradations.len();
    sim.run(RunLength::Events(1_000)).unwrap();
    assert_eq!(
        sim.health_report().degradations.len(),
        before,
        "degradations kept firing after the recovery flush"
    );
}

#[test]
fn corrupted_cache_is_a_noop_for_nonadaptive_solver() {
    // The non-adaptive solver holds no long-lived cache; the corruption
    // hook must not disturb it.
    let cfg = SimConfig::new(5.0).with_seed(3).with_audit_interval(200);
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().corrupt_cache(100, 0, 1e6));
    let record = sim.run(RunLength::Events(2_000)).unwrap();
    assert_eq!(record.outcome, RunOutcome::Completed);
    let report = sim.health_report();
    assert!(report.audits > 0);
    assert!(report.degradations.is_empty(), "{report:?}");
    assert!(report.worst_drift < 1e-9, "{:.3e}", report.worst_drift);
}

#[test]
fn failed_refresh_surfaces_numerical_fault() {
    // FailRefresh forces an immediate full resync with a poisoned rate:
    // the guard inside the refresh path itself must reject it rather
    // than let a NaN enter the rate table.
    let cfg = SimConfig::new(5.0)
        .with_seed(5)
        .with_solver(SolverSpec::Adaptive {
            threshold: 0.05,
            refresh_interval: 2_000,
        });
    let circuit = conducting_set();
    let mut sim = Simulation::new(&circuit, cfg).unwrap();
    sim.inject_faults(FaultPlan::new().fail_refresh(75, 0));
    let err = sim.run(RunLength::Events(5_000)).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::NumericalFault {
                stage: FaultStage::TunnelRate,
                junction: Some(0),
                ..
            }
        ),
        "unexpected error: {err:?}"
    );
    // The failure is reported at the refresh, not deferred: the rate
    // table was never contaminated with the poisoned value.
    assert!(sim.events() >= 75 && sim.events() <= 77, "{}", sim.events());
}
