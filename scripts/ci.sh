#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has no registry dependencies, so this runs without
# network access. Run from anywhere; it cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q --features fault-inject"
cargo test --workspace -q --features fault-inject

# Thread matrix: the reproducibility harness re-runs pinned to 1 and 4
# workers. The default run above already covers 1,2,4,8; the pinned
# passes prove the suite itself is thread-count-clean (a regression that
# only shows up at a specific count fails here with a readable name).
for t in 1 4; do
  echo "==> cargo test -q --test par_determinism (SEMSIM_TEST_THREADS=$t)"
  SEMSIM_TEST_THREADS=$t cargo test -q --test par_determinism
done

echo "==> par_scaling determinism + speedup"
scaling_out=$(cargo run -q --release -p semsim-bench --bin par_scaling -- events=1500 nb=10 ng=8)
echo "$scaling_out"
# The ≥2.5x-at-4-threads acceptance gate only means something on a host
# that actually has 4 cores; single-core CI still runs the bin (its exit
# code asserts bit-identity across thread counts) but skips the gate.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  speedup=$(echo "$scaling_out" | grep -oP 'par-scaling-speedup-4: \K[0-9.]+')
  awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }' \
    || { echo "FAIL: 4-thread speedup ${speedup}x below the 2.5x floor"; exit 1; }
else
  echo "skip: speedup floor needs >= 4 cores (host has $cores)"
fi

echo "==> hotpath bit-identity + speedup vs dense reference"
hotdir=$(mktemp -d)
# Defaults reach c432 (2072 junctions) — the speedup grows with size,
# so gating on a smaller "largest benchmark" would test the wrong claim.
hotpath_out=$(cargo run -q --release -p semsim-bench --bin hotpath -- \
  out="$hotdir/BENCH_hotpath.json")
echo "$hotpath_out"
rm -rf "$hotdir"
# The binary itself exits nonzero if the optimized solver's trajectory
# is not bit-identical to the dense-reference oracle. The speedup floor
# compares the two solvers within one run, so it is load-tolerant, but
# a single-core host is still too noisy to gate on.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
  hspeed=$(echo "$hotpath_out" | grep -oP 'hotpath-speedup-largest: \K[0-9.]+')
  awk -v s="$hspeed" 'BEGIN { exit !(s >= 1.5) }' \
    || { echo "FAIL: hotpath speedup ${hspeed}x below the 1.5x floor"; exit 1; }
else
  echo "skip: hotpath speedup floor needs >= 2 cores (host has $cores)"
fi

echo "==> semsim lint --deny warnings --format json (examples + clean fixtures)"
# The shipped examples and the lint-clean fixtures must stay clean even
# with every warning escalated; the JSON report must satisfy the
# schema-version-1 validator the emitter is tested against.
lintdir=$(mktemp -d)
./target/release/semsim lint --deny warnings --format json \
  examples/netlists/* tests/fixtures/lint/clean_*.cir \
  > "$lintdir/report.json" \
  || { echo "FAIL: lint found problems:"; cat "$lintdir/report.json"; exit 1; }
./target/release/semsim json-verify "$lintdir/report.json" \
  || { echo "FAIL: lint JSON report does not validate"; exit 1; }
rm -rf "$lintdir"

echo "==> journaled sweep: crash, resume, diff against the clean run"
jdir=$(mktemp -d)
trap 'rm -rf "$jdir"' EXIT
./target/release/semsim sweep examples/netlists/set_sweep.cir --events 2000 \
  > "$jdir/clean.out"
./target/release/semsim sweep examples/netlists/set_sweep.cir --events 2000 \
  --journal "$jdir/sweep.jl" > "$jdir/ref.out"
diff "$jdir/clean.out" "$jdir/ref.out" \
  || { echo "FAIL: journaling changed the sweep output"; exit 1; }
# Simulate a mid-run kill: keep ~60% of the journal (a torn final
# record) and resume. The resumed output must be byte-identical.
full=$(stat -c %s "$jdir/sweep.jl")
head -c $(( full * 60 / 100 )) "$jdir/sweep.jl" > "$jdir/torn.jl"
mv "$jdir/torn.jl" "$jdir/sweep.jl"
./target/release/semsim sweep examples/netlists/set_sweep.cir --events 2000 \
  --journal "$jdir/sweep.jl" --resume > "$jdir/resumed.out" 2> "$jdir/resumed.err"
grep -q "restored from journal" "$jdir/resumed.err" \
  || { echo "FAIL: resume did not restore any points"; cat "$jdir/resumed.err"; exit 1; }
diff "$jdir/clean.out" "$jdir/resumed.out" \
  || { echo "FAIL: resumed sweep differs from the uninterrupted run"; exit 1; }
echo "resume OK: $(grep 'batch:' "$jdir/resumed.err")"

echo "==> journal overhead budget (<10%) + bit-identity"
journal_out=$(cargo run -q --release -p semsim-bench --bin journal_overhead)
echo "$journal_out"
jpct=$(echo "$journal_out" | grep -oP 'journal-overhead-pct: \K[-0-9.]+')
awk -v p="$jpct" 'BEGIN { exit !(p < 10.0) }' \
  || { echo "FAIL: journal overhead ${jpct}% exceeds the 10% budget"; exit 1; }

echo "==> drift-audit overhead budget (<5%)"
overhead_out=$(cargo run -q --release -p semsim-bench --bin audit_overhead)
echo "$overhead_out"
pct=$(echo "$overhead_out" | grep -oP 'audit-overhead-pct: \K[-0-9.]+')
awk -v p="$pct" 'BEGIN { exit !(p < 5.0) }' \
  || { echo "FAIL: drift-audit overhead ${pct}% exceeds the 5% budget"; exit 1; }

echo "CI OK"
