#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has no registry dependencies, so this runs without
# network access. Run from anywhere; it cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q --features fault-inject"
cargo test --workspace -q --features fault-inject

# Thread matrix: the reproducibility harness re-runs pinned to 1 and 4
# workers. The default run above already covers 1,2,4,8; the pinned
# passes prove the suite itself is thread-count-clean (a regression that
# only shows up at a specific count fails here with a readable name).
for t in 1 4; do
  echo "==> cargo test -q --test par_determinism (SEMSIM_TEST_THREADS=$t)"
  SEMSIM_TEST_THREADS=$t cargo test -q --test par_determinism
done

echo "==> par_scaling determinism + speedup"
scaling_out=$(cargo run -q --release -p semsim-bench --bin par_scaling -- events=1500 nb=10 ng=8)
echo "$scaling_out"
# The ≥2.5x-at-4-threads acceptance gate only means something on a host
# that actually has 4 cores; single-core CI still runs the bin (its exit
# code asserts bit-identity across thread counts) but skips the gate.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  speedup=$(echo "$scaling_out" | grep -oP 'par-scaling-speedup-4: \K[0-9.]+')
  awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }' \
    || { echo "FAIL: 4-thread speedup ${speedup}x below the 2.5x floor"; exit 1; }
else
  echo "skip: speedup floor needs >= 4 cores (host has $cores)"
fi

echo "==> semsim lint examples/netlists/*"
./target/release/semsim lint examples/netlists/*

echo "==> drift-audit overhead budget (<5%)"
overhead_out=$(cargo run -q --release -p semsim-bench --bin audit_overhead)
echo "$overhead_out"
pct=$(echo "$overhead_out" | grep -oP 'audit-overhead-pct: \K[-0-9.]+')
awk -v p="$pct" 'BEGIN { exit !(p < 5.0) }' \
  || { echo "FAIL: drift-audit overhead ${pct}% exceeds the 5% budget"; exit 1; }

echo "CI OK"
