#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has no registry dependencies, so this runs without
# network access. Run from anywhere; it cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q --features fault-inject"
cargo test --workspace -q --features fault-inject

echo "==> semsim lint examples/netlists/*"
./target/release/semsim lint examples/netlists/*

echo "==> drift-audit overhead budget (<5%)"
overhead_out=$(cargo run -q --release -p semsim-bench --bin audit_overhead)
echo "$overhead_out"
pct=$(echo "$overhead_out" | grep -oP 'audit-overhead-pct: \K[-0-9.]+')
awk -v p="$pct" 'BEGIN { exit !(p < 5.0) }' \
  || { echo "FAIL: drift-audit overhead ${pct}% exceeds the 5% budget"; exit 1; }

echo "CI OK"
