#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has no registry dependencies, so this runs without
# network access. Run from anywhere; it cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> semsim lint examples/netlists/*"
./target/release/semsim lint examples/netlists/*

echo "CI OK"
