#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has no registry dependencies, so this runs without
# network access. Run from anywhere; it cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q --features fault-inject"
cargo test --workspace -q --features fault-inject

# Thread matrix: the reproducibility harness re-runs pinned to 1 and 4
# workers. The default run above already covers 1,2,4,8; the pinned
# passes prove the suite itself is thread-count-clean (a regression that
# only shows up at a specific count fails here with a readable name).
for t in 1 4; do
  echo "==> cargo test -q --test par_determinism (SEMSIM_TEST_THREADS=$t)"
  SEMSIM_TEST_THREADS=$t cargo test -q --test par_determinism
done

# Backend matrix: the committed-figure regressions re-run on the
# chunked compute backend. Backends are bit-identical on every
# trajectory kernel, so each physics assertion must hold unchanged —
# this is the end-to-end cross-backend gate on real figure workloads.
echo "==> cargo test -q --test figures_regression (SEMSIM_TEST_BACKEND=chunked)"
SEMSIM_TEST_BACKEND=chunked cargo test -q --test figures_regression

# The build stage above already produced every bench binary; the perf
# stages below invoke them directly instead of going through
# `cargo run`, so one shared release build serves the whole script.
echo "==> par_scaling determinism + speedup"
scaling_out=$(./target/release/par_scaling events=1500 nb=10 ng=8)
echo "$scaling_out"
# The ≥2.5x-at-4-threads acceptance gate only means something on a host
# that actually has 4 cores; single-core CI still runs the bin (its exit
# code asserts bit-identity across thread counts) but skips the gate.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  speedup=$(echo "$scaling_out" | grep -oP 'par-scaling-speedup-4: \K[0-9.]+')
  awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }' \
    || { echo "FAIL: 4-thread speedup ${speedup}x below the 2.5x floor"; exit 1; }
else
  echo "skip: speedup floor needs >= 4 cores (host has $cores)"
fi

echo "==> hotpath bit-identity + speedup vs dense reference"
hotdir=$(mktemp -d)
# Defaults reach c432 (2072 junctions) — the speedup grows with size,
# so gating on a smaller "largest benchmark" would test the wrong claim.
hotpath_out=$(./target/release/hotpath out="$hotdir/BENCH_hotpath.json")
echo "$hotpath_out"
rm -rf "$hotdir"
# The binary itself exits nonzero if the optimized solver's trajectory
# is not bit-identical to the dense-reference oracle. The speedup floor
# compares the two solvers within one run, so it is load-tolerant, but
# a single-core host is still too noisy to gate on.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
  hspeed=$(echo "$hotpath_out" | grep -oP 'hotpath-speedup-largest: \K[0-9.]+')
  awk -v s="$hspeed" 'BEGIN { exit !(s >= 2.5) }' \
    || { echo "FAIL: hotpath speedup ${hspeed}x below the 2.5x floor (chunked backend vs dense reference)"; exit 1; }
else
  echo "skip: hotpath speedup floor needs >= 2 cores (host has $cores)"
fi

echo "==> semsim validate: cross-engine grid + perf trend ratchet (chunked backend)"
# --backend chunked runs the whole validation grid on the chunked
# compute backend; backends are bit-identical, so agreement with the
# committed reference table doubles as a cross-backend equivalence gate.
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if validate_out=$(./target/release/semsim validate --backend chunked \
    --json results/VALIDATE.json --trend results/BENCH_validate.json \
    --commit "$commit"); then
  echo "$validate_out"
else
  echo "$validate_out"
  echo "FAIL: validation grid out of tolerance"; exit 1
fi
./target/release/semsim json-verify results/VALIDATE.json \
  || { echo "FAIL: results/VALIDATE.json does not validate"; exit 1; }
./target/release/semsim json-verify results/BENCH_validate.json \
  || { echo "FAIL: results/BENCH_validate.json does not validate"; exit 1; }
# Perf trend ratchet: gate on the *interleaved* adaptive-vs-dense
# speedup ratio against the previous record — both solvers run in the
# same process windows, so machine-wide load cancels and a >10% drop
# means the code got slower, not the host busier. Raw events/sec is
# recorded for trend plots but not gated (it tracks the host). The
# first record has no predecessor: skip with a message, never
# fabricate a baseline.
ratio=$(echo "$validate_out" | grep -oP 'validate-trend-ratio: \K\S+' || true)
cores=$(nproc 2>/dev/null || echo 1)
if [ "$ratio" = "none" ] || [ -z "$ratio" ]; then
  echo "skip: no prior trend record to ratchet against (first run on this history)"
elif [ "$cores" -ge 2 ]; then
  awk -v r="$ratio" 'BEGIN { exit !(r >= 0.9) }' \
    || { echo "FAIL: speedup trend ratio $ratio below the 0.9 floor (>10% regression vs previous record)"; exit 1; }
else
  echo "skip: trend ratchet needs >= 2 cores (host has $cores)"
fi

echo "==> semsim lint --deny warnings --format json (examples + clean fixtures)"
# The shipped examples and the lint-clean fixtures must stay clean even
# with every warning escalated; the JSON report must satisfy the
# schema-version-1 validator the emitter is tested against.
lintdir=$(mktemp -d)
./target/release/semsim lint --deny warnings --format json \
  examples/netlists/* tests/fixtures/lint/clean_*.cir \
  > "$lintdir/report.json" \
  || { echo "FAIL: lint found problems:"; cat "$lintdir/report.json"; exit 1; }
./target/release/semsim json-verify "$lintdir/report.json" \
  || { echo "FAIL: lint JSON report does not validate"; exit 1; }
rm -rf "$lintdir"

echo "==> journaled sweep: crash, resume, diff against the clean run"
jdir=$(mktemp -d)
trap 'rm -rf "$jdir"' EXIT
./target/release/semsim sweep examples/netlists/set_sweep.cir --events 2000 \
  > "$jdir/clean.out"
./target/release/semsim sweep examples/netlists/set_sweep.cir --events 2000 \
  --journal "$jdir/sweep.jl" > "$jdir/ref.out"
diff "$jdir/clean.out" "$jdir/ref.out" \
  || { echo "FAIL: journaling changed the sweep output"; exit 1; }
# Simulate a mid-run kill: keep ~60% of the journal (a torn final
# record) and resume. The resumed output must be byte-identical.
full=$(stat -c %s "$jdir/sweep.jl")
head -c $(( full * 60 / 100 )) "$jdir/sweep.jl" > "$jdir/torn.jl"
mv "$jdir/torn.jl" "$jdir/sweep.jl"
./target/release/semsim sweep examples/netlists/set_sweep.cir --events 2000 \
  --journal "$jdir/sweep.jl" --resume > "$jdir/resumed.out" 2> "$jdir/resumed.err"
grep -q "restored from journal" "$jdir/resumed.err" \
  || { echo "FAIL: resume did not restore any points"; cat "$jdir/resumed.err"; exit 1; }
diff "$jdir/clean.out" "$jdir/resumed.out" \
  || { echo "FAIL: resumed sweep differs from the uninterrupted run"; exit 1; }
echo "resume OK: $(grep 'batch:' "$jdir/resumed.err")"

echo "==> serve: kill -9 mid-sweep, restart, byte-identical stream; 429; drain"
sdir=$(mktemp -d)
trap 'rm -rf "$jdir" "$sdir"' EXIT
bin=./target/release/semsim
port=$((18100 + RANDOM % 800))
# A sweep heavy enough (21 points x 2M events) to be mid-flight when
# the daemon is killed.
cat > "$sdir/job.json" <<'JSON'
{"source": "junc 1 1 4 1e-6 1e-18\njunc 2 2 4 1e-6 1e-18\ncap 3 4 3e-18\nvdc 1 0.02\nvdc 2 -0.02\nvdc 3 0.0\nsymm 1\ntemp 5\nrecord 1 2 2\njumps 2000000 1\nsweep 2 0.02 0.002\n", "seed": 77}
JSON
wait_phase() { # addr phase
  for _ in $(seq 1 480); do
    "$bin" call "$1" GET /jobs/j1 2>/dev/null | grep -q "\"phase\":\"$2\"" && return 0
    sleep 0.25
  done
  return 1
}
# Clean baseline.
"$bin" serve --port "$port" --workers 1 --data-dir "$sdir/clean" 2> "$sdir/clean.log" &
spid=$!
sleep 0.5
"$bin" call "127.0.0.1:$port" POST /jobs "$sdir/job.json" > /dev/null 2>&1
wait_phase "127.0.0.1:$port" done \
  || { echo "FAIL: clean serve job never finished"; exit 1; }
"$bin" call "127.0.0.1:$port" GET /jobs/j1/stream > "$sdir/clean.txt" 2>/dev/null
"$bin" call "127.0.0.1:$port" POST /drain > /dev/null 2>&1
wait $spid || { echo "FAIL: drained daemon exited nonzero"; exit 1; }
# Crash run: same job, kill -9 once >= 2 points are journaled, restart
# on the same data dir, and the streamed result must be byte-identical.
"$bin" serve --port "$port" --workers 1 --data-dir "$sdir/crash" 2> "$sdir/crash.log" &
spid=$!
sleep 0.5
"$bin" call "127.0.0.1:$port" POST /jobs "$sdir/job.json" > /dev/null 2>&1
progressed=0
for _ in $(seq 1 480); do
  n=$("$bin" call "127.0.0.1:$port" GET /jobs/j1 2>/dev/null \
    | grep -o '"points_done":[0-9]*' | cut -d: -f2)
  if [ "${n:-0}" -ge 2 ]; then progressed=1; break; fi
  sleep 0.25
done
[ "$progressed" = 1 ] || { echo "FAIL: no serve progress before kill"; exit 1; }
kill -9 $spid; wait $spid 2>/dev/null || true
"$bin" serve --port "$port" --workers 1 --data-dir "$sdir/crash" 2> "$sdir/restart.log" &
spid=$!
sleep 0.5
grep -q "restored from journal" "$sdir/restart.log" \
  || { echo "FAIL: restart did not resume the interrupted job"; cat "$sdir/restart.log"; exit 1; }
wait_phase "127.0.0.1:$port" done \
  || { echo "FAIL: resumed serve job never finished"; exit 1; }
"$bin" call "127.0.0.1:$port" GET /jobs/j1/stream > "$sdir/crash.txt" 2>/dev/null
diff "$sdir/clean.txt" "$sdir/crash.txt" \
  || { echo "FAIL: kill -9 + restart changed the streamed results"; exit 1; }
"$bin" call "127.0.0.1:$port" POST /drain > /dev/null 2>&1
wait $spid || { echo "FAIL: restarted daemon exited nonzero after drain"; exit 1; }
echo "serve restart OK: $(grep 'restored from journal' "$sdir/restart.log")"
# Saturation: one worker, queue depth 1 -> the third submission gets a
# structured 429 while the first two are admitted.
"$bin" serve --port "$port" --workers 1 --queue-depth 1 \
  --data-dir "$sdir/sat" 2> "$sdir/sat.log" &
spid=$!
sleep 0.5
"$bin" call "127.0.0.1:$port" POST /jobs "$sdir/job.json" > /dev/null 2>&1
wait_phase "127.0.0.1:$port" running \
  || { echo "FAIL: first job never started"; exit 1; }
"$bin" call "127.0.0.1:$port" POST /jobs "$sdir/job.json" > /dev/null 2>&1
code=$("$bin" call "127.0.0.1:$port" POST /jobs "$sdir/job.json" 2>&1 >/dev/null \
  | grep -o 'HTTP [0-9]*' || true)
[ "$code" = "HTTP 429" ] \
  || { echo "FAIL: saturated queue answered '$code', wanted HTTP 429"; exit 1; }
"$bin" call "127.0.0.1:$port" DELETE /jobs/j1 > /dev/null 2>&1
"$bin" call "127.0.0.1:$port" DELETE /jobs/j2 > /dev/null 2>&1
"$bin" call "127.0.0.1:$port" POST /drain > /dev/null 2>&1
wait $spid || { echo "FAIL: saturated daemon exited nonzero after drain"; exit 1; }
echo "serve admission OK: third submission met HTTP 429"

echo "==> journal overhead budget (<10%) + bit-identity"
journal_out=$(./target/release/journal_overhead)
echo "$journal_out"
jpct=$(echo "$journal_out" | grep -oP 'journal-overhead-pct: \K[-0-9.]+')
awk -v p="$jpct" 'BEGIN { exit !(p < 10.0) }' \
  || { echo "FAIL: journal overhead ${jpct}% exceeds the 10% budget"; exit 1; }

echo "==> drift-audit overhead budget (<5%)"
overhead_out=$(./target/release/audit_overhead)
echo "$overhead_out"
pct=$(echo "$overhead_out" | grep -oP 'audit-overhead-pct: \K[-0-9.]+')
awk -v p="$pct" 'BEGIN { exit !(p < 5.0) }' \
  || { echo "FAIL: drift-audit overhead ${pct}% exceeds the 5% budget"; exit 1; }

# Chaos campaigns come last: they need feature-flipped release builds,
# so every stage that wants the plain release binary runs first.
echo "==> semsim chaos: 200 deterministic fault campaigns, 0 violations"
cargo build -q --release --features fault-inject
chdir=$(mktemp -d)
trap 'rm -rf "$jdir" "$sdir" "$chdir"' EXIT
./target/release/semsim chaos --campaigns 200 --seed 1 --out "$chdir" \
  > "$chdir/log_a.txt" \
  || { echo "FAIL: chaos campaigns violated a recovery invariant:"; \
       grep VIOLATION "$chdir/log_a.txt"; exit 1; }
./target/release/semsim chaos --campaigns 200 --seed 1 --out "$chdir" \
  > "$chdir/log_b.txt"
diff "$chdir/log_a.txt" "$chdir/log_b.txt" > /dev/null \
  || { echo "FAIL: chaos campaign log is not byte-identical across runs"; exit 1; }
tail -1 "$chdir/log_a.txt"

echo "==> chaos self-test: the known-bug build must be caught and minimized"
cargo build -q --release --features chaos-known-bug
if ./target/release/semsim chaos --campaigns 40 --seed 1 --out "$chdir/bug" \
    > "$chdir/bug.log" 2>/dev/null; then
  echo "FAIL: the known-bug build passed the chaos campaigns"; exit 1
fi
repro=$(ls "$chdir/bug"/chaos_repro_*.json 2>/dev/null | head -1)
[ -n "$repro" ] || { echo "FAIL: known-bug run wrote no repro"; exit 1; }
grep -q '"kind":"bit_rot"' "$repro" \
  || { echo "FAIL: repro lacks the planted bit_rot bug:"; cat "$repro"; exit 1; }
[ "$(grep -c '"kind":' "$repro")" -eq 1 ] \
  || { echo "FAIL: repro not minimized to a single fault:"; cat "$repro"; exit 1; }
./target/release/semsim chaos --replay "$repro" > /dev/null 2>&1 \
  && { echo "FAIL: known-bug replay did not reproduce the violation"; exit 1; }
echo "chaos self-test OK: $(basename "$repro") minimized to the planted bit_rot"
# Leave a plain release binary behind, as every earlier stage built.
cargo build -q --release --workspace

echo "CI OK"
