//! Superconducting SET spectroscopy — the device-research scenario the
//! paper's §IV-A validates against (Manninen et al.'s experiment):
//! sweep the bias of an SSET at finite temperature, watch the
//! quasi-particle threshold and the Josephson-quasi-particle (JQP)
//! resonance, and verify with the event log that the JQP current is
//! really carried by the Cooper-pair/quasi-particle cycle of Fig. 2.
//!
//! Run with: `cargo run --release --example sset_spectroscopy`

use semsim::core::circuit::CircuitBuilder;
use semsim::core::constants::ev_to_joule;
use semsim::core::engine::{linspace, RunLength, SimConfig, Simulation};
use semsim::core::superconduct::SuperconductingParams;
use semsim::core::CoreError;

fn main() -> Result<(), CoreError> {
    // The Fig. 5 device: R = 210 kΩ, C = 110 aF, Cg = 14 aF, Qb = 0.65 e.
    let mut b = CircuitBuilder::new();
    let bias = b.add_lead(0.0);
    let drain = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island_with_charge(0.65);
    let j1 = b.add_junction(bias, island, 210e3, 110e-18)?;
    b.add_junction(island, drain, 210e3, 110e-18)?;
    b.add_capacitor(gate, island, 3e-18)?;
    let circuit = b.build()?;

    let params = SuperconductingParams::new(ev_to_joule(0.21e-3), 1.43)?;
    let temperature = 0.52;

    println!("# SSET bias spectroscopy at T = {temperature} K, Vg = 2 mV");
    println!("# Vb(V)        I(A)         CP fraction  JQP cycles/1000 events");
    for vb in linspace(0.2e-3, 1.6e-3, 15) {
        let cfg = SimConfig::new(temperature)
            .with_seed(17)
            .with_superconducting(params);
        let mut sim = Simulation::new(&circuit, cfg)?;
        sim.set_lead_voltage(1, vb)?;
        sim.set_lead_voltage(3, 2e-3)?;
        sim.enable_event_log(20_000);
        let record = match sim.run(RunLength::Events(20_000)) {
            Err(CoreError::BlockadeStall { .. }) => {
                println!("{vb:>9.4e}   (blockaded)");
                continue;
            }
            other => other?,
        };
        let log = sim.event_log().expect("log enabled");
        println!(
            "{vb:>9.4e}  {:>12.4e}   {:>8.4}    {:>8.1}",
            record.current(j1),
            log.cooper_pair_fraction(),
            1000.0 * log.count_jqp_cycles() as f64 / record.events.max(1) as f64,
        );
    }
    println!("# Below the quasi-particle threshold the current is carried by the");
    println!("# JQP cycle (high Cooper-pair fraction); above it single quasi-particle");
    println!("# transport dominates and the Cooper-pair fraction collapses.");
    Ok(())
}
