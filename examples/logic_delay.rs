//! Large-scale circuit flow — the paper's headline use case: take one
//! of the evaluation benchmarks ("2-to-10 decoder", 76 junctions),
//! elaborate it to nSET/pSET logic, and measure its propagation delay
//! three ways: non-adaptive Monte Carlo (the accuracy reference),
//! SEMSIM's adaptive solver, and the analytical SPICE baseline. This is
//! one row of the paper's Figs. 6–7 done end to end.
//!
//! Run with: `cargo run --release --example logic_delay`

use semsim::core::engine::{SimConfig, SolverSpec};
use semsim::logic::{elaborate, measure_delay_avg, Benchmark, SetLogicParams};
use semsim::spice::logic_map::measure_delay as spice_delay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::Decoder2To10;
    let logic = benchmark.logic();
    let params = SetLogicParams::default();
    let elab = elaborate(&logic, &params)?;
    println!(
        "# {}: {} SETs, {} junctions (paper size: {})",
        benchmark.name(),
        elab.set_count,
        elab.junction_count(),
        benchmark.target_junctions()
    );

    let output = benchmark.delay_output();
    let transitions = 6;

    // Reference: conventional (non-adaptive) Monte Carlo.
    let reference = measure_delay_avg(
        &elab,
        &logic,
        &SimConfig::new(params.temperature).with_seed(2),
        output,
        40.0,
        60.0,
        transitions,
    )?;

    // SEMSIM's adaptive solver, same protocol.
    let adaptive_cfg =
        SimConfig::new(params.temperature)
            .with_seed(2)
            .with_solver(SolverSpec::Adaptive {
                threshold: 0.05,
                refresh_interval: 1_000,
            });
    let adaptive = measure_delay_avg(
        &elab,
        &logic,
        &adaptive_cfg,
        output,
        40.0,
        60.0,
        transitions,
    )?;

    // Analytical SPICE baseline.
    let spice = spice_delay(
        &logic,
        &params,
        output,
        5e-10,
        40.0 * params.switching_time(),
        60.0 * params.switching_time(),
    )?;

    println!(
        "# propagation delay of `{output}` (input `{}` toggled {transitions}×):",
        reference.input
    );
    println!(
        "non-adaptive MC : {:.3e} s  ({} events)",
        reference.delay, reference.events
    );
    println!(
        "SEMSIM adaptive : {:.3e} s  (error {:.1}% — the paper's Fig. 7 band)",
        adaptive.delay,
        (adaptive.delay - reference.delay).abs() / reference.delay * 100.0
    );
    println!(
        "SPICE baseline  : {:.3e} s  (error {:.1}%)",
        spice.delay,
        (spice.delay - reference.delay).abs() / reference.delay * 100.0
    );
    Ok(())
}
