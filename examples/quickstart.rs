//! Quickstart: simulate the paper's Fig. 1b single-electron transistor
//! and print its I–V curves for several gate voltages.
//!
//! The device: R₁ = R₂ = 1 MΩ, C₁ = C₂ = 1 aF, C_g = 3 aF, T = 5 K,
//! symmetric drain–source bias. The output shows the Coulomb blockade
//! (suppressed current around V_ds = 0) and its modulation by the gate.
//!
//! Run with: `cargo run --release --example quickstart`

use semsim::core::circuit::CircuitBuilder;
use semsim::core::engine::{linspace, sweep, SimConfig};
use semsim::core::CoreError;

fn main() -> Result<(), CoreError> {
    // Build the SET of the paper's Fig. 1a.
    let mut b = CircuitBuilder::new();
    let source = b.add_lead(0.0);
    let drain = b.add_lead(0.0);
    let gate = b.add_lead(0.0);
    let island = b.add_island();
    let j1 = b.add_junction(source, island, 1e6, 1e-18)?;
    let _j2 = b.add_junction(island, drain, 1e6, 1e-18)?;
    b.add_capacitor(gate, island, 3e-18)?;
    let circuit = b.build()?;

    let config = SimConfig::new(5.0).with_seed(42);
    let biases = linspace(-0.04, 0.04, 41);

    println!("# SET I-V at T = 5 K (paper Fig. 1b)");
    println!("# Vds(V)      I(A) per gate voltage");
    print!("# {:>10}", "Vds");
    for vg_mv in [0.0, 10.0, 20.0, 30.0] {
        print!(" {:>12}", format!("Vg={vg_mv}mV"));
    }
    println!();

    let mut columns = Vec::new();
    for vg in [0.0, 0.01, 0.02, 0.03] {
        let points = sweep(&circuit, &config, j1, &biases, 500, 20_000, |sim, vds| {
            sim.set_lead_voltage(1, vds / 2.0)?;
            sim.set_lead_voltage(2, -vds / 2.0)?;
            sim.set_lead_voltage(3, vg)
        })?;
        columns.push(points);
    }

    for (i, &vds) in biases.iter().enumerate() {
        print!("{vds:>12.4}");
        for col in &columns {
            print!(" {:>12.4e}", col[i].current);
        }
        println!();
    }

    println!("#\n# The flat region around Vds = 0 is the Coulomb blockade;");
    println!("# its width shrinks as the gate voltage approaches e/2Cg.");
    Ok(())
}
