//! Runs the paper's **Example Input File 1** — the SPICE-like input
//! format of §III-B — through the netlist front-end: parse, compile to
//! a circuit, execute the declared symmetric-bias sweep, and print the
//! resulting I–V table.
//!
//! Run with: `cargo run --release --example netlist_file`

use semsim::netlist::CircuitFile;

/// The input file exactly as printed in the paper (sweep step widened
/// from 0.05 mV to 2 mV so the example finishes in seconds; pass the
/// original value back in if you want the full-resolution curve).
const PAPER_INPUT: &str = "\
#SET component definitions
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
charge 4 0.0

#Input source information
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1

#Overall node information
num j 2
num ext 3
num nodes 4

#Simulation specific information
temp 5
cotunnel
record 1 2 2
jumps 20000 1
sweep 2 0.02 0.002
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let file = CircuitFile::parse(PAPER_INPUT)?;
    println!(
        "# parsed: {} junctions, {} capacitors, {} sources, T = {} K, cotunneling = {}",
        file.junctions.len(),
        file.capacitors.len(),
        file.sources.len(),
        file.temperature,
        file.cotunnel
    );

    let compiled = file.compile()?;
    println!(
        "# compiled: {} islands, {} leads, {} junctions",
        compiled.circuit.num_islands(),
        compiled.circuit.num_leads(),
        compiled.circuit.num_junctions()
    );

    let points = file.execute()?;
    println!("# swept source voltage (V)    current through junction 1 (A)");
    for p in &points {
        println!("{:>12.4}    {:>14.5e}", p.control, p.current);
    }
    println!("# The symmetric `symm 1` bias makes the sweep cover Vds = -0.04 .. 0.04 V;");
    println!("# the flat center is the Coulomb blockade, softened at 5 K and bridged by");
    println!("# the cotunneling current enabled with the `cotunnel` directive.");
    Ok(())
}
