//! The paper's three simulation methods (§I) side by side on one
//! device: Monte Carlo (accurate, stochastic), master equation
//! (noise-free, but the state space must be enumerable), and the
//! analytical SPICE compact model (fast, first-order only) — all
//! built in this workspace, all evaluated on the Fig. 1b SET.
//!
//! Run with: `cargo run --release --example method_comparison`

use semsim::core::circuit::CircuitBuilder;
use semsim::core::engine::{linspace, RunLength, SimConfig, Simulation};
use semsim::core::master::MasterEquation;
use semsim::spice::SetModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let temperature = 5.0;
    let vg = 10e-3;

    println!(
        "# Fig. 1b SET, T = {temperature} K, Vg = {:.0} mV",
        vg * 1e3
    );
    println!("# Vds(V)      I_mc(A)        I_me(A)        I_spice(A)");

    let model = SetModel::symmetric(1e6, 1e-18, 3e-18, temperature);
    for vds in linspace(5e-3, 40e-3, 8) {
        // Build the circuit at this bias (the ME solver reads the
        // static lead voltages).
        let mut b = CircuitBuilder::new();
        let src = b.add_lead(vds / 2.0);
        let drn = b.add_lead(-vds / 2.0);
        let gate = b.add_lead(vg);
        let island = b.add_island();
        let j1 = b.add_junction(src, island, 1e6, 1e-18)?;
        b.add_junction(island, drn, 1e6, 1e-18)?;
        b.add_capacitor(gate, island, 3e-18)?;
        let circuit = b.build()?;

        // (1) Monte Carlo.
        let mut sim = Simulation::new(&circuit, SimConfig::new(temperature).with_seed(1))?;
        let i_mc = sim.run(RunLength::Events(40_000))?.current(j1);

        // (2) Master equation (noise-free reference).
        let me = MasterEquation::new(&circuit, temperature, 4)?;
        let i_me = me.stationary()?.junction_current(j1);

        // (3) Analytical compact model (the SPICE baseline's device).
        let i_spice = model.drain_current(vds / 2.0, -vds / 2.0, vg);

        println!("{vds:>9.4} {i_mc:>14.5e} {i_me:>14.5e} {i_spice:>14.5e}");
    }
    println!("# All three agree at the device level; they diverge at scale:");
    println!("# the ME state space explodes (try a 12-island chain — it refuses),");
    println!("# SPICE misses cotunneling and charge coupling, and plain MC pays");
    println!("# O(junctions) per event — which is what the adaptive solver fixes.");
    Ok(())
}
